//! # hac — Hierarchy And Content
//!
//! A reproduction of *Integrating Content-Based Access Mechanisms with
//! Hierarchical File Systems* (Burra Gopal and Udi Manber, OSDI 1999): a
//! file system that is a full hierarchical namespace **and** a
//! content-addressed one at the same time.
//!
//! This crate is the facade over the workspace:
//!
//! * [`core`] — the HAC layer: semantic directories, scope
//!   consistency, dependency graph, semantic mount points;
//! * [`vfs`] — the hierarchical file-system substrate;
//! * [`index`] — the Glimpse-like content index;
//! * [`query`] — the query language;
//! * [`remote`] — simulated remote name spaces;
//! * [`net`] — the wire protocol and TCP server/client for real ones;
//! * [`corpus`] — deterministic workload generators.
//!
//! ```
//! use hac::prelude::*;
//!
//! let fs = HacFs::new();
//! let p = |s: &str| VPath::parse(s).unwrap();
//! fs.mkdir_p(&p("/notes")).unwrap();
//! fs.save(&p("/notes/fp.txt"), b"fingerprint ridge analysis").unwrap();
//! fs.ssync(&p("/")).unwrap();
//! fs.smkdir(&p("/fp"), "fingerprint").unwrap();
//! assert_eq!(fs.readdir(&p("/fp")).unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hac_core as core;
pub use hac_corpus as corpus;
pub use hac_fed as fed;
pub use hac_index as index;
pub use hac_net as net;
pub use hac_query as query;
pub use hac_remote as remote;
pub use hac_vfs as vfs;

/// The types most programs need.
pub mod prelude {
    pub use hac_core::{
        HacConfig, HacError, HacFs, HacResult, LinkKind, LinkTarget, NamespaceId, ReindexDaemon,
        RemoteQuerySystem, SyncReport,
    };
    pub use hac_fed::{FedRemote, Replica, ShardMap};
    pub use hac_index::{Bitmap, ContentExpr, DocId, Granularity};
    pub use hac_net::{HacServer, NetRemote};
    pub use hac_query::{parse, Query};
    pub use hac_remote::{FlatFileServer, RemoteHac, WebSearchSim};
    pub use hac_vfs::{VPath, Vfs};
}
