//! Cross-crate integration tests: generators → HAC → index → remotes.

use std::sync::Arc;

use hac::prelude::*;
use hac_corpus::{
    generate_docs, generate_mailbox, generate_source_tree, generate_trace, term_for_selectivity,
    DocCollectionSpec, MailboxSpec, Selectivity, SourceTreeSpec, TraceOp, TraceSpec,
};

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn document_collection_end_to_end() {
    let fs = HacFs::new();
    let spec = DocCollectionSpec {
        files: 150,
        ..Default::default()
    };
    let col = generate_docs(fs.vfs(), &p("/db"), &spec).unwrap();
    let report = fs.ssync(&p("/")).unwrap();
    assert_eq!(report.added, 150);
    assert_eq!(fs.index_stats().docs, 150);

    // Three selectivity classes behave as designed.
    let many = fs
        .search(&p("/db"), &term_for_selectivity(&spec, Selectivity::Many))
        .unwrap();
    let mid = fs
        .search(
            &p("/db"),
            &term_for_selectivity(&spec, Selectivity::Intermediate),
        )
        .unwrap();
    let few = fs
        .search(&p("/db"), &term_for_selectivity(&spec, Selectivity::Few))
        .unwrap();
    assert!(many.len() > mid.len());
    assert!(mid.len() >= few.len());
    assert!(many.len() > col.files.len() / 2);

    // A semantic directory over the frequent term links most of the corpus.
    fs.smkdir(&p("/hot"), &term_for_selectivity(&spec, Selectivity::Many))
        .unwrap();
    assert_eq!(fs.readdir(&p("/hot")).unwrap().len(), many.len());
}

#[test]
fn mailbox_with_field_queries() {
    let fs = HacFs::new();
    let metas = generate_mailbox(
        fs.vfs(),
        &p("/mail"),
        &MailboxSpec {
            messages: 90,
            ..Default::default()
        },
    )
    .unwrap();
    fs.ssync(&p("/")).unwrap();

    let alice_count = metas.iter().filter(|m| m.from == "alice").count();
    fs.smkdir(&p("/from-alice"), "from:alice").unwrap();
    assert_eq!(fs.readdir(&p("/from-alice")).unwrap().len(), alice_count);

    // Combination folder ⊆ both single-key folders.
    fs.smkdir(&p("/alice-fp"), "from:alice AND subject:fingerprint")
        .unwrap();
    let both = fs.readdir(&p("/alice-fp")).unwrap().len();
    let expected = metas
        .iter()
        .filter(|m| m.from == "alice" && m.topic == "fingerprint")
        .count();
    assert_eq!(both, expected);
}

#[test]
fn source_tree_with_code_transducer() {
    let fs = HacFs::new();
    let tree = generate_source_tree(fs.vfs(), &p("/src"), &SourceTreeSpec::default()).unwrap();
    fs.ssync(&p("/")).unwrap();

    // Every module's files include its own header; the include field finds
    // them.
    fs.smkdir(&p("/uses-mod00"), "include:mod00.h").unwrap();
    let hits = fs.readdir(&p("/uses-mod00")).unwrap();
    assert_eq!(hits.len(), SourceTreeSpec::default().files_per_module);

    // stdio users span every module.
    fs.smkdir(&p("/uses-stdio"), "include:stdio.h").unwrap();
    let stdio = fs.readdir(&p("/uses-stdio")).unwrap().len();
    let spec = SourceTreeSpec::default();
    assert_eq!(stdio, spec.modules * spec.files_per_module);
    assert!(tree.files.len() > stdio);
}

#[test]
fn two_hop_remote_classification() {
    // Colleague A curates a semantic directory over their corpus.
    let a = Arc::new(HacFs::new());
    a.mkdir_p(&p("/pub")).unwrap();
    a.save(
        &p("/pub/fp-survey.txt"),
        b"fingerprint survey of matching methods",
    )
    .unwrap();
    a.save(&p("/pub/fp-weird.txt"), b"fingerprint numerology nonsense")
        .unwrap();
    a.save(&p("/pub/cooking.txt"), b"stew recipe").unwrap();
    a.ssync(&p("/")).unwrap();
    a.smkdir(&p("/pub/good-fp"), "fingerprint").unwrap();
    // A rejects the nonsense result by hand.
    a.unlink(&p("/pub/good-fp/fp-weird.txt")).unwrap();

    // User B mounts A's *curated* directory and builds on it.
    let b = HacFs::new();
    b.mkdir_p(&p("/colleagues/a")).unwrap();
    b.smount(
        &p("/colleagues/a"),
        Arc::new(RemoteHac::new(
            "a-export",
            Arc::clone(&a),
            p("/pub/good-fp"),
        )),
    )
    .unwrap();
    b.smkdir(&p("/fp"), "fingerprint").unwrap();
    let names: Vec<String> = b
        .readdir(&p("/fp"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    // Only the survey survives: A's curation propagated to B.
    assert_eq!(names, vec!["fp-survey.txt"]);

    // B reads the remote content through the link.
    let body = b.fetch_link(&p("/fp/fp-survey.txt")).unwrap();
    assert_eq!(body, b"fingerprint survey of matching methods".to_vec());
}

#[test]
fn snapshot_restore_then_reindex() {
    let fs = HacFs::new();
    generate_docs(
        fs.vfs(),
        &p("/db"),
        &DocCollectionSpec {
            files: 40,
            ..Default::default()
        },
    )
    .unwrap();
    fs.ssync(&p("/")).unwrap();
    let bytes = hac_vfs::persist::snapshot(fs.vfs()).unwrap();

    // Restore into a fresh HAC instance; the index is rebuilt from the
    // restored namespace (HAC metadata is runtime state).
    let restored = HacFs::new();
    hac_vfs::persist::restore(restored.vfs(), &bytes).unwrap();
    let report = restored.ssync(&p("/")).unwrap();
    assert_eq!(report.added, 40);
    assert_eq!(restored.index_stats().docs, fs.index_stats().docs);
}

#[test]
fn trace_replay_keeps_hac_consistent() {
    let fs = HacFs::new();
    // Two semantic dirs watching the trace area.
    for op in generate_trace(&TraceSpec {
        ops: 150,
        ..Default::default()
    }) {
        let _ = match op {
            TraceOp::Mkdir(path) => fs.mkdir(&path).map(|_| ()),
            TraceOp::Save(path, text) => fs.save(&path, text.as_bytes()).map(|_| ()),
            TraceOp::Unlink(path) => fs.unlink(&path),
            TraceOp::Rename(a, b) => fs.rename(&a, &b),
            TraceOp::Read(path) => fs.read_file(&path).map(|_| ()),
        };
    }
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/watch"), "*").unwrap();
    let linked = fs.readdir(&p("/watch")).unwrap().len() as u64;
    assert_eq!(
        linked,
        fs.index_stats().docs,
        "watch-all links every live indexed file"
    );

    // More trace activity, then sync: still consistent and idempotent.
    for op in generate_trace(&TraceSpec {
        ops: 80,
        seed: 99,
        ..Default::default()
    }) {
        let _ = match op {
            TraceOp::Mkdir(path) => fs.mkdir(&path).map(|_| ()),
            TraceOp::Save(path, text) => fs.save(&path, text.as_bytes()).map(|_| ()),
            TraceOp::Unlink(path) => fs.unlink(&path),
            TraceOp::Rename(a, b) => fs.rename(&a, &b),
            TraceOp::Read(path) => fs.read_file(&path).map(|_| ()),
        };
    }
    fs.ssync(&p("/")).unwrap();
    let linked = fs.readdir(&p("/watch")).unwrap().len() as u64;
    assert_eq!(linked, fs.index_stats().docs);
    let again = fs.ssync(&p("/")).unwrap();
    assert_eq!((again.added, again.updated, again.removed), (0, 0, 0));
}

#[test]
fn semantic_folders_under_plain_directories_see_the_world() {
    // Regression test for the scope-transparency decision (DESIGN.md §5.1).
    let fs = HacFs::new();
    fs.mkdir_p(&p("/data/deep/corner")).unwrap();
    fs.save(&p("/data/deep/corner/x.txt"), b"quasar light curves")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    fs.mkdir_p(&p("/home/me/folders/astro")).unwrap();
    fs.smkdir(&p("/home/me/folders/astro/quasars"), "quasar")
        .unwrap();
    assert_eq!(
        fs.readdir(&p("/home/me/folders/astro/quasars"))
            .unwrap()
            .len(),
        1
    );

    // But an explicit path() reference means the subtree closure: /data
    // physically holds the file, an unrelated empty area does not. (Note
    // that link *targets* count — referencing /home/me/folders would also
    // find x.txt through the quasars folder's link, by design.)
    fs.smkdir(&p("/only-data"), "quasar AND path(/data)")
        .unwrap();
    assert_eq!(fs.readdir(&p("/only-data")).unwrap().len(), 1);
    fs.mkdir_p(&p("/home/me/empty-area")).unwrap();
    fs.smkdir(&p("/nothing-there"), "quasar AND path(/home/me/empty-area)")
        .unwrap();
    assert_eq!(
        fs.readdir(&p("/nothing-there"))
            .unwrap()
            .iter()
            .filter(|e| e.kind != hac_vfs::NodeKind::Dir)
            .count(),
        0
    );
}

#[test]
fn daemon_keeps_folders_fresh() {
    let fs = Arc::new(HacFs::new());
    fs.mkdir(&p("/in")).unwrap();
    fs.save(&p("/in/a.txt"), b"gravitational waves").unwrap();
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/gw"), "gravitational").unwrap();
    assert_eq!(fs.readdir(&p("/gw")).unwrap().len(), 1);

    let daemon = ReindexDaemon::spawn(Arc::clone(&fs), std::time::Duration::from_millis(10));
    fs.save(&p("/in/b.txt"), b"more gravitational wave detections")
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while fs.readdir(&p("/gw")).unwrap().len() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never refiled the folder"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    daemon.stop();
}

#[test]
fn prelude_parse_and_manual_query_evaluation() {
    // The query crate is usable standalone through the facade.
    let q = parse("alpha AND NOT beta").unwrap();
    assert_eq!(q.display_with(|_| None), "(alpha AND NOT beta)");
    let fs = HacFs::new();
    fs.save(&p("/a.txt"), b"alpha only").unwrap();
    fs.save(&p("/b.txt"), b"alpha beta both").unwrap();
    fs.ssync(&p("/")).unwrap();
    let hits = fs.search(&p("/"), "alpha AND NOT beta").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].to_string(), "/a.txt");
}

#[test]
fn prefix_and_metadata_attributes_compose_through_the_facade() {
    let fs = HacFs::new();
    fs.mkdir(&p("/docs")).unwrap();
    fs.save(
        &p("/docs/fingerprint-survey.txt"),
        b"matching methods overview",
    )
    .unwrap();
    fs.save(&p("/docs/fingers.md"), b"piano exercise plan")
        .unwrap();
    fs.save(&p("/docs/toes.txt"), b"unrelated entirely")
        .unwrap();
    fs.ssync(&p("/")).unwrap();

    // Prefix over content and name attributes in one query.
    fs.smkdir(&p("/f-things"), "finger* OR name:fingers")
        .unwrap();
    let listing: Vec<String> = fs
        .readdir(&p("/f-things"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    // "finger*" matches nothing in content (no word starts with finger in
    // the bodies), but name:fingers matches fingers.md; widen via ext.
    assert_eq!(listing, vec!["fingers.md"]);

    fs.set_query(&p("/f-things"), "name:fingerprint OR ext:md")
        .unwrap();
    let listing: Vec<String> = fs
        .readdir(&p("/f-things"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(listing, vec!["fingerprint-survey.txt", "fingers.md"]);

    // Explained search agrees with the directory result.
    let (hits, stats) = fs
        .search_explained(&p("/"), "name:fingerprint OR ext:md")
        .unwrap();
    assert_eq!(hits.len(), 2);
    assert!(stats.verified >= stats.false_positives);
}
