//! A walkthrough of the paper's claims, section by section, as one
//! executable narrative. Each block quotes the claim it asserts.

use std::sync::Arc;

use hac::prelude::*;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn names(fs: &HacFs, dir: &str) -> Vec<String> {
    fs.readdir(&p(dir))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect()
}

#[test]
fn the_paper_end_to_end() {
    // ---- §1: "a new file system that combines name-based and
    // content-based access to files at the same time."
    let fs = HacFs::new();
    fs.mkdir_p(&p("/home/udi/notes")).unwrap();
    fs.mkdir_p(&p("/home/udi/mail")).unwrap();
    fs.save(
        &p("/home/udi/notes/alg.txt"),
        b"fingerprint matching algorithm",
    )
    .unwrap();
    fs.save(
        &p("/home/udi/mail/m1.eml"),
        b"From: gopal@cs.arizona.edu\nSubject: fingerprint deadline\n\nDraft due Friday.\n",
    )
    .unwrap();
    fs.save(
        &p("/home/udi/mail/m2.eml"),
        b"From: dean@univ.edu\nSubject: parking\n\nPermits.\n",
    )
    .unwrap();
    fs.ssync(&p("/")).unwrap();
    // Name-based access works untouched…
    assert!(fs.read_file(&p("/home/udi/notes/alg.txt")).is_ok());
    // …and content-based access over the same namespace.
    assert_eq!(fs.search(&p("/"), "fingerprint").unwrap().len(), 2);

    // ---- §2.2: "users can create new files within" semantic directories,
    // unlike SFS's virtual directories.
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.save(&p("/fp/scratch.txt"), b"working notes").unwrap();
    assert!(names(&fs, "/fp").contains(&"scratch.txt".to_string()));

    // ---- §2.3: the three link classes and their guarantees.
    // (i) "deleting some irrelevant links returned by the query":
    fs.unlink(&p("/fp/m1.eml")).unwrap();
    // (ii) "creating new links to files … missed by the query":
    fs.symlink(&p("/fp/parking"), &p("/home/udi/mail/m2.eml"))
        .unwrap();
    // Reindexing "will not … implicitly add" the prohibited link, and
    // never removes the permanent one.
    fs.reindex_full().unwrap();
    let listing = names(&fs, "/fp");
    assert!(
        !listing.contains(&"m1.eml".to_string()),
        "prohibited stayed out"
    );
    assert!(
        listing.contains(&"parking".to_string()),
        "permanent stayed in"
    );

    // "The set of transient symbolic links in sd is always a subset of the
    // scope provided by its parent":
    fs.smkdir(&p("/fp/mail"), "from:gopal OR from:dean")
        .unwrap();
    let parent_scope = fs.scope_of(&p("/fp")).unwrap();
    for doc in fs.result_bitmap(&p("/fp/mail")).unwrap().ids() {
        assert!(parent_scope.local.contains(doc));
    }
    // m1 was prohibited in the parent, so the child cannot see it either
    // (scope refinement): only the parking mail is in both.
    assert_eq!(names(&fs, "/fp/mail"), vec!["m2.eml"]);

    // ---- §2.4: "HAC does not remove data-inconsistencies instantly".
    fs.save(&p("/home/udi/notes/new.txt"), b"another fingerprint study")
        .unwrap();
    assert!(
        !names(&fs, "/fp").contains(&"new.txt".to_string()),
        "lazy until reindex"
    );
    fs.ssync(&p("/")).unwrap();
    assert!(names(&fs, "/fp").contains(&"new.txt".to_string()));

    // ---- §2.5: queries over existing results, rename-stable.
    fs.smkdir(&p("/deadlines"), "deadline AND path(/fp)")
        .unwrap();
    assert!(!names(&fs, "/deadlines").iter().any(|n| n.contains("m1")));
    fs.rename(&p("/fp"), &p("/fingerprint-project")).unwrap();
    assert_eq!(
        fs.get_query(&p("/deadlines")).unwrap(),
        "(deadline AND path(/fingerprint-project))",
        "the global map keeps queries valid across renames"
    );
    // "We do not allow cycles to exist in this graph".
    assert!(matches!(
        fs.set_query(&p("/fingerprint-project"), "x AND path(/deadlines)"),
        Err(HacError::CycleDetected { .. })
    ));

    // ---- §3: semantic mount points.
    let library = Arc::new(WebSearchSim::new("library"));
    library.publish("lib/fp1", "FP survey", b"fingerprint verification survey");
    library.publish("lib/cook", "Cooking", b"pasta recipe");
    fs.mkdir_p(&p("/lib")).unwrap();
    fs.smount(&p("/lib"), library).unwrap();
    fs.set_query(&p("/fingerprint-project"), "fingerprint")
        .unwrap();
    let listing = names(&fs, "/fingerprint-project");
    assert!(
        listing.iter().any(|n| n.contains("FP_survey")),
        "{listing:?}"
    );
    // "users can create their own personal content-based classification of
    // remote information" — and edit it like anything else.
    let remote_link = listing
        .iter()
        .find(|n| n.contains("FP_survey"))
        .unwrap()
        .clone();
    let content = fs
        .fetch_link(&p(&format!("/fingerprint-project/{remote_link}")))
        .unwrap();
    assert_eq!(content, b"fingerprint verification survey".to_vec());

    // ---- §4: the per-directory compact result representation is N/8.
    let bitmap = fs.result_bitmap(&p("/fingerprint-project")).unwrap();
    let n = fs.index_stats().docs;
    assert!(
        bitmap.bytes() <= (n / 8 + 8) && bitmap.bytes() >= n / 8 / 8,
        "bytes {} for N={n}",
        bitmap.bytes()
    );
}
