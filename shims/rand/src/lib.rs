//! Offline stand-in for the `rand` crate.
//!
//! The corpus generators only need a seedable, deterministic RNG with
//! `gen`, `gen_range` and `gen_bool`. [`rngs::StdRng`] here is splitmix64 —
//! statistically fine for corpus synthesis, deliberately not cryptographic.
//! Stream values differ from the real `rand` crate; corpora are therefore
//! deterministic per-build but not bit-identical to upstream's.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_standard(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

/// Element types samplable uniformly from a half-open range. The element
/// type (not the range) carries the impl so call sites like
/// `let k: u32 = rng.gen_range(1..97)` infer the literal's type from the
/// expected output, matching real `rand` inference behavior.
pub trait SampleUniform: Sized {
    /// Draws one value in `range` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is negligible for the corpus-sized spans used
                // here (span << 2^64).
                let v = (rng.next_u64() as u128) % span;
                (range.start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<f64>, rng: &mut R) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::sample_standard(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<f32>, rng: &mut R) -> f32 {
        f64::sample_range(range.start as f64..range.end as f64, rng) as f32
    }
}

/// User-facing sampling methods, in scope via `use rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (e.g. `f64` in [0, 1)).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable RNG constructors, in scope via `use rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds an RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (splitmix64; not the real `StdRng` algorithm).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014); passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(s))
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0usize..10);
            assert!(x < 10);
            assert_eq!(x, b.gen_range(0usize..10));
        }
        let f: f64 = a.gen();
        assert!((0.0..1.0).contains(&f));
        let g = a.gen_range(0.25..2.5);
        assert!((0.25..2.5).contains(&g));
    }
}
