//! Offline stand-in for the `serde_derive` crate.
//!
//! The build environment has no network access (no `syn`/`quote`), so the
//! derive macros here hand-parse the item token stream and emit impls as
//! formatted source strings. Supported shapes — exactly what this workspace
//! derives: non-generic named structs, tuple/newtype structs, unit structs,
//! and enums with unit/newtype/tuple/struct variants. The only supported
//! field attribute is `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (empty for tuple fields), type source text, and
/// the optional `with` module path.
struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives `serde::ser::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let body = gen_serialize(&item);
    wrap_in_const(&body)
}

/// Derives `serde::de::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let body = gen_deserialize(&item);
    wrap_in_const(&body)
}

fn wrap_in_const(body: &str) -> TokenStream {
    let src = format!("const _: () = {{ {body} }};");
    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid code: {e}\n{src}"))
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility; find `struct` / `enum`.
    let is_enum = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum found"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive shim: expected type name, got {t:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(parse_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
        t => panic!("serde_derive shim: unexpected token after type name: {t:?}"),
    };

    Input { name, kind }
}

/// Consumes leading `#[...]` attributes, returning the `with` module from a
/// `#[serde(with = "...")]` if present.
fn take_attrs(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Option<String> {
    let mut with = None;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let group = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    t => panic!("serde_derive shim: malformed attribute: {t:?}"),
                };
                let mut inner = group.stream().into_iter();
                match inner.next() {
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {
                        let args = match inner.next() {
                            Some(TokenTree::Group(g)) => g.stream(),
                            t => panic!("serde_derive shim: malformed serde attribute: {t:?}"),
                        };
                        with = Some(parse_with_attr(args));
                    }
                    _ => {} // doc comments, cfg, etc. — ignore
                }
            }
            _ => return with,
        }
    }
}

fn parse_with_attr(args: TokenStream) -> String {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "with" && eq.as_char() == '=' =>
        {
            let s = lit.to_string();
            s.trim_matches('"').to_string()
        }
        _ => panic!("serde_derive shim: only #[serde(with = \"module\")] is supported"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let with = take_attrs(&mut tokens);
        match tokens.peek() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => {}
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("serde_derive shim: expected field name, got {t:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("serde_derive shim: expected ':' after field {name}, got {t:?}"),
        }
        let ty = take_type(&mut tokens);
        fields.push(Field { name, ty, with });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let with = take_attrs(&mut tokens);
        match tokens.peek() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => {}
        }
        if tokens.peek().is_none() {
            break;
        }
        let ty = take_type(&mut tokens);
        fields.push(Field {
            name: String::new(),
            ty,
            with,
        });
    }
    fields
}

/// Collects type tokens up to a top-level `,` (tracking `<...>` depth).
fn take_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> String {
    let mut depth = 0i32;
    let mut parts: Vec<String> = Vec::new();
    while let Some(tok) = tokens.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                tokens.next();
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        parts.push(tokens.next().unwrap().to_string());
    }
    parts.join(" ")
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("serde_derive shim: expected variant name, got {t:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                VariantFields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(g))
            }
            _ => VariantFields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                panic!("serde_derive shim: explicit discriminants are not supported");
            }
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize codegen

/// Emits helper wrapper types for `with`-annotated fields and returns the
/// expression serializing `access` (a place expression of type `&{ty}`).
fn ser_field_expr(helpers: &mut String, field: &Field, access: &str, tag: &str) -> String {
    match &field.with {
        None => access.to_string(),
        Some(module) => {
            let ty = &field.ty;
            helpers.push_str(&format!(
                "struct __SerWith{tag}<'__a>(&'__a {ty});\n\
                 impl<'__a> ::serde::ser::Serialize for __SerWith{tag}<'__a> {{\n\
                     fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         {module}::serialize(self.0, __serializer)\n\
                     }}\n\
                 }}\n"
            ));
            format!("&__SerWith{tag}({access})")
        }
    }
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let mut helpers = String::new();
    let body = match &item.kind {
        Kind::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Kind::TupleStruct(fields) if fields.len() == 1 => {
            let expr = ser_field_expr(&mut helpers, &fields[0], "&self.0", "0");
            format!(
                "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", {expr})"
            )
        }
        Kind::TupleStruct(fields) => {
            let n = fields.len();
            let mut out = format!(
                "let mut __s = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for (i, f) in fields.iter().enumerate() {
                let expr = ser_field_expr(&mut helpers, f, &format!("&self.{i}"), &i.to_string());
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __s, {expr})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__s)");
            out
        }
        Kind::NamedStruct(fields) => {
            let n = fields.len();
            let mut out = format!(
                "let mut __s = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for (i, f) in fields.iter().enumerate() {
                let fname = &f.name;
                let expr =
                    ser_field_expr(&mut helpers, f, &format!("&self.{fname}"), &i.to_string());
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, \"{fname}\", {expr})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__s)");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\"),\n"
                        ));
                    }
                    VariantFields::Tuple(fields) if fields.len() == 1 => {
                        let tag = format!("{vi}_0");
                        let expr = ser_field_expr(&mut helpers, &fields[0], "__f0", &tag);
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", {expr}),\n"
                        ));
                    }
                    VariantFields::Tuple(fields) => {
                        let n = fields.len();
                        let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __s = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", {n}usize)?;\n",
                            binders.join(", ")
                        );
                        for (i, f) in fields.iter().enumerate() {
                            let tag = format!("{vi}_{i}");
                            let expr = ser_field_expr(&mut helpers, f, &format!("__f{i}"), &tag);
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __s, {expr})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__s)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantFields::Named(fields) => {
                        let n = fields.len();
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __s = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", {n}usize)?;\n",
                            binders.join(", ")
                        );
                        for (i, f) in fields.iter().enumerate() {
                            let fname = &f.name;
                            let tag = format!("{vi}_{i}");
                            let expr = ser_field_expr(&mut helpers, f, fname, &tag);
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __s, \"{fname}\", {expr})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__s)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{helpers}\n\
         #[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen

/// Emits the `let __f{i} = ...;` bindings reading `fields` in order from a
/// `SeqAccess` value named `__seq` whose access type parameter is `{acc}`.
fn de_field_lets(fields: &[Field], acc: &str, tag_prefix: &str) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        let missing = format!(
            "::core::option::Option::None => return ::core::result::Result::Err(<{acc}::Error as ::serde::de::Error>::custom(\"missing field {i}\")),"
        );
        match &f.with {
            None => {
                out.push_str(&format!(
                    "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         ::core::option::Option::Some(__v) => __v,\n\
                         {missing}\n\
                     }};\n"
                ));
            }
            Some(module) => {
                let ty = &f.ty;
                out.push_str(&format!(
                    "let __f{i} = {{\n\
                         struct __Seed{tag_prefix}{i};\n\
                         impl<'de> ::serde::de::DeserializeSeed<'de> for __Seed{tag_prefix}{i} {{\n\
                             type Value = {ty};\n\
                             fn deserialize<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                                 -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                                 {module}::deserialize(__d)\n\
                             }}\n\
                         }}\n\
                         match ::serde::de::SeqAccess::next_element_seed(&mut __seq, __Seed{tag_prefix}{i})? {{\n\
                             ::core::option::Option::Some(__v) => __v,\n\
                             {missing}\n\
                         }}\n\
                     }};\n"
                ));
            }
        }
    }
    out
}

/// Builds a construction expression from `__f{i}` binders.
fn construct(name: &str, variant: Option<&str>, fields: &VariantFields) -> String {
    let path = match variant {
        Some(v) => format!("{name}::{v}"),
        None => name.to_string(),
    };
    match fields {
        VariantFields::Unit => path,
        VariantFields::Tuple(fs) => {
            let args: Vec<String> = (0..fs.len()).map(|i| format!("__f{i}")).collect();
            format!("{path}({})", args.join(", "))
        }
        VariantFields::Named(fs) => {
            let args: Vec<String> = fs
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{}: __f{i}", f.name))
                .collect();
            format!("{path} {{ {} }}", args.join(", "))
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let (visitor_impl, entry) = match &item.kind {
        Kind::UnitStruct => (
            format!(
                "fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n"
            ),
            format!(
                "::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
        Kind::TupleStruct(fields) if fields.len() == 1 => (
            format!(
                "fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n"
            ),
            format!(
                "::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
        Kind::TupleStruct(fields) => {
            let lets = de_field_lets(fields, "__A", "t");
            let cons = construct(name, None, &VariantFields::Tuple(fields.iter().map(clone_field).collect()));
            let n = fields.len();
            (
                format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {lets}\n\
                         ::core::result::Result::Ok({cons})\n\
                     }}\n"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, __Visitor)"
                ),
            )
        }
        Kind::NamedStruct(fields) => {
            let lets = de_field_lets(fields, "__A", "s");
            let cons = construct(name, None, &VariantFields::Named(fields.iter().map(clone_field).collect()));
            let field_names: Vec<String> =
                fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
            (
                format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {lets}\n\
                         ::core::result::Result::Ok({cons})\n\
                     }}\n"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __Visitor)",
                    field_names.join(", ")
                ),
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{vi}u32 => {{\n\
                                 ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                                 ::core::result::Result::Ok({name}::{vname})\n\
                             }}\n"
                        ));
                    }
                    VariantFields::Tuple(fields) if fields.len() == 1 && fields[0].with.is_none() => {
                        arms.push_str(&format!(
                            "{vi}u32 => ::core::result::Result::Ok({name}::{vname}(::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                        ));
                    }
                    VariantFields::Tuple(fields) if fields.len() == 1 => {
                        // Newtype variant with a `with` module.
                        let module = fields[0].with.as_ref().unwrap();
                        let ty = &fields[0].ty;
                        arms.push_str(&format!(
                            "{vi}u32 => {{\n\
                                 struct __Seed{vi};\n\
                                 impl<'de> ::serde::de::DeserializeSeed<'de> for __Seed{vi} {{\n\
                                     type Value = {ty};\n\
                                     fn deserialize<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                                         -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                                         {module}::deserialize(__d)\n\
                                     }}\n\
                                 }}\n\
                                 ::core::result::Result::Ok({name}::{vname}(::serde::de::VariantAccess::newtype_variant_seed(__variant, __Seed{vi})?))\n\
                             }}\n"
                        ));
                    }
                    VariantFields::Tuple(fields) => {
                        let lets = de_field_lets(fields, "__A2", &format!("v{vi}x"));
                        let cons = construct(name, Some(vname), &VariantFields::Tuple(fields.iter().map(clone_field).collect()));
                        let n = fields.len();
                        arms.push_str(&format!(
                            "{vi}u32 => {{\n\
                                 struct __VariantVisitor{vi};\n\
                                 impl<'de> ::serde::de::Visitor<'de> for __VariantVisitor{vi} {{\n\
                                     type Value = {name};\n\
                                     fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A2)\n\
                                         -> ::core::result::Result<Self::Value, __A2::Error> {{\n\
                                         {lets}\n\
                                         ::core::result::Result::Ok({cons})\n\
                                     }}\n\
                                 }}\n\
                                 ::serde::de::VariantAccess::tuple_variant(__variant, {n}usize, __VariantVisitor{vi})\n\
                             }}\n"
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let lets = de_field_lets(fields, "__A2", &format!("v{vi}x"));
                        let cons = construct(name, Some(vname), &VariantFields::Named(fields.iter().map(clone_field).collect()));
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                        arms.push_str(&format!(
                            "{vi}u32 => {{\n\
                                 struct __VariantVisitor{vi};\n\
                                 impl<'de> ::serde::de::Visitor<'de> for __VariantVisitor{vi} {{\n\
                                     type Value = {name};\n\
                                     fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A2)\n\
                                         -> ::core::result::Result<Self::Value, __A2::Error> {{\n\
                                         {lets}\n\
                                         ::core::result::Result::Ok({cons})\n\
                                     }}\n\
                                 }}\n\
                                 ::serde::de::VariantAccess::struct_variant(__variant, &[{}], __VariantVisitor{vi})\n\
                             }}\n",
                            field_names.join(", ")
                        ));
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            (
                format!(
                    "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             _ => ::core::result::Result::Err(<__A::Error as ::serde::de::Error>::custom(\"unknown variant index\")),\n\
                         }}\n\
                     }}\n"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{}], __Visitor)",
                    variant_names.join(", ")
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"{name}\")\n\
                     }}\n\
                     {visitor_impl}\n\
                 }}\n\
                 {entry}\n\
             }}\n\
         }}\n"
    )
}

fn clone_field(f: &Field) -> Field {
    Field {
        name: f.name.clone(),
        ty: f.ty.clone(),
        with: f.with.clone(),
    }
}
