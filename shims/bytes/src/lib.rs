//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: clones are reference-count bumps, which
//! is the property the VFS layer relies on (cheap clone-on-read of file
//! content). `slice` copies instead of sharing a view — acceptable for this
//! workspace, which only slices inside `read_at`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable buffer of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static slice (copied; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new buffer holding the given subrange.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Copies the buffer into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.len(), 11);
        assert_eq!(&b[0..5], b"hello");
        assert_eq!(b.slice(6..11).to_vec(), b"world".to_vec());
        let c = b.clone();
        assert_eq!(c, b);
    }
}
