//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is used by this workspace; it is implemented
//! over `std::sync::mpsc`, preserving crossbeam's error-type names and the
//! rendezvous behaviour of `bounded(0)` (std's `sync_channel(0)` has the
//! same semantics).

pub mod channel {
    //! MPMC-flavoured channels over `std::sync::mpsc` (MPSC is sufficient
    //! for this workspace: receivers are never shared across threads).

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam, Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    #[derive(Debug)]
    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates over messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }

        /// Iterates over currently pending messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.try_iter()
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel buffering at most `cap` messages (`0` = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 5);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
