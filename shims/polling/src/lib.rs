//! Offline stand-in for the `polling` crate: a minimal readiness poller.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses. On Linux the
//! poller is a thin wrapper over `epoll` (O(ready) wakeups — the 10k-
//! connection case the evented `hac-net` server is built for); on other
//! unix platforms it degrades to `poll(2)` (O(registered) per wait, still
//! correct). Both backends are level-triggered.
//!
//! The only unsafe code in the networking stack lives here: raw syscall
//! declarations against the C library `std` already links. `hac-net`
//! itself stays `#![forbid(unsafe_code)]`.
//!
//! Cross-thread wakeups use a self-pipe registered under a reserved key;
//! [`Poller::notify`] writes one byte, [`Poller::wait`] drains it and
//! returns without surfacing the internal event. User keys must therefore
//! be below [`NOTIFY_KEY`].

#![cfg(unix)]
#![warn(missing_docs)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Reserved key for the internal wakeup pipe; user keys must be below it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// What readiness to watch a file descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: usize,
    /// Readable (includes peer hangup/error — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A readiness poller over nonblocking file descriptors.
pub struct Poller {
    sys: sys::Selector,
    wake_read: RawFd,
    wake_write: RawFd,
}

impl Poller {
    /// Creates a poller with its wakeup pipe already registered.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures (fd exhaustion, kernel limits).
    pub fn new() -> io::Result<Poller> {
        let sys = sys::Selector::new()?;
        let (wake_read, wake_write) = sys::pipe_nonblocking()?;
        sys.add(wake_read, NOTIFY_KEY, Interest::READ)?;
        Ok(Poller {
            sys,
            wake_read,
            wake_write,
        })
    }

    /// Registers `fd` under `key`. The fd should already be nonblocking.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the reserved key; otherwise syscall errors.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key reserved for the poller's wakeup pipe",
            ));
        }
        self.sys.add(fd, key, interest)
    }

    /// Changes what `fd` (registered under `key`) is watched for.
    ///
    /// # Errors
    ///
    /// Syscall errors (e.g. the fd was never registered).
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.sys.modify(fd, key, interest)
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Syscall errors (e.g. the fd was never registered).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.sys.delete(fd)
    }

    /// Blocks until at least one registered fd is ready, `timeout` expires
    /// (`None` = forever), or [`notify`](Poller::notify) is called.
    /// Internal wakeup events are drained and not surfaced; an empty
    /// result therefore means timeout *or* notification.
    ///
    /// # Errors
    ///
    /// Syscall errors. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.sys.wait(events, timeout)?;
        let mut notified = false;
        events.retain(|e| {
            if e.key == NOTIFY_KEY {
                notified = true;
                false
            } else {
                true
            }
        });
        if notified {
            sys::drain(self.wake_read);
        }
        Ok(events.len())
    }

    /// Wakes a concurrent [`wait`](Poller::wait) from another thread.
    /// Safe to call at any time; coalesces with pending notifications.
    pub fn notify(&self) {
        sys::write_byte(self.wake_write);
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.wake_read);
        sys::close_fd(self.wake_write);
    }
}

/// Raises the soft `RLIMIT_NOFILE` to at least `want` descriptors (capped
/// at the hard limit). Lets connection-soak tests and benches open a few
/// thousand sockets on systems whose default soft limit is 1024.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failures.
pub fn ensure_nofile(want: u64) -> io::Result<u64> {
    sys::ensure_nofile(want)
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend.

    use super::{Event, Interest};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;
    const RLIMIT_NOFILE: c_int = 7;

    // The kernel packs epoll_event on x86_64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: key as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest)
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs deadline does not spin at timeout 0.
                Some(d) => {
                    d.as_millis().min(i32::MAX as u128) as c_int
                        + c_int::from(d.subsec_micros() % 1000 != 0)
                }
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let rc = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), 256, ms) };
            let n = if rc >= 0 {
                rc as usize
            } else {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // Interrupted: report an empty (timeout-like) wait rather
                // than re-arming with the original timeout and oversleeping.
                0
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    key: ev.data as usize,
                    // Errors and hangups surface as readable: the next read
                    // returns 0/error instead of blocking.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            close_fd(self.epfd);
        }
    }

    pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        while unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) } > 0 {}
    }

    pub fn write_byte(fd: RawFd) {
        let b = [1u8];
        // A full pipe already guarantees a pending wakeup; ignore errors.
        let _ = unsafe { write(fd, b.as_ptr().cast::<c_void>(), 1) };
    }

    pub fn close_fd(fd: RawFd) {
        let _ = unsafe { close(fd) };
    }

    pub fn ensure_nofile(want: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let raised = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(raised.cur)
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) backend: portable, O(registered fds) per wait.

    use super::{Event, Interest};
    use std::io;
    use std::os::raw::{c_int, c_short, c_void};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const O_NONBLOCK: c_int = 0o4;
    const F_SETFL: c_int = 4;
    const RLIMIT_NOFILE: c_int = 8;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    pub struct Selector {
        registered: Mutex<Vec<(RawFd, usize, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().expect("poll registry");
            if reg.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.push((fd, key, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().expect("poll registry");
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, key, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registered.lock().expect("poll registry");
            let before = reg.len();
            reg.retain(|(f, _, _)| *f != fd);
            if reg.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let snapshot: Vec<(RawFd, usize, Interest)> =
                self.registered.lock().expect("poll registry").clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms: c_int = match timeout {
                None => -1,
                Some(d) => {
                    d.as_millis().min(i32::MAX as u128) as c_int
                        + c_int::from(d.subsec_micros() % 1000 != 0)
                }
            };
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, (_, key, _)) in fds.iter().zip(snapshot.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    key: *key,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok((fds[0], fds[1]))
    }

    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        while unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) } > 0 {}
    }

    pub fn write_byte(fd: RawFd) {
        let b = [1u8];
        let _ = unsafe { write(fd, b.as_ptr().cast::<c_void>(), 1) };
    }

    pub fn close_fd(fd: RawFd) {
        let _ = unsafe { close(fd) };
    }

    pub fn ensure_nofile(want: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let raised = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(raised.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn readiness_on_a_loopback_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let mut client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 1);
        assert!(events[0].readable);

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.key == 2 && e.readable));

        // Write interest on an empty socket buffer fires immediately.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::BOTH)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.writable));

        poller.delete(server_side.as_raw_fd()).unwrap();
        poller.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "hangup must surface as readable");
        let mut buf = [0u8; 8];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 0, "read sees EOF, not a block");
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "notification is internal, not a user event");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "notify must interrupt the wait"
        );
        handle.join().unwrap();
    }

    #[test]
    fn reserved_key_is_refused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller
            .add(listener.as_raw_fd(), NOTIFY_KEY, Interest::READ)
            .is_err());
    }

    #[test]
    fn nofile_limit_can_be_raised() {
        let got = ensure_nofile(256).unwrap();
        assert!(got >= 256);
    }
}
