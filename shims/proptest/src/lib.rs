//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/`proptest!` subset this workspace's property
//! tests use: range and `Just` strategies, tuples, `prop_map`, `prop_oneof`,
//! `prop_recursive`, `collection::{vec, btree_set}`, and a tiny
//! character-class regex subset for string strategies (`"[a-z]{1,6}"`).
//! Inputs are generated from a deterministic per-test RNG; there is **no
//! shrinking** — a failing case panics with the assertion message directly.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Failure from one test case. In this stand-in assertions panic directly,
/// so values of this type only flow through explicit `Err` returns in
/// helper functions.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 RNG used by the runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Builds the deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    TestRng {
        state: h.finish() | 1,
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the inner
    /// level and returns the strategy for one level up. `depth` bounds the
    /// nesting; the remaining parameters are accepted for API compatibility
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.inner.new_value(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Builds a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategy from a tiny regex subset: literal characters,
/// `[a-z0-9_]`-style classes (ranges and singles), and `{m,n}` / `{n}`
/// quantifiers. Anything unparseable falls back to the literal text.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a character class or a single literal character.
        let atom: Vec<char> = if chars[i] == '[' {
            let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                Some(p) => i + 1 + p,
                None => return pat.to_string(), // unbalanced: treat as literal
            };
            let mut set = Vec::new();
            let body = &chars[i + 1..close];
            let mut j = 0;
            while j < body.len() {
                if j + 2 < body.len() && body[j + 1] == '-' {
                    let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                    for c in lo..=hi {
                        if let Some(c) = char::from_u32(c) {
                            set.push(c);
                        }
                    }
                    j += 3;
                } else {
                    set.push(body[j]);
                    j += 1;
                }
            }
            i = close + 1;
            if set.is_empty() {
                return pat.to_string();
            }
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Quantifier: {m,n} or {n}, else exactly once.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = match chars[i + 1..].iter().position(|&c| c == '}') {
                Some(p) => i + 1 + p,
                None => return pat.to_string(),
            };
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let parts: Vec<&str> = body.split(',').collect();
            match parts.as_slice() {
                [n] => match n.trim().parse::<u64>() {
                    Ok(n) => (n, n),
                    Err(_) => return pat.to_string(),
                },
                [m, n] => match (m.trim().parse::<u64>(), n.trim().parse::<u64>()) {
                    (Ok(m), Ok(n)) => (m, n),
                    _ => return pat.to_string(),
                },
                _ => return pat.to_string(),
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(atom[rng.below(atom.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy yielding unconstrained values of `T`.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for ordered sets with target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bounded retries keep this total.
            for _ in 0..target * 4 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }

    /// Generates ordered sets of `element` values with size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    // The closure lets bodies use `?` with TestCaseError,
                    // as real proptest allows.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __outcome {
                        panic!("test case failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// `assert!` under proptest's spelling (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 0..10u8, s in "[a-z]{2,4}", v in crate::collection::vec(0..5usize, 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_recursive(n in prop_oneof![Just(1u8), 5..7u8]) {
            prop_assert!(n == 1 || n == 5 || n == 6);
        }
    }
}
