//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small API subset it actually uses, implemented over `std::sync`. Poisoning
//! is deliberately ignored (a panic while holding a lock does not poison the
//! data for later readers), which matches `parking_lot` semantics.

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
