//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! serde data-model subset that `hac_vfs::persist`'s hand-rolled codec and
//! the `#[derive(Serialize, Deserialize)]` shapes in this repository
//! actually exercise: primitives, strings, bytes, options, sequences, maps,
//! tuples, structs (encoded as sequences), and enums (encoded as
//! variant-index + payload). The trait signatures mirror upstream serde so
//! the codec compiles unchanged.

pub mod ser;

pub mod de;

pub use de::Deserialize;
pub use de::Deserializer;
pub use ser::Serialize;
pub use ser::Serializer;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Forwards type-directed `deserialize_*` calls to `deserialize_any`, for
/// self-describing formats.
#[macro_export]
macro_rules! forward_to_deserialize_any {
    (<$visitor:ident: Visitor<$lifetime:tt>> $($func:ident)*) => {
        $($crate::forward_to_deserialize_any_helper!{$func<$lifetime>})*
    };
    ($($func:ident)*) => {
        $($crate::forward_to_deserialize_any_helper!{$func<'de>})*
    };
}

/// Implementation detail of [`forward_to_deserialize_any!`].
#[doc(hidden)]
#[macro_export]
macro_rules! forward_to_deserialize_any_helper {
    (bool<$l:tt>) => {
        $crate::forward_simple! {deserialize_bool<$l>}
    };
    (i8<$l:tt>) => {
        $crate::forward_simple! {deserialize_i8<$l>}
    };
    (i16<$l:tt>) => {
        $crate::forward_simple! {deserialize_i16<$l>}
    };
    (i32<$l:tt>) => {
        $crate::forward_simple! {deserialize_i32<$l>}
    };
    (i64<$l:tt>) => {
        $crate::forward_simple! {deserialize_i64<$l>}
    };
    (i128<$l:tt>) => {
        $crate::forward_simple! {deserialize_i128<$l>}
    };
    (u8<$l:tt>) => {
        $crate::forward_simple! {deserialize_u8<$l>}
    };
    (u16<$l:tt>) => {
        $crate::forward_simple! {deserialize_u16<$l>}
    };
    (u32<$l:tt>) => {
        $crate::forward_simple! {deserialize_u32<$l>}
    };
    (u64<$l:tt>) => {
        $crate::forward_simple! {deserialize_u64<$l>}
    };
    (u128<$l:tt>) => {
        $crate::forward_simple! {deserialize_u128<$l>}
    };
    (f32<$l:tt>) => {
        $crate::forward_simple! {deserialize_f32<$l>}
    };
    (f64<$l:tt>) => {
        $crate::forward_simple! {deserialize_f64<$l>}
    };
    (char<$l:tt>) => {
        $crate::forward_simple! {deserialize_char<$l>}
    };
    (str<$l:tt>) => {
        $crate::forward_simple! {deserialize_str<$l>}
    };
    (string<$l:tt>) => {
        $crate::forward_simple! {deserialize_string<$l>}
    };
    (bytes<$l:tt>) => {
        $crate::forward_simple! {deserialize_bytes<$l>}
    };
    (byte_buf<$l:tt>) => {
        $crate::forward_simple! {deserialize_byte_buf<$l>}
    };
    (option<$l:tt>) => {
        $crate::forward_simple! {deserialize_option<$l>}
    };
    (unit<$l:tt>) => {
        $crate::forward_simple! {deserialize_unit<$l>}
    };
    (seq<$l:tt>) => {
        $crate::forward_simple! {deserialize_seq<$l>}
    };
    (map<$l:tt>) => {
        $crate::forward_simple! {deserialize_map<$l>}
    };
    (identifier<$l:tt>) => {
        $crate::forward_simple! {deserialize_identifier<$l>}
    };
    (ignored_any<$l:tt>) => {
        $crate::forward_simple! {deserialize_ignored_any<$l>}
    };
    (unit_struct<$l:tt>) => {
        fn deserialize_unit_struct<V>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
    (newtype_struct<$l:tt>) => {
        fn deserialize_newtype_struct<V>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
    (tuple<$l:tt>) => {
        fn deserialize_tuple<V>(
            self,
            _len: usize,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
    (tuple_struct<$l:tt>) => {
        fn deserialize_tuple_struct<V>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
    (struct<$l:tt>) => {
        fn deserialize_struct<V>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
    (enum<$l:tt>) => {
        fn deserialize_enum<V>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
}

/// Implementation detail of [`forward_to_deserialize_any!`]: the common
/// single-visitor-argument method shape.
#[doc(hidden)]
#[macro_export]
macro_rules! forward_simple {
    ($func:ident<$l:tt>) => {
        fn $func<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            self.deserialize_any(visitor)
        }
    };
}
