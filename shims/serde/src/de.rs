//! Deserialization half of the serde data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Errors producible by a [`Deserializer`].
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure deserializable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A `Deserialize` that does not borrow from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stateful deserialization: a seed producing a value from a deserializer.
pub trait DeserializeSeed<'de>: Sized {
    /// The value produced.
    type Value;
    /// Deserializes the value.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any serde data structure.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes whatever the input holds next (self-describing formats).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-size tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct field name or enum variant name.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes and discards whatever comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Drives construction of a value from the shapes a deserializer reports.
///
/// Every `visit_*` method defaults to an "unexpected shape" error so
/// implementations only override the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The value being constructed.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a supported value")
    }

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected bool"))
    }
    /// Visits an `i64` (all signed ints funnel here).
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected i64"))
    }
    /// Visits a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u64` (all unsigned ints funnel here).
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected u64"))
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected f64"))
    }
    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected str"))
    }
    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits borrowed bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom("unexpected bytes"))
    }
    /// Visits `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected none"))
    }
    /// Visits `Some(_)`, delegating to the inner deserializer.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected some"))
    }
    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected unit"))
    }
    /// Visits the payload of a newtype struct.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected newtype struct"))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom("unexpected seq"))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom("unexpected map"))
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom("unexpected enum"))
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next element with a seed, or `None` at the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>
    where
        Self: Sized,
    {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next key with a seed, or `None` at the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the value paired with the most recent key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key, or `None` at the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>
    where
        Self: Sized,
    {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the value paired with the most recent key.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>
    where
        Self: Sized,
    {
        self.next_value_seed(PhantomData)
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Access to the variant payload, produced alongside the tag.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant being deserialized.
pub trait VariantAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant payload with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a deserializer yielding it.
pub trait IntoDeserializer<'de> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de>;
    /// Converts `self` into a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

impl<'de> IntoDeserializer<'de> for u32 {
    type Deserializer = value::U32Deserializer;
    fn into_deserializer(self) -> value::U32Deserializer {
        value::U32Deserializer::new(self)
    }
}

impl<'de> IntoDeserializer<'de> for u64 {
    type Deserializer = value::U64Deserializer;
    fn into_deserializer(self) -> value::U64Deserializer {
        value::U64Deserializer::new(self)
    }
}

pub mod value {
    //! Plain-value deserializers and the generic error type.

    use super::{Deserializer, Visitor};
    use std::fmt::{self, Display};

    /// A message-carrying error usable by any serializer/deserializer.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    impl crate::ser::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    macro_rules! plain_uint_deserializer {
        ($name:ident, $ty:ty) => {
            /// Deserializer yielding a single plain integer.
            #[derive(Debug, Clone, Copy)]
            pub struct $name {
                v: $ty,
            }

            impl $name {
                /// Wraps a value.
                pub fn new(v: $ty) -> Self {
                    Self { v }
                }
            }

            impl<'de> Deserializer<'de> for $name {
                type Error = Error;

                fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                    visitor.visit_u64(self.v as u64)
                }

                crate::forward_to_deserialize_any! {
                    bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
                    bytes byte_buf option unit unit_struct newtype_struct seq tuple
                    tuple_struct map struct enum identifier ignored_any
                }
            }
        };
    }

    plain_uint_deserializer!(U32Deserializer, u32);
    plain_uint_deserializer!(U64Deserializer, u64);
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types used by the workspace.

macro_rules! impl_deserialize_uint {
    ($($ty:ty => $name:ident),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                }
                deserializer.$name(V)
            }
        }
    )*};
}

impl_deserialize_uint! {
    u8 => deserialize_u8,
    u16 => deserialize_u16,
    u32 => deserialize_u32,
    u64 => deserialize_u64,
    usize => deserialize_u64,
    i8 => deserialize_i8,
    i16 => deserialize_i16,
    i32 => deserialize_i32,
    i64 => deserialize_i64,
    isize => deserialize_i64,
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f64;
            fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<f64, E> {
                Ok(v as f64)
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<f64, E> {
                Ok(v as f64)
            }
        }
        deserializer.deserialize_f64(V)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(deserializer)? as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(deserializer)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<Option<T>, D2::Error> {
                Ok(Some(T::deserialize(deserializer)?))
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V2: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V2> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<K, V2>(PhantomData<(K, V2)>);
        impl<'de, K: Deserialize<'de> + Ord, V2: Deserialize<'de>> Visitor<'de> for V<K, V2> {
            type Value = BTreeMap<K, V2>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(V(PhantomData))
    }
}

impl<'de, K, V2, H> Deserialize<'de> for HashMap<K, V2, H>
where
    K: Deserialize<'de> + Hash + Eq,
    V2: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<K, V2, H>(PhantomData<(K, V2, H)>);
        impl<'de, K, V2, H> Visitor<'de> for V<K, V2, H>
        where
            K: Deserialize<'de> + Hash + Eq,
            V2: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V2, H>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(V(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+) len $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn visit_seq<A2: SeqAccess<'de>>(
                        self,
                        mut seq: A2,
                    ) -> Result<Self::Value, A2::Error> {
                        Ok(($(
                            match seq.next_element::<$name>()? {
                                Some(v) => v,
                                None => return Err(Error::custom("tuple too short")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A) len 1;
    (A, B) len 2;
    (A, B, C) len 3;
    (A, B, C, D) len 4;
}
