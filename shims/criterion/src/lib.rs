//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple median-of-samples timer instead of criterion's full
//! statistical machinery. Results print as one line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one benchmark: a function id plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    last_nanos: Vec<u128>,
}

impl Bencher {
    /// Times `routine` over a fixed number of samples (one call each, after
    /// one warmup call) and records the measurements.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.last_nanos.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.last_nanos.push(start.elapsed().as_nanos());
        }
    }
}

fn report(group: Option<&str>, id: &str, nanos: &mut [u128]) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if nanos.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    nanos.sort_unstable();
    let median = nanos[nanos.len() / 2];
    let (lo, hi) = (nanos[0], nanos[nanos.len() - 1]);
    println!("bench {label:<48} median {median:>12} ns   [{lo} .. {hi}]");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark under this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_nanos: Vec::new(),
        };
        f(&mut b);
        report(Some(&self.name), &id.id, &mut b.last_nanos);
        self
    }

    /// Runs `f` with an input value as a benchmark under this group.
    pub fn bench_with_input<I, Id: Into<BenchmarkId>, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: Id,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_nanos: Vec::new(),
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, &mut b.last_nanos);
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs `f` as a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            last_nanos: Vec::new(),
        };
        f(&mut b);
        report(None, id, &mut b.last_nanos);
        self
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` may pass harness flags; ignore them.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("inc", 7), &7u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                n + 1
            })
        });
        group.finish();
        assert!(runs >= 3);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
