//! Per-process open-file-descriptor tables.
//!
//! The paper's user-level layer maintains a per-process file-descriptor
//! table (charged to the Andrew benchmark's Copy and Read phases). The VFS
//! models lightweight "processes": a [`ProcessId`] owns a table mapping
//! small integer descriptors to open-file state (file id, offset, mode).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::attr::FileId;
use crate::error::{VfsError, VfsResult};

/// Identifier of a lightweight process registered with the VFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u64);

/// A small-integer descriptor, unique within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd(pub u32);

/// Access mode requested at `open` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpenMode {
    /// Read-only access.
    Read,
    /// Write-only access (positioned writes; create/truncate are separate
    /// flags on `open`).
    Write,
    /// Read and write access.
    ReadWrite,
}

impl OpenMode {
    /// Whether reads are allowed.
    pub fn can_read(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }

    /// Whether writes are allowed.
    pub fn can_write(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }
}

/// State of one open descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFile {
    /// The file the descriptor refers to (descriptors survive renames, like
    /// POSIX: identity is the inode, not the path).
    pub file: FileId,
    /// Current seek offset in bytes.
    pub offset: u64,
    /// Allowed access.
    pub mode: OpenMode,
}

/// One process's descriptor table.
#[derive(Debug, Default)]
pub struct FdTable {
    open: HashMap<u32, OpenFile>,
    next_fd: u32,
}

impl FdTable {
    /// Allocates the lowest-numbered unused descriptor for `file`.
    pub fn open(&mut self, file: FileId, mode: OpenMode) -> Fd {
        // Reuse closed slots first, POSIX-style lowest-available.
        let mut fd = 0;
        while self.open.contains_key(&fd) {
            fd += 1;
        }
        self.next_fd = self.next_fd.max(fd + 1);
        self.open.insert(
            fd,
            OpenFile {
                file,
                offset: 0,
                mode,
            },
        );
        Fd(fd)
    }

    /// Looks up the state behind a descriptor.
    pub fn get(&self, fd: Fd) -> VfsResult<&OpenFile> {
        self.open.get(&fd.0).ok_or(VfsError::BadDescriptor(fd.0))
    }

    /// Looks up the state behind a descriptor, mutably.
    pub fn get_mut(&mut self, fd: Fd) -> VfsResult<&mut OpenFile> {
        self.open
            .get_mut(&fd.0)
            .ok_or(VfsError::BadDescriptor(fd.0))
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) -> VfsResult<()> {
        self.open
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(VfsError::BadDescriptor(fd.0))
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Approximate resident bytes of the table, for the memory-overhead
    /// report.
    pub fn resident_bytes(&self) -> u64 {
        (self.open.len() * std::mem::size_of::<(u32, OpenFile)>()) as u64
    }
}

/// Registry of all process descriptor tables in a VFS.
#[derive(Debug, Default)]
pub struct ProcessRegistry {
    tables: HashMap<u64, FdTable>,
    next_pid: u64,
}

impl ProcessRegistry {
    /// Registers a new process and returns its id.
    pub fn spawn(&mut self) -> ProcessId {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.tables.insert(pid.0, FdTable::default());
        pid
    }

    /// Removes a process and all of its open descriptors.
    pub fn exit(&mut self, pid: ProcessId) -> VfsResult<()> {
        self.tables
            .remove(&pid.0)
            .map(|_| ())
            .ok_or(VfsError::BadProcess(pid.0))
    }

    /// Gets a process's table.
    pub fn table(&self, pid: ProcessId) -> VfsResult<&FdTable> {
        self.tables.get(&pid.0).ok_or(VfsError::BadProcess(pid.0))
    }

    /// Gets a process's table, mutably.
    pub fn table_mut(&mut self, pid: ProcessId) -> VfsResult<&mut FdTable> {
        self.tables
            .get_mut(&pid.0)
            .ok_or(VfsError::BadProcess(pid.0))
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.tables.len()
    }

    /// Total resident bytes across all tables.
    pub fn resident_bytes(&self) -> u64 {
        self.tables.values().map(FdTable::resident_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_lowest_available() {
        let mut t = FdTable::default();
        let a = t.open(FileId(1), OpenMode::Read);
        let b = t.open(FileId(2), OpenMode::Read);
        assert_eq!((a, b), (Fd(0), Fd(1)));
        t.close(a).unwrap();
        let c = t.open(FileId(3), OpenMode::Write);
        assert_eq!(c, Fd(0));
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn close_unknown_fd_fails() {
        let mut t = FdTable::default();
        assert_eq!(t.close(Fd(9)), Err(VfsError::BadDescriptor(9)));
        assert!(matches!(t.get(Fd(9)), Err(VfsError::BadDescriptor(9))));
    }

    #[test]
    fn modes_gate_access() {
        assert!(OpenMode::Read.can_read());
        assert!(!OpenMode::Read.can_write());
        assert!(OpenMode::Write.can_write());
        assert!(!OpenMode::Write.can_read());
        assert!(OpenMode::ReadWrite.can_read() && OpenMode::ReadWrite.can_write());
    }

    #[test]
    fn registry_spawns_and_exits() {
        let mut r = ProcessRegistry::default();
        let p1 = r.spawn();
        let p2 = r.spawn();
        assert_ne!(p1, p2);
        assert_eq!(r.process_count(), 2);
        r.table_mut(p1).unwrap().open(FileId(1), OpenMode::Read);
        assert_eq!(r.table(p1).unwrap().open_count(), 1);
        r.exit(p1).unwrap();
        assert!(matches!(r.table(p1), Err(VfsError::BadProcess(_))));
        assert_eq!(r.exit(p1), Err(VfsError::BadProcess(p1.0)));
    }

    #[test]
    fn resident_bytes_counts_open_files() {
        let mut r = ProcessRegistry::default();
        let p = r.spawn();
        assert_eq!(r.resident_bytes(), 0);
        r.table_mut(p).unwrap().open(FileId(1), OpenMode::Read);
        assert!(r.resident_bytes() > 0);
    }
}
