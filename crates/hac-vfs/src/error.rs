//! Error type for VFS operations.

use std::fmt;

use crate::path::VPath;

/// Errors returned by [`crate::Vfs`] operations.
///
/// The variants mirror the POSIX error conditions a user-level file system
/// layer observes from its substrate (the paper's HAC layer "assumes very
/// little about the native file system" and only needs these distinctions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// A path component (or the final component) does not exist.
    NotFound(VPath),
    /// A non-final path component resolved to something other than a
    /// directory.
    NotADirectory(VPath),
    /// A directory was found where a regular file was required.
    IsADirectory(VPath),
    /// The destination of a create/mkdir/rename already exists.
    AlreadyExists(VPath),
    /// `rmdir` (or a rename over a directory) targeted a non-empty directory.
    NotEmpty(VPath),
    /// The path string could not be parsed (empty, not absolute, or contains
    /// a NUL / empty component).
    InvalidPath(String),
    /// Symbolic-link resolution exceeded the traversal limit, which indicates
    /// a link cycle.
    TooManyLinks(VPath),
    /// A symbolic link points at a path that no longer resolves.
    DanglingLink(VPath),
    /// The file descriptor is not open in the calling process.
    BadDescriptor(u32),
    /// The process handle is unknown (never created or already exited).
    BadProcess(u64),
    /// The operation would move an entry across a mount boundary.
    CrossMount(VPath),
    /// A rename would move a directory underneath itself.
    IntoSelf(VPath),
    /// The operation is not supported by the (possibly mounted, possibly
    /// flat) namespace that owns the path.
    Unsupported(&'static str),
    /// The root directory cannot be removed, renamed, or replaced.
    RootImmutable,
    /// An open mode forbids the attempted access (e.g. write on a read-only
    /// descriptor).
    BadMode(&'static str),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            VfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            VfsError::InvalidPath(s) => write!(f, "invalid path: {s:?}"),
            VfsError::TooManyLinks(p) => write!(f, "too many levels of symbolic links: {p}"),
            VfsError::DanglingLink(p) => write!(f, "dangling symbolic link: {p}"),
            VfsError::BadDescriptor(fd) => write!(f, "bad file descriptor: {fd}"),
            VfsError::BadProcess(pid) => write!(f, "unknown process: {pid}"),
            VfsError::CrossMount(p) => write!(f, "operation crosses a mount boundary: {p}"),
            VfsError::IntoSelf(p) => write!(f, "cannot move a directory into itself: {p}"),
            VfsError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            VfsError::RootImmutable => write!(f, "the root directory cannot be modified"),
            VfsError::BadMode(m) => write!(f, "operation violates open mode: {m}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Convenient result alias for VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;
