//! Subtree traversal helpers.

use crate::attr::{Attr, NodeKind};
use crate::error::VfsResult;
use crate::fs::Vfs;
use crate::path::VPath;

/// One visited entry during a walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkEntry {
    /// Absolute path of the entry.
    pub path: VPath,
    /// Attributes at visit time (symlinks are reported as themselves, not
    /// followed — following them would let link cycles make walks diverge).
    pub attr: Attr,
}

/// Depth-first, name-ordered traversal of the subtree rooted at `start`.
///
/// The starting directory itself is included as the first entry. Symbolic
/// links are reported but never followed; mount points are not descended
/// into (the mounted namespace is foreign).
///
/// # Errors
///
/// Propagates resolution errors for `start`; entries that vanish mid-walk
/// (concurrent mutation) are silently skipped.
pub fn walk(vfs: &Vfs, start: &VPath) -> VfsResult<Vec<WalkEntry>> {
    let mut out = Vec::new();
    let attr = vfs.lstat(start)?;
    out.push(WalkEntry {
        path: start.clone(),
        attr,
    });
    if attr.kind == NodeKind::Dir {
        walk_into(vfs, start, &mut out);
    }
    Ok(out)
}

fn walk_into(vfs: &Vfs, dir: &VPath, out: &mut Vec<WalkEntry>) {
    let entries = match vfs.readdir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries {
        let Ok(path) = dir.join(&entry.name) else {
            continue;
        };
        let Ok(attr) = vfs.lstat(&path) else { continue };
        out.push(WalkEntry {
            path: path.clone(),
            attr,
        });
        if attr.kind == NodeKind::Dir {
            walk_into(vfs, &path, out);
        }
    }
}

/// Collects the paths of all regular files in the subtree rooted at `start`.
pub fn files_under(vfs: &Vfs, start: &VPath) -> VfsResult<Vec<VPath>> {
    Ok(walk(vfs, start)?
        .into_iter()
        .filter(|e| e.attr.kind == NodeKind::File)
        .map(|e| e.path)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vfs {
        let fs = Vfs::new();
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.mkdir_p(&p("/a/b")).unwrap();
        fs.save(&p("/a/one.txt"), b"1").unwrap();
        fs.save(&p("/a/b/two.txt"), b"2").unwrap();
        fs.symlink(&p("/a/link"), &p("/a/b/two.txt")).unwrap();
        fs
    }

    #[test]
    fn walk_visits_subtree_depth_first() {
        let fs = sample();
        let entries = walk(&fs, &VPath::parse("/a").unwrap()).unwrap();
        let paths: Vec<String> = entries.iter().map(|e| e.path.to_string()).collect();
        assert_eq!(
            paths,
            vec!["/a", "/a/b", "/a/b/two.txt", "/a/link", "/a/one.txt"]
        );
    }

    #[test]
    fn walk_reports_symlinks_without_following() {
        let fs = sample();
        let entries = walk(&fs, &VPath::parse("/a").unwrap()).unwrap();
        let link = entries
            .iter()
            .find(|e| e.path.to_string() == "/a/link")
            .unwrap();
        assert!(link.attr.is_symlink());
    }

    #[test]
    fn files_under_filters_to_regular_files() {
        let fs = sample();
        let files = files_under(&fs, &VPath::root()).unwrap();
        let names: Vec<String> = files.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["/a/b/two.txt", "/a/one.txt"]);
    }

    #[test]
    fn walk_of_a_file_is_just_the_file() {
        let fs = sample();
        let entries = walk(&fs, &VPath::parse("/a/one.txt").unwrap()).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].attr.is_file());
    }

    #[test]
    fn symlink_cycle_does_not_hang_walk() {
        let fs = Vfs::new();
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.mkdir(&p("/d")).unwrap();
        fs.symlink(&p("/d/self"), &p("/d")).unwrap();
        let entries = walk(&fs, &p("/d")).unwrap();
        assert_eq!(entries.len(), 2);
    }
}
