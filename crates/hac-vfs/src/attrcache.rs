//! Shared attribute cache.
//!
//! The paper (§4) stores an attribute cache in shared memory so that every
//! process sees file status without touching the underlying file system;
//! this sped up the Andrew benchmark's Scan phase. Here the cache is a
//! bounded map shared between all process handles of a [`crate::Vfs`], with
//! hit/miss accounting so the benchmarks can report its effect and its
//! memory footprint (the paper quotes ~16 KB per process).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::attr::{Attr, FileId};

/// Statistics kept by the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to fall through to the node table.
    pub misses: u64,
    /// Entries evicted due to capacity.
    pub evictions: u64,
    /// Entries invalidated by mutations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    map: HashMap<FileId, (Attr, u64)>,
    clock: u64,
    stats: CacheStats,
}

/// A capacity-bounded attribute cache with LRU-ish eviction.
///
/// Eviction removes the least recently touched entry; exactness of the LRU
/// order is not load-bearing, the cache exists to model the paper's
/// shared-memory attribute cache and to make `stat`-heavy phases cheap.
#[derive(Debug)]
pub struct AttrCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl AttrCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        AttrCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up an attribute, counting a hit or miss.
    pub fn get(&self, id: FileId) -> Option<Attr> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&id) {
            Some((attr, touched)) => {
                *touched = clock;
                let attr = *attr;
                inner.stats.hits += 1;
                Some(attr)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts or refreshes an attribute, evicting if over capacity.
    pub fn put(&self, attr: Attr) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(attr.id, (attr, clock));
        if inner.map.len() > self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(id, _)| *id)
            {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
    }

    /// Drops the cached attribute for `id`, if present.
    pub fn invalidate(&self, id: FileId) {
        let mut inner = self.inner.lock();
        if inner.map.remove(&id).is_some() {
            inner.stats.invalidations += 1;
        }
    }

    /// Empties the cache (used when restoring a snapshot).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (entry payload only), for the §4 in-text
    /// memory-overhead experiment.
    pub fn resident_bytes(&self) -> u64 {
        let per_entry = std::mem::size_of::<(FileId, (Attr, u64))>() as u64;
        self.len() as u64 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{LogicalTime, NodeKind};

    fn attr(id: u64) -> Attr {
        Attr {
            id: FileId(id),
            kind: NodeKind::File,
            size: 1,
            mtime: LogicalTime(1),
            ctime: LogicalTime(1),
            version: 0,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = AttrCache::new(8);
        assert!(cache.get(FileId(1)).is_none());
        cache.put(attr(1));
        assert_eq!(cache.get(FileId(1)).unwrap().id, FileId(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = AttrCache::new(2);
        cache.put(attr(1));
        cache.put(attr(2));
        // Touch 1 so that 2 becomes the LRU victim.
        cache.get(FileId(1));
        cache.put(attr(3));
        assert!(cache.get(FileId(2)).is_none());
        assert!(cache.get(FileId(1)).is_some());
        assert!(cache.get(FileId(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_entry() {
        let cache = AttrCache::new(4);
        cache.put(attr(5));
        cache.invalidate(FileId(5));
        assert!(cache.get(FileId(5)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        cache.invalidate(FileId(99));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn resident_bytes_tracks_len() {
        let cache = AttrCache::new(16);
        assert_eq!(cache.resident_bytes(), 0);
        cache.put(attr(1));
        cache.put(attr(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() > 0);
    }
}
