//! # hac-vfs — hierarchical file system substrate
//!
//! An in-process, thread-safe hierarchical file system: the substrate on
//! which the HAC layer (`hac-core`) builds, standing in for the native UNIX
//! file system of the paper *Integrating Content-Based Access Mechanisms
//! with Hierarchical File Systems* (Gopal & Manber, OSDI '99).
//!
//! The crate provides:
//!
//! * [`Vfs`] — files, directories, POSIX-style symbolic links, rename,
//!   recursive removal, read-through *syntactic mount points*;
//! * per-process file-descriptor tables ([`fd`]) and a shared attribute
//!   cache ([`attrcache`]), the two structures the paper charges the Andrew
//!   benchmark's Copy/Read and Scan phases to;
//! * a mutation [`event`] stream for reindex daemons and tests;
//! * subtree [`mod@walk`] helpers and snapshot [`persist`]ence.
//!
//! Everything is deterministic: time is a logical mutation counter, ids are
//! allocated monotonically and never reused.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod attrcache;
pub mod error;
pub mod event;
pub mod fd;
pub mod fs;
pub mod node;
pub mod path;
pub mod persist;
pub mod walk;

pub use attr::{Attr, FileId, LogicalTime, NodeKind};
pub use attrcache::{AttrCache, CacheStats};
pub use error::{VfsError, VfsResult};
pub use event::{EventBus, VfsEvent};
pub use fd::{Fd, OpenMode, ProcessId};
pub use fs::{CreatePolicy, DirEntry, SyscallSnapshot, Vfs};
pub use path::VPath;
pub use walk::{files_under, walk, WalkEntry};
