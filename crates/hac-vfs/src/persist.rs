//! Snapshot persistence for a namespace.
//!
//! The node table serializes to a compact, self-describing binary envelope
//! (a small hand-rolled codec over `serde`'s data model would pull in a
//! format crate; instead we serialize via `serde` to an in-house byte
//! writer). Snapshots cover the namespace structure and file contents —
//! descriptor tables, caches and mounts are runtime state and are not
//! persisted.

use serde::de::value::Error as DeError;
use serde::{Deserialize, Serialize};

use crate::error::{VfsError, VfsResult};
use crate::fs::Vfs;
use crate::node::NodeTable;

/// Magic bytes identifying a VFS snapshot.
const MAGIC: &[u8; 8] = b"HACVFS01";

#[derive(Serialize, Deserialize)]
struct Snapshot {
    clock: u64,
    nodes: NodeTable,
}

/// Serializes the namespace to a byte vector.
///
/// # Errors
///
/// Returns [`VfsError::Unsupported`] if encoding fails (cannot happen for
/// well-formed tables; kept as an error rather than a panic per library
/// policy).
pub fn snapshot(vfs: &Vfs) -> VfsResult<Vec<u8>> {
    let snap = Snapshot {
        clock: vfs.clock_value(),
        nodes: vfs.clone_nodes(),
    };
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    codec::to_writer(&snap, &mut out).map_err(|_| VfsError::Unsupported("snapshot encode"))?;
    Ok(out)
}

/// Restores a namespace from bytes produced by [`snapshot`], replacing the
/// current contents of `vfs`.
///
/// # Errors
///
/// Returns [`VfsError::Unsupported`] when the bytes are not a valid
/// snapshot.
pub fn restore(vfs: &Vfs, bytes: &[u8]) -> VfsResult<()> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(VfsError::Unsupported("snapshot magic mismatch"));
    }
    let snap: Snapshot = codec::from_slice(&bytes[MAGIC.len()..])
        .map_err(|_| VfsError::Unsupported("snapshot decode"))?;
    vfs.replace_nodes(snap.nodes, snap.clock);
    Ok(())
}

/// Minimal self-describing binary codec over the serde data model.
///
/// Supports exactly the shapes our snapshot types use: unsigned integers,
/// strings, byte-ish sequences, options, structs, maps, sequences, unit
/// variants and newtype structs. Each value is prefixed with a one-byte tag
/// so decoding is unambiguous.
mod codec {
    use serde::de::value::Error;
    use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
    use serde::ser::{self, Serialize};

    const T_U64: u8 = 1;
    const T_STR: u8 = 2;
    const T_SEQ: u8 = 3;
    const T_MAP: u8 = 4;
    const T_NONE: u8 = 5;
    const T_SOME: u8 = 6;
    const T_UNIT: u8 = 7;
    const T_VARIANT: u8 = 8;
    const T_BOOL: u8 = 9;
    const T_I64: u8 = 10;
    const T_F64: u8 = 11;
    const T_BYTES: u8 = 12;

    pub fn to_writer<T: Serialize>(value: &T, out: &mut Vec<u8>) -> Result<(), Error> {
        value.serialize(&mut Encoder { out })
    }

    pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
        let mut d = Decoder { bytes, pos: 0 };
        let v = T::deserialize(&mut d)?;
        Ok(v)
    }

    struct Encoder<'a> {
        out: &'a mut Vec<u8>,
    }

    impl Encoder<'_> {
        fn put_u64(&mut self, v: u64) {
            self.out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn emsg(m: &str) -> Error {
        de::Error::custom(m)
    }

    impl<'a, 'b> ser::Serializer for &'a mut Encoder<'b> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push(T_BOOL);
            self.out.push(v as u8);
            Ok(())
        }
        fn serialize_i8(self, v: i8) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i16(self, v: i16) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i32(self, v: i32) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            self.out.push(T_I64);
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u16(self, v: u16) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u32(self, v: u32) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            self.out.push(T_U64);
            self.put_u64(v);
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(v as f64)
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            self.out.push(T_F64);
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.serialize_str(&v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.out.push(T_STR);
            self.put_u64(v.len() as u64);
            self.out.extend_from_slice(v.as_bytes());
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            self.out.push(T_BYTES);
            self.put_u64(v.len() as u64);
            self.out.extend_from_slice(v);
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push(T_NONE);
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
            self.out.push(T_SOME);
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push(T_UNIT);
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
        ) -> Result<(), Error> {
            self.out.push(T_VARIANT);
            self.put_u64(variant_index as u64);
            self.out.push(T_UNIT);
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.out.push(T_VARIANT);
            self.put_u64(variant_index as u64);
            value.serialize(self)
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| emsg("seq length required"))?;
            self.out.push(T_SEQ);
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_tuple(self, len: usize) -> Result<Self, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<Self, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
            len: usize,
        ) -> Result<Self, Error> {
            self.out.push(T_VARIANT);
            self.put_u64(variant_index as u64);
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| emsg("map length required"))?;
            self.out.push(T_MAP);
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self, Error> {
            self.serialize_tuple_variant(name, variant_index, variant, len)
        }
    }

    impl ser::SerializeSeq for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeTuple for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeTupleStruct for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeTupleVariant for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeMap for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
            key.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeStruct for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl ser::SerializeStructVariant for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    struct Decoder<'de> {
        bytes: &'de [u8],
        pos: usize,
    }

    impl<'de> Decoder<'de> {
        fn peek(&self) -> Result<u8, Error> {
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| emsg("unexpected end"))
        }
        fn take(&mut self) -> Result<u8, Error> {
            let b = self.peek()?;
            self.pos += 1;
            Ok(b)
        }
        fn take_u64(&mut self) -> Result<u64, Error> {
            if self.pos + 8 > self.bytes.len() {
                return Err(emsg("unexpected end in u64"));
            }
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
            self.pos += 8;
            Ok(u64::from_le_bytes(buf))
        }
        fn take_slice(&mut self, len: usize) -> Result<&'de [u8], Error> {
            if self.pos + len > self.bytes.len() {
                return Err(emsg("unexpected end in slice"));
            }
            let s = &self.bytes[self.pos..self.pos + len];
            self.pos += len;
            Ok(s)
        }
        fn expect(&mut self, tag: u8, what: &str) -> Result<(), Error> {
            let got = self.take()?;
            if got != tag {
                return Err(emsg(&format!("expected {what}, got tag {got}")));
            }
            Ok(())
        }
    }

    impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
        type Error = Error;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.peek()? {
                T_U64 => {
                    self.take()?;
                    visitor.visit_u64(self.take_u64()?)
                }
                T_I64 => {
                    self.take()?;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(self.take_slice(8)?);
                    visitor.visit_i64(i64::from_le_bytes(buf))
                }
                T_F64 => {
                    self.take()?;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(self.take_slice(8)?);
                    visitor.visit_f64(f64::from_le_bytes(buf))
                }
                T_BOOL => {
                    self.take()?;
                    visitor.visit_bool(self.take()? != 0)
                }
                T_STR => {
                    self.take()?;
                    let len = self.take_u64()? as usize;
                    let s =
                        std::str::from_utf8(self.take_slice(len)?).map_err(|_| emsg("bad utf8"))?;
                    visitor.visit_str(s)
                }
                T_BYTES => {
                    self.take()?;
                    let len = self.take_u64()? as usize;
                    visitor.visit_bytes(self.take_slice(len)?)
                }
                T_NONE => {
                    self.take()?;
                    visitor.visit_none()
                }
                T_SOME => {
                    self.take()?;
                    visitor.visit_some(self)
                }
                T_UNIT => {
                    self.take()?;
                    visitor.visit_unit()
                }
                T_SEQ => {
                    self.take()?;
                    let len = self.take_u64()? as usize;
                    visitor.visit_seq(SeqAccess {
                        de: self,
                        remaining: len,
                    })
                }
                T_MAP => {
                    self.take()?;
                    let len = self.take_u64()? as usize;
                    visitor.visit_map(MapAccess {
                        de: self,
                        remaining: len,
                    })
                }
                T_VARIANT => {
                    self.take()?;
                    let idx = self.take_u64()? as u32;
                    visitor.visit_enum(EnumAccess { de: self, idx })
                }
                t => Err(emsg(&format!("unknown tag {t}"))),
            }
        }

        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.peek()? {
                T_NONE => {
                    self.take()?;
                    visitor.visit_none()
                }
                T_SOME => {
                    self.take()?;
                    visitor.visit_some(self)
                }
                _ => Err(emsg("expected option")),
            }
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.expect(T_SEQ, "struct")?;
            let len = self.take_u64()? as usize;
            if len != fields.len() {
                return Err(emsg("struct arity mismatch"));
            }
            visitor.visit_seq(SeqAccess {
                de: self,
                remaining: len,
            })
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.expect(T_VARIANT, "enum")?;
            let idx = self.take_u64()? as u32;
            visitor.visit_enum(EnumAccess { de: self, idx })
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_newtype_struct(self)
        }

        serde::forward_to_deserialize_any! {
            bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
            bytes byte_buf unit unit_struct seq tuple
            tuple_struct map identifier ignored_any
        }
    }

    struct SeqAccess<'a, 'de> {
        de: &'a mut Decoder<'de>,
        remaining: usize,
    }

    impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
        type Error = Error;
        fn next_element_seed<T: de::DeserializeSeed<'de>>(
            &mut self,
            seed: T,
        ) -> Result<Option<T::Value>, Error> {
            if self.remaining == 0 {
                return Ok(None);
            }
            self.remaining -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn size_hint(&self) -> Option<usize> {
            Some(self.remaining)
        }
    }

    struct MapAccess<'a, 'de> {
        de: &'a mut Decoder<'de>,
        remaining: usize,
    }

    impl<'de> de::MapAccess<'de> for MapAccess<'_, 'de> {
        type Error = Error;
        fn next_key_seed<K: de::DeserializeSeed<'de>>(
            &mut self,
            seed: K,
        ) -> Result<Option<K::Value>, Error> {
            if self.remaining == 0 {
                return Ok(None);
            }
            self.remaining -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn next_value_seed<V: de::DeserializeSeed<'de>>(
            &mut self,
            seed: V,
        ) -> Result<V::Value, Error> {
            seed.deserialize(&mut *self.de)
        }
        fn size_hint(&self) -> Option<usize> {
            Some(self.remaining)
        }
    }

    struct EnumAccess<'a, 'de> {
        de: &'a mut Decoder<'de>,
        idx: u32,
    }

    impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
        type Error = Error;
        type Variant = VariantAccess<'a, 'de>;
        fn variant_seed<V: de::DeserializeSeed<'de>>(
            self,
            seed: V,
        ) -> Result<(V::Value, Self::Variant), Error> {
            let idx = self.idx;
            let v = seed.deserialize(idx.into_deserializer())?;
            Ok((v, VariantAccess { de: self.de }))
        }
    }

    struct VariantAccess<'a, 'de> {
        de: &'a mut Decoder<'de>,
    }

    impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
        type Error = Error;
        fn unit_variant(self) -> Result<(), Error> {
            self.de.expect(T_UNIT, "unit variant")
        }
        fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
            self,
            seed: T,
        ) -> Result<T::Value, Error> {
            seed.deserialize(self.de)
        }
        fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Error> {
            self.de.expect(T_SEQ, "tuple variant")?;
            let got = self.de.take_u64()? as usize;
            if got != len {
                return Err(emsg("tuple variant arity mismatch"));
            }
            visitor.visit_seq(SeqAccess {
                de: self.de,
                remaining: len,
            })
        }
        fn struct_variant<V: Visitor<'de>>(
            self,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.tuple_variant(fields.len(), visitor)
        }
    }
}

/// Re-export of the codec error type for callers that want details.
pub type CodecError = DeError;

/// Encodes any serde value with the snapshot codec (shared by the HAC
/// layer's own metadata persistence).
pub fn encode_value<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    codec::to_writer(value, &mut out)?;
    Ok(out)
}

/// Decodes any serde value with the snapshot codec.
pub fn decode_value<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    codec::from_slice(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::VPath;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_tree_and_content() {
        let fs = Vfs::new();
        fs.mkdir_p(&p("/docs/work")).unwrap();
        fs.save(&p("/docs/work/a.txt"), b"alpha").unwrap();
        fs.symlink(&p("/docs/link"), &p("/docs/work/a.txt"))
            .unwrap();
        let id_before = fs.resolve(&p("/docs/work/a.txt")).unwrap();

        let bytes = snapshot(&fs).unwrap();
        let restored = Vfs::new();
        restore(&restored, &bytes).unwrap();

        assert_eq!(&restored.read_file(&p("/docs/link")).unwrap()[..], b"alpha");
        assert_eq!(restored.resolve(&p("/docs/work/a.txt")).unwrap(), id_before);
        assert_eq!(restored.node_count(), fs.node_count());
    }

    #[test]
    fn restore_rejects_garbage() {
        let fs = Vfs::new();
        assert!(restore(&fs, b"not a snapshot").is_err());
        assert!(restore(&fs, b"").is_err());
        // Valid magic but truncated body.
        assert!(restore(&fs, b"HACVFS01").is_err());
    }

    #[test]
    fn clock_survives_roundtrip() {
        let fs = Vfs::new();
        fs.mkdir(&p("/a")).unwrap();
        fs.mkdir(&p("/b")).unwrap();
        let clock = fs.now();
        let bytes = snapshot(&fs).unwrap();
        let restored = Vfs::new();
        restore(&restored, &bytes).unwrap();
        assert_eq!(restored.now(), clock);
    }

    #[test]
    fn generic_value_roundtrip() {
        #[derive(Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Demo {
            name: String,
            vals: Vec<u32>,
            opt: Option<bool>,
        }
        let d = Demo {
            name: "x".into(),
            vals: vec![1, 2, 3],
            opt: Some(true),
        };
        let bytes = encode_value(&d).unwrap();
        let back: Demo = decode_value(&bytes).unwrap();
        assert_eq!(back, d);
    }
}
