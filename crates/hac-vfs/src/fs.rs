//! The virtual file system.
//!
//! [`Vfs`] is the substrate the HAC layer builds on: a thread-safe,
//! in-process hierarchical file system with regular files, directories,
//! symbolic links, per-process file descriptors, a shared attribute cache,
//! read-through syntactic mount points, and a mutation event stream.
//!
//! The public surface deliberately mirrors the narrow API the paper's HAC
//! prototype required from its native file system ("HAC interacts with UNIX
//! using a well defined API which assumes very little about the native file
//! system").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::attr::{Attr, FileId, LogicalTime, NodeKind};
use crate::attrcache::{AttrCache, CacheStats};
use crate::error::{VfsError, VfsResult};
use crate::event::{EventBus, VfsEvent};
use crate::fd::{Fd, OpenMode, ProcessId, ProcessRegistry};
use crate::node::{Node, NodeBody, NodeTable};
use crate::path::VPath;

/// Maximum number of symbolic links a single resolution may traverse before
/// the VFS reports a cycle.
pub const MAX_LINK_DEPTH: usize = 40;

/// Default capacity of the shared attribute cache, in entries.
pub const DEFAULT_ATTR_CACHE_CAPACITY: usize = 4096;

/// One entry as returned by [`Vfs::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within the directory.
    pub name: String,
    /// Id of the entry's node.
    pub id: FileId,
    /// Kind of the entry's node.
    pub kind: NodeKind,
}

/// Behaviour of [`Vfs::open`] when the path does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreatePolicy {
    /// Fail with [`VfsError::NotFound`] if missing.
    MustExist,
    /// Create an empty regular file if missing.
    CreateIfMissing,
    /// Create if missing, truncate to empty if present.
    CreateOrTruncate,
}

/// Cheap operation counters, useful when analysing where a layered file
/// system spends its substrate calls.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    lookups: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    creates: AtomicU64,
    removes: AtomicU64,
    renames: AtomicU64,
}

/// Snapshot of [`SyscallCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscallSnapshot {
    /// Path resolutions / stats / readdirs.
    pub lookups: u64,
    /// File content reads.
    pub reads: u64,
    /// File content writes.
    pub writes: u64,
    /// Node creations (files, dirs, symlinks).
    pub creates: u64,
    /// Node removals.
    pub removes: u64,
    /// Renames.
    pub renames: u64,
}

impl SyscallCounters {
    fn snapshot(&self) -> SyscallSnapshot {
        SyscallSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            creates: self.creates.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct Inner {
    nodes: NodeTable,
    /// Mount points: directory id → foreign namespace grafted there.
    mounts: Vec<(FileId, Arc<Vfs>)>,
    clock: u64,
}

impl Inner {
    fn tick(&mut self) -> LogicalTime {
        self.clock += 1;
        LogicalTime(self.clock)
    }

    fn mount_at(&self, id: FileId) -> Option<Arc<Vfs>> {
        self.mounts
            .iter()
            .find(|(m, _)| *m == id)
            .map(|(_, v)| Arc::clone(v))
    }
}

/// Result of resolving a path that may cross a mount point.
enum Target {
    /// The path resolves inside this namespace.
    Local(FileId),
    /// The path continues inside a mounted namespace.
    Foreign(Arc<Vfs>, VPath),
}

/// The in-process hierarchical file system.
///
/// All methods take `&self`; interior locking makes a `Vfs` shareable via
/// [`Arc`] between the HAC layer, benchmark drivers and the reindex daemon.
///
/// # Examples
///
/// ```
/// use hac_vfs::{Vfs, VPath};
///
/// let fs = Vfs::new();
/// fs.mkdir_p(&VPath::parse("/home/user").unwrap()).unwrap();
/// fs.save(&VPath::parse("/home/user/note.txt").unwrap(), b"fingerprint minutiae").unwrap();
/// let data = fs.read_file(&VPath::parse("/home/user/note.txt").unwrap()).unwrap();
/// assert_eq!(&data[..], b"fingerprint minutiae");
/// ```
#[derive(Debug)]
pub struct Vfs {
    inner: RwLock<Inner>,
    attr_cache: AttrCache,
    procs: RwLock<ProcessRegistry>,
    events: EventBus,
    counters: SyscallCounters,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates an empty namespace containing only the root directory.
    pub fn new() -> Self {
        Self::with_cache_capacity(DEFAULT_ATTR_CACHE_CAPACITY)
    }

    /// Creates an empty namespace with a custom attribute-cache capacity.
    pub fn with_cache_capacity(cache_entries: usize) -> Self {
        Vfs {
            inner: RwLock::new(Inner {
                nodes: NodeTable::with_root(),
                mounts: Vec::new(),
                clock: 0,
            }),
            attr_cache: AttrCache::new(cache_entries),
            procs: RwLock::new(ProcessRegistry::default()),
            events: EventBus::new(),
            counters: SyscallCounters::default(),
        }
    }

    // ------------------------------------------------------------------
    // Events, processes, statistics
    // ------------------------------------------------------------------

    /// Subscribes to the mutation event stream.
    pub fn subscribe(&self) -> crossbeam::channel::Receiver<VfsEvent> {
        self.events.subscribe()
    }

    /// Registers a lightweight process (owner of a descriptor table).
    pub fn spawn_process(&self) -> ProcessId {
        self.procs.write().spawn()
    }

    /// Tears down a process and its descriptors.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadProcess`] if the process is unknown.
    pub fn exit_process(&self, pid: ProcessId) -> VfsResult<()> {
        self.procs.write().exit(pid)
    }

    /// Snapshot of the substrate-call counters.
    pub fn counters(&self) -> SyscallSnapshot {
        self.counters.snapshot()
    }

    /// Snapshot of attribute-cache statistics.
    pub fn attr_cache_stats(&self) -> CacheStats {
        self.attr_cache.stats()
    }

    /// Resident bytes of per-process state (descriptor tables), mirroring
    /// the paper's ~16 KB/process shared-memory figure.
    pub fn process_resident_bytes(&self) -> u64 {
        self.procs.read().resident_bytes() + self.attr_cache.resident_bytes()
    }

    /// Approximate metadata footprint of the namespace in bytes (no file
    /// content), for the §4 space-overhead comparison.
    pub fn metadata_bytes(&self) -> u64 {
        self.inner.read().nodes.metadata_bytes()
    }

    /// Number of live nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Current logical time.
    pub fn now(&self) -> LogicalTime {
        LogicalTime(self.inner.read().clock)
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolves a path to a node id, following symbolic links everywhere
    /// (including the final component). Crosses mount points.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`], [`VfsError::NotADirectory`],
    /// [`VfsError::TooManyLinks`], or [`VfsError::Unsupported`] when the
    /// path lands in a foreign namespace (foreign ids are not exposed; use
    /// the read operations, which delegate transparently).
    pub fn resolve(&self, path: &VPath) -> VfsResult<FileId> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, true, 0)? {
            Target::Local(id) => Ok(id),
            Target::Foreign(..) => Err(VfsError::Unsupported("foreign node id")),
        }
    }

    /// Like [`Vfs::resolve`] but does not follow a symlink in the final
    /// component, and does not descend into a mount covering the final
    /// component (so mount points themselves stay addressable for
    /// [`Vfs::mount`]/[`Vfs::unmount`] management).
    pub fn resolve_nofollow(&self, path: &VPath) -> VfsResult<FileId> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target_inner(path, false, 0, false)? {
            Target::Local(id) => Ok(id),
            Target::Foreign(..) => Err(VfsError::Unsupported("foreign node id")),
        }
    }

    /// Whether a path resolves (following links).
    pub fn exists(&self, path: &VPath) -> bool {
        self.stat(path).is_ok()
    }

    /// Reconstructs the absolute path of a node by walking parent pointers.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if the node is not live.
    pub fn path_of(&self, id: FileId) -> VfsResult<VPath> {
        let inner = self.inner.read();
        let mut names: Vec<String> = Vec::new();
        let mut cur = id;
        let mut hops = 0usize;
        while cur != FileId::ROOT {
            let node = inner
                .nodes
                .get(cur)
                .ok_or_else(|| VfsError::NotFound(VPath::root()))?;
            names.push(node.name.clone());
            cur = node.parent;
            hops += 1;
            if hops > inner.nodes.len() {
                return Err(VfsError::NotFound(VPath::root()));
            }
        }
        names.reverse();
        VPath::from_components(names)
    }

    fn resolve_target(&self, path: &VPath, follow_last: bool, depth: usize) -> VfsResult<Target> {
        self.resolve_target_inner(path, follow_last, depth, true)
    }

    fn resolve_target_inner(
        &self,
        path: &VPath,
        follow_last: bool,
        depth: usize,
        cross_trailing_mount: bool,
    ) -> VfsResult<Target> {
        if depth > MAX_LINK_DEPTH {
            return Err(VfsError::TooManyLinks(path.clone()));
        }
        // Collect any symlink/mount redirection under the lock, then recurse
        // outside it so a foreign namespace never sees our lock held.
        enum Redirect {
            Done(FileId),
            FollowLink(VPath),
            IntoMount(Arc<Vfs>, VPath),
        }
        let redirect = {
            let inner = self.inner.read();
            let comps: Vec<&str> = path.components().collect();
            let mut cur = FileId::ROOT;
            let mut redirect = None;
            let mut walked = VPath::root();
            for (i, comp) in comps.iter().enumerate() {
                let is_last = i + 1 == comps.len();
                // Descend through a mount point before looking up the child.
                if let Some(foreign) = inner.mount_at(cur) {
                    let rest = VPath::from_components(comps[i..].iter().map(|s| s.to_string()))?;
                    redirect = Some(Redirect::IntoMount(foreign, rest));
                    break;
                }
                let node = inner
                    .nodes
                    .get(cur)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                let entries = node
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(walked.clone()))?;
                let child = *entries
                    .get(*comp)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                walked = walked.join(comp)?;
                let child_node = inner
                    .nodes
                    .get(child)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                if let NodeBody::Symlink { target } = &child_node.body {
                    if is_last && !follow_last {
                        redirect = Some(Redirect::Done(child));
                        break;
                    }
                    // Splice the link target in front of the remaining
                    // components and restart.
                    let mut spliced: Vec<String> =
                        target.components().map(str::to_string).collect();
                    spliced.extend(comps[i + 1..].iter().map(|s| s.to_string()));
                    redirect = Some(Redirect::FollowLink(VPath::from_components(spliced)?));
                    break;
                }
                cur = child;
            }
            redirect.unwrap_or(Redirect::Done(cur))
        };
        match redirect {
            Redirect::Done(id) => {
                // A trailing mount point swallows the node it covers, unless
                // the caller manages mounts and needs the covered node.
                if cross_trailing_mount {
                    if let Some(foreign) = self.inner.read().mount_at(id) {
                        return Ok(Target::Foreign(foreign, VPath::root()));
                    }
                }
                Ok(Target::Local(id))
            }
            Redirect::FollowLink(next) => {
                self.resolve_target_inner(&next, follow_last, depth + 1, cross_trailing_mount)
            }
            Redirect::IntoMount(foreign, rest) => Ok(Target::Foreign(foreign, rest)),
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// `stat`: attributes of the node at `path`, following symlinks. Served
    /// from the shared attribute cache when possible.
    pub fn stat(&self, path: &VPath) -> VfsResult<Attr> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, true, 0)? {
            Target::Local(id) => self.attr_of(id, path),
            Target::Foreign(ns, rest) => ns.stat(&rest),
        }
    }

    /// `lstat`: like [`Vfs::stat`] but reports a final-component symlink
    /// itself.
    pub fn lstat(&self, path: &VPath) -> VfsResult<Attr> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, false, 0)? {
            Target::Local(id) => self.attr_of(id, path),
            Target::Foreign(ns, rest) => ns.lstat(&rest),
        }
    }

    fn attr_of(&self, id: FileId, path: &VPath) -> VfsResult<Attr> {
        if let Some(attr) = self.attr_cache.get(id) {
            return Ok(attr);
        }
        let inner = self.inner.read();
        let node = inner
            .nodes
            .get(id)
            .ok_or_else(|| VfsError::NotFound(path.clone()))?;
        let attr = node.attr();
        drop(inner);
        self.attr_cache.put(attr);
        Ok(attr)
    }

    /// Reads a whole regular file, following symlinks.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsADirectory`] when the path names a directory, plus the
    /// resolution errors.
    pub fn read_file(&self, path: &VPath) -> VfsResult<Bytes> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, true, 0)? {
            Target::Local(id) => {
                let inner = self.inner.read();
                let node = inner
                    .nodes
                    .get(id)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                match &node.body {
                    NodeBody::File { data } => Ok(data.clone()),
                    NodeBody::Dir { .. } => Err(VfsError::IsADirectory(path.clone())),
                    NodeBody::Symlink { .. } => Err(VfsError::DanglingLink(path.clone())),
                }
            }
            Target::Foreign(ns, rest) => ns.read_file(&rest),
        }
    }

    /// Reads the target of a symbolic link without following it.
    pub fn readlink(&self, path: &VPath) -> VfsResult<VPath> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, false, 0)? {
            Target::Local(id) => {
                let inner = self.inner.read();
                let node = inner
                    .nodes
                    .get(id)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                match &node.body {
                    NodeBody::Symlink { target } => Ok(target.clone()),
                    _ => Err(VfsError::Unsupported("readlink on non-symlink")),
                }
            }
            Target::Foreign(ns, rest) => ns.readlink(&rest),
        }
    }

    /// Lists a directory in name order.
    pub fn readdir(&self, path: &VPath) -> VfsResult<Vec<DirEntry>> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.resolve_target(path, true, 0)? {
            Target::Local(id) => {
                let inner = self.inner.read();
                let node = inner
                    .nodes
                    .get(id)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                let entries = node
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(path.clone()))?;
                let mut out = Vec::with_capacity(entries.len());
                for (name, child) in entries {
                    let kind = inner
                        .nodes
                        .get(*child)
                        .map(Node::kind)
                        .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                    out.push(DirEntry {
                        name: name.clone(),
                        id: *child,
                        kind,
                    });
                }
                Ok(out)
            }
            Target::Foreign(ns, rest) => ns.readdir(&rest),
        }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    fn require_local_parent(&self, path: &VPath) -> VfsResult<(FileId, String)> {
        let parent = path.parent().ok_or(VfsError::RootImmutable)?;
        let name = path.file_name().ok_or(VfsError::RootImmutable)?.to_string();
        match self.resolve_target(&parent, true, 0)? {
            Target::Local(id) => Ok((id, name)),
            Target::Foreign(..) => Err(VfsError::CrossMount(path.clone())),
        }
    }

    /// Creates a directory. The parent must exist.
    pub fn mkdir(&self, path: &VPath) -> VfsResult<FileId> {
        self.counters.creates.fetch_add(1, Ordering::Relaxed);
        let (parent, name) = self.require_local_parent(path)?;
        let event;
        let id;
        {
            let mut inner = self.inner.write();
            id = Self::insert_child(&mut inner, parent, &name, path, |id, t| Node {
                id,
                parent,
                name: name.clone(),
                ctime: t,
                mtime: t,
                version: 0,
                body: NodeBody::Dir {
                    entries: Default::default(),
                },
            })?;
            event = VfsEvent::DirCreated {
                id,
                path: path.clone(),
            };
        }
        self.attr_cache.invalidate(parent);
        self.events.publish(event);
        Ok(id)
    }

    /// Creates a directory and any missing ancestors; returns the id of the
    /// deepest directory. Existing directories along the way are accepted.
    pub fn mkdir_p(&self, path: &VPath) -> VfsResult<FileId> {
        let mut cur = VPath::root();
        let mut id = FileId::ROOT;
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.mkdir(&cur) {
                Ok(new_id) => id = new_id,
                Err(VfsError::AlreadyExists(_)) => {
                    id = self.resolve(&cur)?;
                    let attr = self.attr_of(id, &cur)?;
                    if !attr.is_dir() {
                        return Err(VfsError::NotADirectory(cur));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(id)
    }

    /// Creates an empty regular file.
    pub fn create(&self, path: &VPath) -> VfsResult<FileId> {
        self.counters.creates.fetch_add(1, Ordering::Relaxed);
        let (parent, name) = self.require_local_parent(path)?;
        let event;
        let id;
        {
            let mut inner = self.inner.write();
            id = Self::insert_child(&mut inner, parent, &name, path, |id, t| Node {
                id,
                parent,
                name: name.clone(),
                ctime: t,
                mtime: t,
                version: 0,
                body: NodeBody::File { data: Bytes::new() },
            })?;
            event = VfsEvent::FileCreated {
                id,
                path: path.clone(),
            };
        }
        self.attr_cache.invalidate(parent);
        self.events.publish(event);
        Ok(id)
    }

    /// Creates a symbolic link at `path` pointing to `target`.
    pub fn symlink(&self, path: &VPath, target: &VPath) -> VfsResult<FileId> {
        self.counters.creates.fetch_add(1, Ordering::Relaxed);
        let (parent, name) = self.require_local_parent(path)?;
        let event;
        let id;
        {
            let mut inner = self.inner.write();
            let target = target.clone();
            id = Self::insert_child(&mut inner, parent, &name, path, |id, t| Node {
                id,
                parent,
                name: name.clone(),
                ctime: t,
                mtime: t,
                version: 0,
                body: NodeBody::Symlink {
                    target: target.clone(),
                },
            })?;
            event = VfsEvent::SymlinkCreated {
                id,
                path: path.clone(),
                target: target.clone(),
            };
        }
        self.attr_cache.invalidate(parent);
        self.events.publish(event);
        Ok(id)
    }

    /// Creates many symbolic links in one directory under a single lock
    /// acquisition. Either all links are created or none (the batch is
    /// validated for collisions first). Used by bulk producers like HAC's
    /// scope resynchronization, where per-link locking would dominate.
    pub fn symlink_batch(&self, dir: &VPath, links: &[(String, VPath)]) -> VfsResult<Vec<FileId>> {
        if links.is_empty() {
            return Ok(Vec::new());
        }
        self.counters
            .creates
            .fetch_add(links.len() as u64, Ordering::Relaxed);
        let parent = match self.resolve_target(dir, true, 0)? {
            Target::Local(id) => id,
            Target::Foreign(..) => return Err(VfsError::CrossMount(dir.clone())),
        };
        let mut events = Vec::with_capacity(links.len());
        let mut ids = Vec::with_capacity(links.len());
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            {
                let pnode = inner
                    .nodes
                    .get(parent)
                    .ok_or_else(|| VfsError::NotFound(dir.clone()))?;
                let entries = pnode
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(dir.clone()))?;
                for (name, _) in links {
                    if entries.contains_key(name) {
                        return Err(VfsError::AlreadyExists(dir.join(name)?));
                    }
                }
                // Duplicate names inside the batch are also collisions.
                let mut seen = std::collections::HashSet::new();
                for (name, _) in links {
                    if !seen.insert(name.as_str()) {
                        return Err(VfsError::AlreadyExists(dir.join(name)?));
                    }
                }
            }
            for (name, target) in links {
                let id = inner.nodes.alloc_id();
                inner.nodes.insert(Node {
                    id,
                    parent,
                    name: name.clone(),
                    ctime: t,
                    mtime: t,
                    version: 0,
                    body: NodeBody::Symlink {
                        target: target.clone(),
                    },
                });
                let path = dir.join(name)?;
                events.push(VfsEvent::SymlinkCreated {
                    id,
                    path,
                    target: target.clone(),
                });
                ids.push(id);
            }
            let pnode = inner
                .nodes
                .get_mut(parent)
                .expect("parent vanished under write lock");
            pnode.mtime = t;
            let entries = pnode.dir_entries_mut().expect("parent is a directory");
            for ((name, _), id) in links.iter().zip(ids.iter()) {
                entries.insert(name.clone(), *id);
            }
        }
        self.attr_cache.invalidate(parent);
        for event in events {
            self.events.publish(event);
        }
        Ok(ids)
    }

    fn insert_child(
        inner: &mut Inner,
        parent: FileId,
        name: &str,
        path: &VPath,
        make: impl Fn(FileId, LogicalTime) -> Node,
    ) -> VfsResult<FileId> {
        let t = inner.tick();
        {
            let pnode = inner
                .nodes
                .get(parent)
                .ok_or_else(|| VfsError::NotFound(path.clone()))?;
            let entries = pnode
                .dir_entries()
                .ok_or_else(|| VfsError::NotADirectory(path.clone()))?;
            if entries.contains_key(name) {
                return Err(VfsError::AlreadyExists(path.clone()));
            }
        }
        let id = inner.nodes.alloc_id();
        inner.nodes.insert(make(id, t));
        let pnode = inner
            .nodes
            .get_mut(parent)
            .ok_or_else(|| VfsError::NotFound(path.clone()))?;
        pnode.mtime = t;
        if let Some(entries) = pnode.dir_entries_mut() {
            entries.insert(name.to_string(), id);
        }
        Ok(id)
    }

    /// Replaces the content of an existing regular file (follows symlinks).
    pub fn write_file(&self, path: &VPath, data: &[u8]) -> VfsResult<()> {
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        let id = match self.resolve_target(path, true, 0)? {
            Target::Local(id) => id,
            Target::Foreign(..) => return Err(VfsError::CrossMount(path.clone())),
        };
        let event;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let node = inner
                .nodes
                .get_mut(id)
                .ok_or_else(|| VfsError::NotFound(path.clone()))?;
            match &mut node.body {
                NodeBody::File { data: d } => {
                    *d = Bytes::copy_from_slice(data);
                    node.mtime = t;
                    node.version += 1;
                    event = VfsEvent::FileWritten {
                        id,
                        path: path.clone(),
                        new_version: node.version,
                    };
                }
                NodeBody::Dir { .. } => return Err(VfsError::IsADirectory(path.clone())),
                NodeBody::Symlink { .. } => return Err(VfsError::DanglingLink(path.clone())),
            }
        }
        self.attr_cache.invalidate(id);
        self.events.publish(event);
        Ok(())
    }

    /// Creates the file if missing, then writes `data` (create-or-replace).
    pub fn save(&self, path: &VPath, data: &[u8]) -> VfsResult<FileId> {
        match self.create(path) {
            Ok(_) | Err(VfsError::AlreadyExists(_)) => {}
            Err(e) => return Err(e),
        }
        self.write_file(path, data)?;
        self.resolve(path)
    }

    /// Appends bytes to an existing regular file.
    pub fn append(&self, path: &VPath, data: &[u8]) -> VfsResult<()> {
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        let id = match self.resolve_target(path, true, 0)? {
            Target::Local(id) => id,
            Target::Foreign(..) => return Err(VfsError::CrossMount(path.clone())),
        };
        let event;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let node = inner
                .nodes
                .get_mut(id)
                .ok_or_else(|| VfsError::NotFound(path.clone()))?;
            match &mut node.body {
                NodeBody::File { data: d } => {
                    let mut buf = Vec::with_capacity(d.len() + data.len());
                    buf.extend_from_slice(d);
                    buf.extend_from_slice(data);
                    *d = Bytes::from(buf);
                    node.mtime = t;
                    node.version += 1;
                    event = VfsEvent::FileWritten {
                        id,
                        path: path.clone(),
                        new_version: node.version,
                    };
                }
                NodeBody::Dir { .. } => return Err(VfsError::IsADirectory(path.clone())),
                NodeBody::Symlink { .. } => return Err(VfsError::DanglingLink(path.clone())),
            }
        }
        self.attr_cache.invalidate(id);
        self.events.publish(event);
        Ok(())
    }

    /// Removes a regular file or symbolic link (never follows the final
    /// component).
    pub fn unlink(&self, path: &VPath) -> VfsResult<()> {
        self.counters.removes.fetch_add(1, Ordering::Relaxed);
        let (parent, name) = self.require_local_parent(path)?;
        let event;
        let removed;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let id = {
                let pnode = inner
                    .nodes
                    .get(parent)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                let entries = pnode
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(path.clone()))?;
                *entries
                    .get(&name)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?
            };
            let node = inner
                .nodes
                .get(id)
                .ok_or_else(|| VfsError::NotFound(path.clone()))?;
            if node.kind() == NodeKind::Dir {
                return Err(VfsError::IsADirectory(path.clone()));
            }
            let pnode = inner
                .nodes
                .get_mut(parent)
                .expect("parent vanished under write lock");
            pnode.mtime = t;
            pnode
                .dir_entries_mut()
                .expect("parent is a directory")
                .remove(&name);
            inner.nodes.remove(id);
            removed = id;
            event = VfsEvent::Removed {
                id,
                path: path.clone(),
                was_dir: false,
            };
        }
        self.attr_cache.invalidate(removed);
        self.attr_cache.invalidate(parent);
        self.events.publish(event);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &VPath) -> VfsResult<()> {
        self.counters.removes.fetch_add(1, Ordering::Relaxed);
        let (parent, name) = self.require_local_parent(path)?;
        let event;
        let removed;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let id = {
                let pnode = inner
                    .nodes
                    .get(parent)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                let entries = pnode
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(path.clone()))?;
                *entries
                    .get(&name)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?
            };
            {
                let node = inner
                    .nodes
                    .get(id)
                    .ok_or_else(|| VfsError::NotFound(path.clone()))?;
                let entries = node
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(path.clone()))?;
                if !entries.is_empty() {
                    return Err(VfsError::NotEmpty(path.clone()));
                }
            }
            if inner.mount_at(id).is_some() {
                return Err(VfsError::CrossMount(path.clone()));
            }
            let pnode = inner
                .nodes
                .get_mut(parent)
                .expect("parent vanished under write lock");
            pnode.mtime = t;
            pnode
                .dir_entries_mut()
                .expect("parent is a directory")
                .remove(&name);
            inner.nodes.remove(id);
            removed = id;
            event = VfsEvent::Removed {
                id,
                path: path.clone(),
                was_dir: true,
            };
        }
        self.attr_cache.invalidate(removed);
        self.attr_cache.invalidate(parent);
        self.events.publish(event);
        Ok(())
    }

    /// Recursively removes a file, link, or directory subtree.
    pub fn remove_recursive(&self, path: &VPath) -> VfsResult<()> {
        let attr = self.lstat(path)?;
        if attr.kind != NodeKind::Dir {
            return self.unlink(path);
        }
        let children = self.readdir(path)?;
        for entry in children {
            self.remove_recursive(&path.join(&entry.name)?)?;
        }
        self.rmdir(path)
    }

    /// Renames (moves) a file, symlink, or directory. Refuses to replace an
    /// existing destination, to move a directory into its own subtree, or to
    /// cross a mount boundary.
    pub fn rename(&self, from: &VPath, to: &VPath) -> VfsResult<()> {
        self.counters.renames.fetch_add(1, Ordering::Relaxed);
        if from.is_root() || to.is_root() {
            return Err(VfsError::RootImmutable);
        }
        if to.starts_with(from) && from != to {
            return Err(VfsError::IntoSelf(from.clone()));
        }
        let (from_parent, from_name) = self.require_local_parent(from)?;
        let (to_parent, to_name) = self.require_local_parent(to)?;
        let event;
        let moved;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let id = {
                let pnode = inner
                    .nodes
                    .get(from_parent)
                    .ok_or_else(|| VfsError::NotFound(from.clone()))?;
                let entries = pnode
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(from.clone()))?;
                *entries
                    .get(&from_name)
                    .ok_or_else(|| VfsError::NotFound(from.clone()))?
            };
            {
                let dest = inner
                    .nodes
                    .get(to_parent)
                    .ok_or_else(|| VfsError::NotFound(to.clone()))?;
                let entries = dest
                    .dir_entries()
                    .ok_or_else(|| VfsError::NotADirectory(to.clone()))?;
                if entries.contains_key(&to_name) {
                    return Err(VfsError::AlreadyExists(to.clone()));
                }
            }
            // Guard against moving a directory under itself via ids (the
            // lexical check above misses moves through symlinks).
            let mut cursor = to_parent;
            loop {
                if cursor == id {
                    return Err(VfsError::IntoSelf(from.clone()));
                }
                if cursor == FileId::ROOT {
                    break;
                }
                cursor = inner
                    .nodes
                    .get(cursor)
                    .ok_or_else(|| VfsError::NotFound(to.clone()))?
                    .parent;
            }
            let is_dir;
            {
                let node = inner
                    .nodes
                    .get(id)
                    .ok_or_else(|| VfsError::NotFound(from.clone()))?;
                is_dir = node.kind() == NodeKind::Dir;
            }
            inner
                .nodes
                .get_mut(from_parent)
                .expect("source parent vanished under write lock")
                .dir_entries_mut()
                .expect("source parent is a directory")
                .remove(&from_name);
            {
                let node = inner.nodes.get_mut(id).expect("moved node vanished");
                node.parent = to_parent;
                node.name = to_name.clone();
                node.mtime = t;
            }
            {
                let dest = inner
                    .nodes
                    .get_mut(to_parent)
                    .expect("dest parent vanished");
                dest.mtime = t;
                dest.dir_entries_mut()
                    .expect("dest parent is a directory")
                    .insert(to_name.clone(), id);
            }
            inner
                .nodes
                .get_mut(from_parent)
                .expect("source parent vanished")
                .mtime = t;
            moved = id;
            event = VfsEvent::Renamed {
                id,
                from: from.clone(),
                to: to.clone(),
                is_dir,
            };
        }
        self.attr_cache.invalidate(moved);
        self.attr_cache.invalidate(from_parent);
        self.attr_cache.invalidate(to_parent);
        self.events.publish(event);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mounts
    // ------------------------------------------------------------------

    /// Grafts a foreign namespace at an existing local directory (a
    /// *syntactic mount point*). Reads traverse into the mounted namespace;
    /// local mutations under the mount point are rejected with
    /// [`VfsError::CrossMount`].
    pub fn mount(&self, at: &VPath, ns: Arc<Vfs>) -> VfsResult<()> {
        let id = self.resolve_nofollow(at)?;
        {
            let inner = self.inner.read();
            let node = inner
                .nodes
                .get(id)
                .ok_or_else(|| VfsError::NotFound(at.clone()))?;
            if node.kind() != NodeKind::Dir {
                return Err(VfsError::NotADirectory(at.clone()));
            }
        }
        let mut inner = self.inner.write();
        if inner.mount_at(id).is_some() {
            return Err(VfsError::AlreadyExists(at.clone()));
        }
        inner.mounts.push((id, ns));
        drop(inner);
        self.events.publish(VfsEvent::Mounted { at: at.clone() });
        Ok(())
    }

    /// Detaches a foreign namespace from a mount point.
    pub fn unmount(&self, at: &VPath) -> VfsResult<()> {
        let id = self.resolve_nofollow(at)?;
        let mut inner = self.inner.write();
        let before = inner.mounts.len();
        inner.mounts.retain(|(m, _)| *m != id);
        if inner.mounts.len() == before {
            return Err(VfsError::NotFound(at.clone()));
        }
        drop(inner);
        self.events.publish(VfsEvent::Unmounted { at: at.clone() });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Descriptor I/O
    // ------------------------------------------------------------------

    /// Opens a file for descriptor-based I/O in process `pid`.
    pub fn open(
        &self,
        pid: ProcessId,
        path: &VPath,
        mode: OpenMode,
        policy: CreatePolicy,
    ) -> VfsResult<Fd> {
        let id = match self.resolve_target(path, true, 0) {
            Ok(Target::Local(id)) => {
                if policy == CreatePolicy::CreateOrTruncate {
                    self.write_file(path, b"")?;
                }
                id
            }
            Ok(Target::Foreign(..)) => return Err(VfsError::CrossMount(path.clone())),
            Err(VfsError::NotFound(_)) if policy != CreatePolicy::MustExist => self.create(path)?,
            Err(e) => return Err(e),
        };
        {
            let inner = self.inner.read();
            let node = inner
                .nodes
                .get(id)
                .ok_or_else(|| VfsError::NotFound(path.clone()))?;
            if node.kind() == NodeKind::Dir {
                return Err(VfsError::IsADirectory(path.clone()));
            }
        }
        let mut procs = self.procs.write();
        Ok(procs.table_mut(pid)?.open(id, mode))
    }

    /// Reads up to `len` bytes at the descriptor's offset, advancing it.
    pub fn read_fd(&self, pid: ProcessId, fd: Fd, len: usize) -> VfsResult<Bytes> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let (file, offset) = {
            let procs = self.procs.read();
            let of = *procs.table(pid)?.get(fd)?;
            if !of.mode.can_read() {
                return Err(VfsError::BadMode("descriptor not open for reading"));
            }
            (of.file, of.offset)
        };
        let chunk = {
            let inner = self.inner.read();
            let node = inner
                .nodes
                .get(file)
                .ok_or_else(|| VfsError::NotFound(VPath::root()))?;
            match &node.body {
                NodeBody::File { data } => {
                    let start = (offset as usize).min(data.len());
                    let end = (start + len).min(data.len());
                    data.slice(start..end)
                }
                _ => return Err(VfsError::BadMode("descriptor does not refer to a file")),
            }
        };
        let mut procs = self.procs.write();
        procs.table_mut(pid)?.get_mut(fd)?.offset = offset + chunk.len() as u64;
        Ok(chunk)
    }

    /// Writes bytes at the descriptor's offset (zero-filling any gap),
    /// advancing it.
    pub fn write_fd(&self, pid: ProcessId, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        let (file, offset) = {
            let procs = self.procs.read();
            let of = *procs.table(pid)?.get(fd)?;
            if !of.mode.can_write() {
                return Err(VfsError::BadMode("descriptor not open for writing"));
            }
            (of.file, of.offset)
        };
        let event;
        {
            let mut inner = self.inner.write();
            let t = inner.tick();
            let node = inner
                .nodes
                .get_mut(file)
                .ok_or_else(|| VfsError::NotFound(VPath::root()))?;
            match &mut node.body {
                NodeBody::File { data: d } => {
                    let start = offset as usize;
                    let mut buf = d.to_vec();
                    if buf.len() < start {
                        buf.resize(start, 0);
                    }
                    let end = start + data.len();
                    if buf.len() < end {
                        buf.resize(end, 0);
                    }
                    buf[start..end].copy_from_slice(data);
                    *d = Bytes::from(buf);
                    node.mtime = t;
                    node.version += 1;
                    event = VfsEvent::FileWritten {
                        id: file,
                        path: VPath::root(),
                        new_version: node.version,
                    };
                }
                _ => return Err(VfsError::BadMode("descriptor does not refer to a file")),
            }
        }
        self.attr_cache.invalidate(file);
        // Descriptor writes report the file id; the path may have changed
        // since open, so consumers needing a path should call `path_of`.
        let event = match event {
            VfsEvent::FileWritten {
                id, new_version, ..
            } => VfsEvent::FileWritten {
                id,
                path: self.path_of(file).unwrap_or_else(|_| VPath::root()),
                new_version,
            },
            other => other,
        };
        self.events.publish(event);
        let mut procs = self.procs.write();
        procs.table_mut(pid)?.get_mut(fd)?.offset = offset + data.len() as u64;
        Ok(data.len())
    }

    /// Repositions a descriptor's offset.
    pub fn seek(&self, pid: ProcessId, fd: Fd, offset: u64) -> VfsResult<()> {
        let mut procs = self.procs.write();
        procs.table_mut(pid)?.get_mut(fd)?.offset = offset;
        Ok(())
    }

    /// Closes a descriptor.
    pub fn close(&self, pid: ProcessId, fd: Fd) -> VfsResult<()> {
        let mut procs = self.procs.write();
        procs.table_mut(pid)?.close(fd)
    }

    // ------------------------------------------------------------------
    // Bulk access for indexing / persistence
    // ------------------------------------------------------------------

    /// Runs `f` over every live node (id, path, attr) in id order. Used by
    /// the indexer's full-scan pass and the walk helpers.
    pub fn for_each_node(&self, mut f: impl FnMut(FileId, &VPath, &Attr)) {
        // Collect under the lock, call back outside it, so `f` may re-enter
        // the VFS.
        let snapshot: Vec<(FileId, Attr)> = {
            let inner = self.inner.read();
            inner.nodes.iter().map(|n| (n.id, n.attr())).collect()
        };
        for (id, attr) in snapshot {
            if let Ok(path) = self.path_of(id) {
                f(id, &path, &attr);
            }
        }
    }

    /// Clones the raw node table (for snapshot persistence).
    pub(crate) fn clone_nodes(&self) -> NodeTable {
        self.inner.read().nodes.clone()
    }

    /// Replaces the node table wholesale (snapshot restore). Clears caches.
    pub(crate) fn replace_nodes(&self, nodes: NodeTable, clock: u64) {
        let mut inner = self.inner.write();
        inner.nodes = nodes;
        inner.clock = clock;
        drop(inner);
        self.attr_cache.clear();
    }

    pub(crate) fn clock_value(&self) -> u64 {
        self.inner.read().clock
    }
}
