//! File attributes and the logical clock.
//!
//! The VFS stamps every mutation with a monotonically increasing *logical
//! time*. Upper layers (notably HAC's lazy reindexer, paper §2.4) compare
//! these stamps against the time of the last index pass to find files whose
//! content changed since.

use serde::{Deserialize, Serialize};

/// Stable identifier of a file-system object (an inode number).
///
/// `FileId`s are never reused within the lifetime of a [`crate::Vfs`], so
/// upper layers may safely key long-lived metadata (query results, permanent
/// and prohibited link sets) by them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl FileId {
    /// The id of the namespace root directory.
    pub const ROOT: FileId = FileId(0);
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Logical timestamp: the value of the VFS mutation counter when the stamped
/// event happened.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct LogicalTime(pub u64);

/// The kind of a file-system node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A regular file with byte content.
    File,
    /// A directory containing named entries.
    Dir,
    /// A symbolic link storing a target path (resolved lazily).
    Symlink,
}

impl NodeKind {
    /// Single-character tag used by `ls`-style listings.
    pub fn tag(self) -> char {
        match self {
            NodeKind::File => '-',
            NodeKind::Dir => 'd',
            NodeKind::Symlink => 'l',
        }
    }
}

/// Status information for a node, as returned by `stat`.
///
/// This is also the unit cached by the shared attribute cache
/// ([`crate::attrcache`]), which the paper credits for Scan-phase speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attr {
    /// The node this attribute block describes.
    pub id: FileId,
    /// Node kind.
    pub kind: NodeKind,
    /// Content size in bytes (entry count for directories, target length for
    /// symlinks).
    pub size: u64,
    /// Logical time of the last content mutation.
    pub mtime: LogicalTime,
    /// Logical time of creation.
    pub ctime: LogicalTime,
    /// Content version: increments on every write/truncate. The reindexer
    /// compares versions, not byte contents.
    pub version: u64,
}

impl Attr {
    /// Whether the node is a directory.
    pub fn is_dir(&self) -> bool {
        self.kind == NodeKind::Dir
    }

    /// Whether the node is a regular file.
    pub fn is_file(&self) -> bool {
        self.kind == NodeKind::File
    }

    /// Whether the node is a symbolic link.
    pub fn is_symlink(&self) -> bool {
        self.kind == NodeKind::Symlink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags() {
        assert_eq!(NodeKind::File.tag(), '-');
        assert_eq!(NodeKind::Dir.tag(), 'd');
        assert_eq!(NodeKind::Symlink.tag(), 'l');
    }

    #[test]
    fn file_id_display_and_root() {
        assert_eq!(FileId::ROOT, FileId(0));
        assert_eq!(FileId(42).to_string(), "#42");
    }

    #[test]
    fn logical_time_orders() {
        assert!(LogicalTime(1) < LogicalTime(2));
        assert_eq!(LogicalTime::default(), LogicalTime(0));
    }
}
