//! Mutation event stream.
//!
//! The paper's HAC layer intercepts every file-system call; in this
//! reproduction the HAC layer wraps [`crate::Vfs`] directly, but other
//! consumers (the periodic reindex daemon, tests, tracing tools) subscribe to
//! a broadcast of mutations instead. Each subscriber gets its own unbounded
//! channel; a dropped receiver is pruned lazily on the next publish.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::attr::FileId;
use crate::path::VPath;

/// A structural or content mutation applied to the namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // Field meanings are given on each variant.
pub enum VfsEvent {
    /// A regular file was created at `path` with node id `id`.
    FileCreated { id: FileId, path: VPath },
    /// A directory was created at `path` with node id `id`.
    DirCreated { id: FileId, path: VPath },
    /// A symbolic link to `target` was created at `path`.
    SymlinkCreated {
        id: FileId,
        path: VPath,
        target: VPath,
    },
    /// File content changed (write or truncate); `new_version` is the
    /// post-mutation content version.
    FileWritten {
        id: FileId,
        path: VPath,
        new_version: u64,
    },
    /// The node at `path` was removed (`unlink` or `rmdir`).
    Removed {
        id: FileId,
        path: VPath,
        was_dir: bool,
    },
    /// The node was renamed/moved from `from` to `to`.
    Renamed {
        id: FileId,
        from: VPath,
        to: VPath,
        is_dir: bool,
    },
    /// A foreign namespace was grafted at `at`.
    Mounted { at: VPath },
    /// A foreign namespace was detached from `at`.
    Unmounted { at: VPath },
}

impl VfsEvent {
    /// The primary path the event concerns (destination path for renames).
    pub fn path(&self) -> &VPath {
        match self {
            VfsEvent::FileCreated { path, .. }
            | VfsEvent::DirCreated { path, .. }
            | VfsEvent::SymlinkCreated { path, .. }
            | VfsEvent::FileWritten { path, .. }
            | VfsEvent::Removed { path, .. } => path,
            VfsEvent::Renamed { to, .. } => to,
            VfsEvent::Mounted { at } | VfsEvent::Unmounted { at } => at,
        }
    }

    /// Whether the event invalidates content indexing for some file (as
    /// opposed to pure namespace structure changes).
    pub fn is_content_change(&self) -> bool {
        matches!(
            self,
            VfsEvent::FileWritten { .. }
                | VfsEvent::FileCreated { .. }
                | VfsEvent::Removed { was_dir: false, .. }
        )
    }
}

/// Broadcast hub for [`VfsEvent`]s.
#[derive(Debug, Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Sender<VfsEvent>>>,
}

impl EventBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new subscriber and returns its receiving end.
    pub fn subscribe(&self) -> Receiver<VfsEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes an event to all live subscribers, pruning dead ones.
    pub fn publish(&self, event: VfsEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of live subscribers (diagnostic).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> VfsEvent {
        VfsEvent::FileCreated {
            id: FileId(7),
            path: VPath::parse("/a").unwrap(),
        }
    }

    #[test]
    fn subscribers_receive_published_events() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        bus.publish(ev());
        assert_eq!(rx1.try_recv().unwrap(), ev());
        assert_eq!(rx2.try_recv().unwrap(), ev());
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        drop(rx);
        bus.publish(ev());
        assert_eq!(bus.subscriber_count(), 0);
    }

    #[test]
    fn event_paths_and_content_flags() {
        let write = VfsEvent::FileWritten {
            id: FileId(1),
            path: VPath::parse("/f").unwrap(),
            new_version: 2,
        };
        assert!(write.is_content_change());
        assert_eq!(write.path().to_string(), "/f");

        let rename = VfsEvent::Renamed {
            id: FileId(1),
            from: VPath::parse("/a").unwrap(),
            to: VPath::parse("/b").unwrap(),
            is_dir: true,
        };
        assert!(!rename.is_content_change());
        assert_eq!(rename.path().to_string(), "/b");
    }
}
