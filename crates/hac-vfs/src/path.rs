//! Absolute, normalized virtual paths.
//!
//! Every path handled by the VFS is absolute and normalized at parse time:
//! `.` components are dropped and `..` components are resolved lexically
//! (the root's parent is the root itself, as in POSIX). Symbolic links are
//! *not* resolved here — that is the resolver's job ([`crate::Vfs`]), because
//! link expansion needs the live namespace.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{VfsError, VfsResult};

/// An absolute, normalized path inside a [`crate::Vfs`] namespace.
///
/// `VPath` is an ordered list of non-empty components; the empty list is the
/// root `/`. Parsing rejects relative paths and components containing NUL.
///
/// # Examples
///
/// ```
/// use hac_vfs::VPath;
///
/// let p = VPath::parse("/home//user/./notes/../mail").unwrap();
/// assert_eq!(p.to_string(), "/home/user/mail");
/// assert_eq!(p.file_name(), Some("mail"));
/// assert_eq!(p.parent().unwrap().to_string(), "/home/user");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VPath {
    components: Vec<String>,
}

impl VPath {
    /// The root path `/`.
    pub fn root() -> Self {
        VPath {
            components: Vec::new(),
        }
    }

    /// Parses an absolute path string, normalizing `.`, `..` and repeated
    /// separators.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] if the string is empty, does not
    /// start with `/`, or contains a NUL byte.
    pub fn parse(s: &str) -> VfsResult<Self> {
        if s.is_empty() || !s.starts_with('/') || s.contains('\0') {
            return Err(VfsError::InvalidPath(s.to_string()));
        }
        let mut components: Vec<String> = Vec::new();
        for comp in s.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    // Lexical parent; the root is its own parent.
                    components.pop();
                }
                other => components.push(other.to_string()),
            }
        }
        Ok(VPath { components })
    }

    /// Builds a path directly from components. Components must be non-empty
    /// and must not contain `/` or NUL.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] when any component is malformed.
    pub fn from_components<I, S>(iter: I) -> VfsResult<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut components = Vec::new();
        for c in iter {
            let c: String = c.into();
            if c.is_empty() || c == "." || c == ".." || c.contains('/') || c.contains('\0') {
                return Err(VfsError::InvalidPath(c));
            }
            components.push(c);
        }
        Ok(VPath { components })
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(VPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns a new path with `name` appended.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] for malformed component names.
    pub fn join(&self, name: &str) -> VfsResult<VPath> {
        if name.is_empty()
            || name == "."
            || name == ".."
            || name.contains('/')
            || name.contains('\0')
        {
            return Err(VfsError::InvalidPath(name.to_string()));
        }
        let mut components = self.components.clone();
        components.push(name.to_string());
        Ok(VPath { components })
    }

    /// Whether `self` equals `ancestor` or lies beneath it.
    pub fn starts_with(&self, ancestor: &VPath) -> bool {
        self.components.len() >= ancestor.components.len()
            && self.components[..ancestor.components.len()] == ancestor.components[..]
    }

    /// Iterates over the path components from the root downwards.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(String::as_str)
    }

    /// Rewrites the `old_prefix` of this path to `new_prefix`; used when a
    /// directory is renamed and every recorded path under it must follow.
    ///
    /// Returns `None` when the path does not start with `old_prefix`.
    pub fn rebase(&self, old_prefix: &VPath, new_prefix: &VPath) -> Option<VPath> {
        if !self.starts_with(old_prefix) {
            return None;
        }
        let mut components = new_prefix.components.clone();
        components.extend_from_slice(&self.components[old_prefix.components.len()..]);
        Some(VPath { components })
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for VPath {
    type Err = VfsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_dots_and_slashes() {
        let p = VPath::parse("/a//b/./c/../d").unwrap();
        assert_eq!(p.to_string(), "/a/b/d");
    }

    #[test]
    fn root_parses_and_displays() {
        assert_eq!(VPath::parse("/").unwrap(), VPath::root());
        assert_eq!(VPath::root().to_string(), "/");
        assert!(VPath::root().is_root());
        assert_eq!(VPath::root().parent(), None);
    }

    #[test]
    fn dotdot_at_root_stays_at_root() {
        assert_eq!(VPath::parse("/../..").unwrap(), VPath::root());
        assert_eq!(VPath::parse("/../a").unwrap().to_string(), "/a");
    }

    #[test]
    fn relative_and_empty_rejected() {
        assert!(matches!(VPath::parse(""), Err(VfsError::InvalidPath(_))));
        assert!(matches!(VPath::parse("a/b"), Err(VfsError::InvalidPath(_))));
        assert!(matches!(
            VPath::parse("/a\0b"),
            Err(VfsError::InvalidPath(_))
        ));
    }

    #[test]
    fn join_validates_component() {
        let p = VPath::parse("/a").unwrap();
        assert_eq!(p.join("b").unwrap().to_string(), "/a/b");
        assert!(p.join("").is_err());
        assert!(p.join("x/y").is_err());
        assert!(p.join("..").is_err());
    }

    #[test]
    fn starts_with_and_rebase() {
        let p = VPath::parse("/a/b/c").unwrap();
        let a = VPath::parse("/a").unwrap();
        let z = VPath::parse("/z").unwrap();
        assert!(p.starts_with(&a));
        assert!(p.starts_with(&p));
        assert!(!p.starts_with(&z));
        assert!(!a.starts_with(&p));
        assert_eq!(p.rebase(&a, &z).unwrap().to_string(), "/z/b/c");
        assert_eq!(p.rebase(&z, &a), None);
        // Rebasing the prefix itself yields the new prefix.
        assert_eq!(a.rebase(&a, &z).unwrap(), z);
    }

    #[test]
    fn file_name_and_parent() {
        let p = VPath::parse("/x/y").unwrap();
        assert_eq!(p.file_name(), Some("y"));
        assert_eq!(p.parent().unwrap().to_string(), "/x");
        assert_eq!(p.parent().unwrap().parent().unwrap(), VPath::root());
    }

    #[test]
    fn from_components_roundtrip() {
        let p = VPath::from_components(["usr", "lib"]).unwrap();
        assert_eq!(p.to_string(), "/usr/lib");
        assert!(VPath::from_components(["ok", "bad/part"]).is_err());
        assert!(VPath::from_components([".."]).is_err());
    }
}
