//! In-memory node table.
//!
//! The node table is the "disk" of this substrate: a slab of inodes indexed
//! by [`FileId`]. Ids are allocated monotonically and never reused, so stale
//! references from upper layers can be detected instead of silently aliasing
//! a new object.

use std::collections::BTreeMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::attr::{Attr, FileId, LogicalTime, NodeKind};
use crate::path::VPath;

/// Payload of a node, by kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeBody {
    /// Regular file content.
    File {
        /// Raw bytes. `Bytes` keeps clone-on-read cheap for the fd layer.
        #[serde(with = "serde_bytes_compat")]
        data: Bytes,
    },
    /// Directory entries, sorted by name for deterministic `readdir`.
    Dir {
        /// Child name → child id.
        entries: BTreeMap<String, FileId>,
    },
    /// Symbolic link target (a path, resolved lazily like POSIX symlinks;
    /// renaming the target leaves the link dangling until fixed — exactly
    /// the data-inconsistency window the paper describes in §2.4).
    Symlink {
        /// Target path.
        target: VPath,
    },
}

/// Serde shim: serialize `Bytes` as a byte vector.
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

/// A single inode: identity, bookkeeping, and payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: FileId,
    /// Id of the containing directory (the root points at itself).
    pub parent: FileId,
    /// Name under which the parent references this node (empty for root).
    pub name: String,
    /// Creation stamp.
    pub ctime: LogicalTime,
    /// Last-mutation stamp.
    pub mtime: LogicalTime,
    /// Content version, incremented by writes and truncates.
    pub version: u64,
    /// Kind-specific payload.
    pub body: NodeBody,
}

impl Node {
    /// The node kind implied by the payload.
    pub fn kind(&self) -> NodeKind {
        match self.body {
            NodeBody::File { .. } => NodeKind::File,
            NodeBody::Dir { .. } => NodeKind::Dir,
            NodeBody::Symlink { .. } => NodeKind::Symlink,
        }
    }

    /// Logical size: bytes for files, entry count for directories, target
    /// length for symlinks.
    pub fn size(&self) -> u64 {
        match &self.body {
            NodeBody::File { data } => data.len() as u64,
            NodeBody::Dir { entries } => entries.len() as u64,
            NodeBody::Symlink { target } => target.to_string().len() as u64,
        }
    }

    /// Builds the `stat` view of this node.
    pub fn attr(&self) -> Attr {
        Attr {
            id: self.id,
            kind: self.kind(),
            size: self.size(),
            mtime: self.mtime,
            ctime: self.ctime,
            version: self.version,
        }
    }

    /// Directory entries, if this is a directory.
    pub fn dir_entries(&self) -> Option<&BTreeMap<String, FileId>> {
        match &self.body {
            NodeBody::Dir { entries } => Some(entries),
            _ => None,
        }
    }

    /// Mutable directory entries, if this is a directory.
    pub fn dir_entries_mut(&mut self) -> Option<&mut BTreeMap<String, FileId>> {
        match &mut self.body {
            NodeBody::Dir { entries } => Some(entries),
            _ => None,
        }
    }
}

/// The slab of all nodes in a namespace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeTable {
    nodes: BTreeMap<u64, Node>,
    next_id: u64,
}

impl NodeTable {
    /// Creates a table holding only a fresh root directory.
    pub fn with_root() -> Self {
        let root = Node {
            id: FileId::ROOT,
            parent: FileId::ROOT,
            name: String::new(),
            ctime: LogicalTime(0),
            mtime: LogicalTime(0),
            version: 0,
            body: NodeBody::Dir {
                entries: BTreeMap::new(),
            },
        };
        let mut nodes = BTreeMap::new();
        nodes.insert(0, root);
        NodeTable { nodes, next_id: 1 }
    }

    /// Allocates a fresh, never-before-used id.
    pub fn alloc_id(&mut self) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts a node under its own id. Panics on id collision, which would
    /// indicate allocator misuse inside this crate (ids come only from
    /// [`Self::alloc_id`]).
    pub fn insert(&mut self, node: Node) {
        let prev = self.nodes.insert(node.id.0, node);
        debug_assert!(prev.is_none(), "FileId reuse in NodeTable::insert");
    }

    /// Looks up a node by id.
    pub fn get(&self, id: FileId) -> Option<&Node> {
        self.nodes.get(&id.0)
    }

    /// Looks up a node mutably by id.
    pub fn get_mut(&mut self, id: FileId) -> Option<&mut Node> {
        self.nodes.get_mut(&id.0)
    }

    /// Removes a node, returning it.
    pub fn remove(&mut self, id: FileId) -> Option<Node> {
        self.nodes.remove(&id.0)
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table holds no nodes (never true in practice: the root
    /// always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates all live nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Approximate bytes of metadata used by the table, excluding file
    /// content. Used by the space-overhead experiment (§4 in-text numbers).
    pub fn metadata_bytes(&self) -> u64 {
        let mut total = 0u64;
        for node in self.nodes.values() {
            total += std::mem::size_of::<Node>() as u64;
            total += node.name.len() as u64;
            match &node.body {
                NodeBody::Dir { entries } => {
                    for name in entries.keys() {
                        total += name.len() as u64 + 8 + 16;
                    }
                }
                NodeBody::Symlink { target } => total += target.to_string().len() as u64,
                NodeBody::File { .. } => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists_and_is_dir() {
        let t = NodeTable::with_root();
        let root = t.get(FileId::ROOT).unwrap();
        assert_eq!(root.kind(), NodeKind::Dir);
        assert_eq!(root.parent, FileId::ROOT);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = NodeTable::with_root();
        let a = t.alloc_id();
        let b = t.alloc_id();
        assert_ne!(a, b);
        t.insert(Node {
            id: a,
            parent: FileId::ROOT,
            name: "a".into(),
            ctime: LogicalTime(1),
            mtime: LogicalTime(1),
            version: 0,
            body: NodeBody::File { data: Bytes::new() },
        });
        t.remove(a);
        let c = t.alloc_id();
        assert_ne!(c, a);
        assert_ne!(c, b);
    }

    #[test]
    fn node_size_by_kind() {
        let file = Node {
            id: FileId(1),
            parent: FileId::ROOT,
            name: "f".into(),
            ctime: LogicalTime(0),
            mtime: LogicalTime(0),
            version: 0,
            body: NodeBody::File {
                data: Bytes::from_static(b"hello"),
            },
        };
        assert_eq!(file.size(), 5);
        assert!(file.attr().is_file());

        let link = Node {
            id: FileId(2),
            parent: FileId::ROOT,
            name: "l".into(),
            ctime: LogicalTime(0),
            mtime: LogicalTime(0),
            version: 0,
            body: NodeBody::Symlink {
                target: VPath::parse("/x/y").unwrap(),
            },
        };
        assert_eq!(link.size(), 4);
        assert!(link.attr().is_symlink());
    }

    #[test]
    fn metadata_bytes_grows_with_entries() {
        let mut t = NodeTable::with_root();
        let before = t.metadata_bytes();
        let id = t.alloc_id();
        t.insert(Node {
            id,
            parent: FileId::ROOT,
            name: "somefile".into(),
            ctime: LogicalTime(1),
            mtime: LogicalTime(1),
            version: 0,
            body: NodeBody::File { data: Bytes::new() },
        });
        assert!(t.metadata_bytes() > before);
    }
}
