//! Property tests: the VFS against a trivial reference model.
//!
//! The model is a flat `BTreeMap<String, Entry>` keyed by path string. We
//! replay a random operation trace against both the model and the real VFS
//! and require identical observable outcomes (success/failure and final
//! contents). Renames and symlinks are exercised separately because the
//! flat model cannot express subtree moves cheaply.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hac_vfs::{files_under, VPath, Vfs};

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8, u8),
    Write(u8, u8, Vec<u8>),
    Unlink(u8, u8),
    Rmdir(u8),
}

#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Dir,
    File(Vec<u8>),
}

/// Directory name pool: /d0../d3; file name pool: f0..f3 within a dir.
fn dir_path(d: u8) -> VPath {
    VPath::parse(&format!("/d{}", d % 4)).unwrap()
}

fn file_path(d: u8, f: u8) -> VPath {
    VPath::parse(&format!("/d{}/f{}", d % 4, f % 4)).unwrap()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Mkdir),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Create(d, f)),
        (
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(d, f, data)| Op::Write(d, f, data)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Unlink(d, f)),
        any::<u8>().prop_map(Op::Rmdir),
    ]
}

fn apply_model(model: &mut BTreeMap<String, Entry>, op: &Op) -> bool {
    match op {
        Op::Mkdir(d) => {
            let p = dir_path(*d).to_string();
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(p) {
                e.insert(Entry::Dir);
                true
            } else {
                false
            }
        }
        Op::Create(d, f) => {
            let dir = dir_path(*d).to_string();
            let p = file_path(*d, *f).to_string();
            if model.get(&dir) != Some(&Entry::Dir) || model.contains_key(&p) {
                false
            } else {
                model.insert(p, Entry::File(Vec::new()));
                true
            }
        }
        Op::Write(d, f, data) => {
            let p = file_path(*d, *f).to_string();
            match model.get_mut(&p) {
                Some(Entry::File(content)) => {
                    *content = data.clone();
                    true
                }
                _ => false,
            }
        }
        Op::Unlink(d, f) => {
            let p = file_path(*d, *f).to_string();
            match model.get(&p) {
                Some(Entry::File(_)) => {
                    model.remove(&p);
                    true
                }
                _ => false,
            }
        }
        Op::Rmdir(d) => {
            let dir = dir_path(*d).to_string();
            if model.get(&dir) != Some(&Entry::Dir) {
                return false;
            }
            let prefix = format!("{dir}/");
            if model.keys().any(|k| k.starts_with(&prefix)) {
                return false;
            }
            model.remove(&dir);
            true
        }
    }
}

fn apply_vfs(fs: &Vfs, op: &Op) -> bool {
    match op {
        Op::Mkdir(d) => fs.mkdir(&dir_path(*d)).is_ok(),
        Op::Create(d, f) => fs.create(&file_path(*d, *f)).is_ok(),
        Op::Write(d, f, data) => fs.write_file(&file_path(*d, *f), data).is_ok(),
        Op::Unlink(d, f) => fs.unlink(&file_path(*d, *f)).is_ok(),
        Op::Rmdir(d) => fs.rmdir(&dir_path(*d)).is_ok(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vfs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let fs = Vfs::new();
        let mut model: BTreeMap<String, Entry> = BTreeMap::new();

        for op in &ops {
            let model_ok = apply_model(&mut model, op);
            let vfs_ok = apply_vfs(&fs, op);
            prop_assert_eq!(model_ok, vfs_ok, "outcome diverged on {:?}", op);
        }

        // Final states agree: every model entry exists with equal content,
        // and the VFS has no extra files.
        for (path, entry) in &model {
            let vp = VPath::parse(path).unwrap();
            match entry {
                Entry::Dir => prop_assert!(fs.stat(&vp).unwrap().is_dir()),
                Entry::File(content) => {
                    prop_assert_eq!(&fs.read_file(&vp).unwrap()[..], &content[..]);
                }
            }
        }
        let vfs_files = files_under(&fs, &VPath::root()).unwrap();
        let model_files = model.values().filter(|e| matches!(e, Entry::File(_))).count();
        prop_assert_eq!(vfs_files.len(), model_files);
    }

    #[test]
    fn rename_preserves_subtree_content(
        names in proptest::collection::vec("[a-z]{1,8}", 1..10),
        content in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let fs = Vfs::new();
        let src = VPath::parse("/src").unwrap();
        fs.mkdir(&src).unwrap();
        let mut expected = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let file = src.join(&format!("{name}{i}")).unwrap();
            fs.save(&file, &content).unwrap();
            expected.push(format!("{name}{i}"));
        }
        fs.rename(&src, &VPath::parse("/dst").unwrap()).unwrap();
        for name in &expected {
            let moved = VPath::parse(&format!("/dst/{name}")).unwrap();
            prop_assert_eq!(&fs.read_file(&moved).unwrap()[..], &content[..]);
        }
        prop_assert!(!fs.exists(&src));
    }

    #[test]
    fn snapshot_restore_is_identity(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let fs = Vfs::new();
        for op in &ops {
            let _ = apply_vfs(&fs, op);
        }
        let bytes = hac_vfs::persist::snapshot(&fs).unwrap();
        let restored = Vfs::new();
        hac_vfs::persist::restore(&restored, &bytes).unwrap();

        let orig = files_under(&fs, &VPath::root()).unwrap();
        let back = files_under(&restored, &VPath::root()).unwrap();
        prop_assert_eq!(&orig, &back);
        for f in &orig {
            prop_assert_eq!(fs.read_file(f).unwrap(), restored.read_file(f).unwrap());
        }
    }

    #[test]
    fn path_parse_display_roundtrip(parts in proptest::collection::vec("[a-zA-Z0-9_.-]{1,12}", 0..6)) {
        // Filter out the component forms the parser normalizes away.
        let parts: Vec<String> = parts.into_iter().filter(|p| p != "." && p != "..").collect();
        let joined = format!("/{}", parts.join("/"));
        let parsed = VPath::parse(&joined).unwrap();
        prop_assert_eq!(parsed.depth(), parts.len());
        let reparsed = VPath::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
