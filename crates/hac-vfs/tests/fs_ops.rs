//! Behavioural integration tests for the VFS public surface.

use std::sync::Arc;

use hac_vfs::{CreatePolicy, NodeKind, OpenMode, VPath, Vfs, VfsError, VfsEvent};

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn create_read_write_roundtrip() {
    let fs = Vfs::new();
    fs.mkdir(&p("/docs")).unwrap();
    fs.create(&p("/docs/a.txt")).unwrap();
    fs.write_file(&p("/docs/a.txt"), b"hello").unwrap();
    assert_eq!(&fs.read_file(&p("/docs/a.txt")).unwrap()[..], b"hello");
    fs.append(&p("/docs/a.txt"), b" world").unwrap();
    assert_eq!(
        &fs.read_file(&p("/docs/a.txt")).unwrap()[..],
        b"hello world"
    );
}

#[test]
fn create_in_missing_parent_fails() {
    let fs = Vfs::new();
    assert!(matches!(
        fs.create(&p("/nodir/x")),
        Err(VfsError::NotFound(_))
    ));
}

#[test]
fn duplicate_create_fails() {
    let fs = Vfs::new();
    fs.create(&p("/f")).unwrap();
    assert!(matches!(
        fs.create(&p("/f")),
        Err(VfsError::AlreadyExists(_))
    ));
    assert!(matches!(
        fs.mkdir(&p("/f")),
        Err(VfsError::AlreadyExists(_))
    ));
}

#[test]
fn mkdir_p_is_idempotent_and_checks_kinds() {
    let fs = Vfs::new();
    let a = fs.mkdir_p(&p("/x/y/z")).unwrap();
    let b = fs.mkdir_p(&p("/x/y/z")).unwrap();
    assert_eq!(a, b);
    fs.create(&p("/x/file")).unwrap();
    assert!(matches!(
        fs.mkdir_p(&p("/x/file/sub")),
        Err(VfsError::NotADirectory(_))
    ));
}

#[test]
fn symlinks_resolve_transitively() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/a/b")).unwrap();
    fs.save(&p("/a/b/t.txt"), b"target").unwrap();
    fs.symlink(&p("/l1"), &p("/a/b/t.txt")).unwrap();
    fs.symlink(&p("/l2"), &p("/l1")).unwrap();
    assert_eq!(&fs.read_file(&p("/l2")).unwrap()[..], b"target");
    // lstat sees the link; stat follows it.
    assert_eq!(fs.lstat(&p("/l2")).unwrap().kind, NodeKind::Symlink);
    assert_eq!(fs.stat(&p("/l2")).unwrap().kind, NodeKind::File);
    assert_eq!(fs.readlink(&p("/l2")).unwrap(), p("/l1"));
}

#[test]
fn symlink_into_directory_resolves_components() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/real/dir")).unwrap();
    fs.save(&p("/real/dir/f"), b"x").unwrap();
    fs.symlink(&p("/alias"), &p("/real/dir")).unwrap();
    assert_eq!(&fs.read_file(&p("/alias/f")).unwrap()[..], b"x");
    assert_eq!(fs.readdir(&p("/alias")).unwrap().len(), 1);
}

#[test]
fn symlink_cycle_detected() {
    let fs = Vfs::new();
    fs.symlink(&p("/a"), &p("/b")).unwrap();
    fs.symlink(&p("/b"), &p("/a")).unwrap();
    assert!(matches!(
        fs.read_file(&p("/a")),
        Err(VfsError::TooManyLinks(_))
    ));
}

#[test]
fn dangling_symlink_reports_not_found_on_follow() {
    let fs = Vfs::new();
    fs.symlink(&p("/ghost"), &p("/no/such/file")).unwrap();
    assert!(matches!(fs.stat(&p("/ghost")), Err(VfsError::NotFound(_))));
    // But lstat and readlink still work.
    assert!(fs.lstat(&p("/ghost")).unwrap().is_symlink());
    assert_eq!(fs.readlink(&p("/ghost")).unwrap(), p("/no/such/file"));
}

#[test]
fn unlink_and_rmdir_enforce_kinds() {
    let fs = Vfs::new();
    fs.mkdir(&p("/d")).unwrap();
    fs.create(&p("/d/f")).unwrap();
    assert!(matches!(
        fs.unlink(&p("/d")),
        Err(VfsError::IsADirectory(_))
    ));
    assert!(matches!(fs.rmdir(&p("/d")), Err(VfsError::NotEmpty(_))));
    fs.unlink(&p("/d/f")).unwrap();
    fs.rmdir(&p("/d")).unwrap();
    assert!(!fs.exists(&p("/d")));
}

#[test]
fn remove_recursive_clears_subtree() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/t/a/b")).unwrap();
    fs.save(&p("/t/a/f1"), b"1").unwrap();
    fs.save(&p("/t/a/b/f2"), b"2").unwrap();
    fs.symlink(&p("/t/l"), &p("/t/a/f1")).unwrap();
    let nodes_before = fs.node_count();
    assert!(nodes_before > 1);
    fs.remove_recursive(&p("/t")).unwrap();
    assert!(!fs.exists(&p("/t")));
    assert_eq!(fs.node_count(), 1); // only root
}

#[test]
fn rename_moves_files_and_updates_paths() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/src")).unwrap();
    fs.mkdir_p(&p("/dst")).unwrap();
    let id = fs.save(&p("/src/f"), b"data").unwrap();
    fs.rename(&p("/src/f"), &p("/dst/g")).unwrap();
    assert!(!fs.exists(&p("/src/f")));
    assert_eq!(&fs.read_file(&p("/dst/g")).unwrap()[..], b"data");
    assert_eq!(fs.path_of(id).unwrap(), p("/dst/g"));
}

#[test]
fn rename_directory_carries_subtree() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/proj/src")).unwrap();
    fs.save(&p("/proj/src/main.c"), b"int main;").unwrap();
    fs.rename(&p("/proj"), &p("/project")).unwrap();
    assert_eq!(
        &fs.read_file(&p("/project/src/main.c")).unwrap()[..],
        b"int main;"
    );
}

#[test]
fn rename_refuses_into_self_and_existing_dest() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/a/b")).unwrap();
    fs.mkdir(&p("/c")).unwrap();
    assert!(matches!(
        fs.rename(&p("/a"), &p("/a/b/a2")),
        Err(VfsError::IntoSelf(_))
    ));
    assert!(matches!(
        fs.rename(&p("/a"), &p("/c")),
        Err(VfsError::AlreadyExists(_))
    ));
    // Root is immutable.
    assert!(matches!(
        fs.rename(&p("/"), &p("/r")),
        Err(VfsError::RootImmutable)
    ));
}

#[test]
fn rename_into_self_through_symlink_detected() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/a/b")).unwrap();
    fs.symlink(&p("/alias"), &p("/a/b")).unwrap();
    // Destination parent resolves through the alias back under /a.
    assert!(matches!(
        fs.rename(&p("/a"), &p("/alias/inside")),
        Err(VfsError::IntoSelf(_))
    ));
}

#[test]
fn readdir_is_name_ordered() {
    let fs = Vfs::new();
    fs.mkdir(&p("/d")).unwrap();
    for name in ["zeta", "alpha", "mid"] {
        fs.create(&p(&format!("/d/{name}"))).unwrap();
    }
    let names: Vec<String> = fs
        .readdir(&p("/d"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["alpha", "mid", "zeta"]);
}

#[test]
fn descriptor_io_streams_bytes() {
    let fs = Vfs::new();
    let pid = fs.spawn_process();
    let fd = fs
        .open(
            pid,
            &p("/file.bin"),
            OpenMode::ReadWrite,
            CreatePolicy::CreateIfMissing,
        )
        .unwrap();
    fs.write_fd(pid, fd, b"abcdef").unwrap();
    fs.seek(pid, fd, 0).unwrap();
    assert_eq!(&fs.read_fd(pid, fd, 3).unwrap()[..], b"abc");
    assert_eq!(&fs.read_fd(pid, fd, 10).unwrap()[..], b"def");
    assert_eq!(&fs.read_fd(pid, fd, 10).unwrap()[..], b"");
    fs.close(pid, fd).unwrap();
    assert!(matches!(
        fs.read_fd(pid, fd, 1),
        Err(VfsError::BadDescriptor(_))
    ));
    fs.exit_process(pid).unwrap();
}

#[test]
fn descriptor_mode_enforced() {
    let fs = Vfs::new();
    fs.save(&p("/f"), b"data").unwrap();
    let pid = fs.spawn_process();
    let ro = fs
        .open(pid, &p("/f"), OpenMode::Read, CreatePolicy::MustExist)
        .unwrap();
    assert!(matches!(
        fs.write_fd(pid, ro, b"x"),
        Err(VfsError::BadMode(_))
    ));
    let wo = fs
        .open(pid, &p("/f"), OpenMode::Write, CreatePolicy::MustExist)
        .unwrap();
    assert!(matches!(fs.read_fd(pid, wo, 1), Err(VfsError::BadMode(_))));
}

#[test]
fn descriptor_survives_rename() {
    let fs = Vfs::new();
    fs.save(&p("/old"), b"payload").unwrap();
    let pid = fs.spawn_process();
    let fd = fs
        .open(pid, &p("/old"), OpenMode::Read, CreatePolicy::MustExist)
        .unwrap();
    fs.rename(&p("/old"), &p("/new")).unwrap();
    assert_eq!(&fs.read_fd(pid, fd, 7).unwrap()[..], b"payload");
}

#[test]
fn open_truncate_policy_clears_content() {
    let fs = Vfs::new();
    fs.save(&p("/f"), b"old content").unwrap();
    let pid = fs.spawn_process();
    fs.open(
        pid,
        &p("/f"),
        OpenMode::Write,
        CreatePolicy::CreateOrTruncate,
    )
    .unwrap();
    assert_eq!(fs.read_file(&p("/f")).unwrap().len(), 0);
}

#[test]
fn write_fd_zero_fills_gap_after_seek() {
    let fs = Vfs::new();
    let pid = fs.spawn_process();
    let fd = fs
        .open(
            pid,
            &p("/sparse"),
            OpenMode::ReadWrite,
            CreatePolicy::CreateIfMissing,
        )
        .unwrap();
    fs.seek(pid, fd, 4).unwrap();
    fs.write_fd(pid, fd, b"zz").unwrap();
    assert_eq!(
        &fs.read_file(&p("/sparse")).unwrap()[..],
        &[0, 0, 0, 0, b'z', b'z']
    );
}

#[test]
fn events_cover_all_mutations() {
    let fs = Vfs::new();
    let rx = fs.subscribe();
    fs.mkdir(&p("/d")).unwrap();
    fs.create(&p("/d/f")).unwrap();
    fs.write_file(&p("/d/f"), b"x").unwrap();
    fs.symlink(&p("/d/l"), &p("/d/f")).unwrap();
    fs.rename(&p("/d/f"), &p("/d/g")).unwrap();
    fs.unlink(&p("/d/l")).unwrap();
    fs.unlink(&p("/d/g")).unwrap();
    fs.rmdir(&p("/d")).unwrap();
    let kinds: Vec<&'static str> = rx
        .try_iter()
        .map(|e| match e {
            VfsEvent::DirCreated { .. } => "mkdir",
            VfsEvent::FileCreated { .. } => "create",
            VfsEvent::FileWritten { .. } => "write",
            VfsEvent::SymlinkCreated { .. } => "symlink",
            VfsEvent::Renamed { .. } => "rename",
            VfsEvent::Removed { .. } => "remove",
            _ => "other",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["mkdir", "create", "write", "symlink", "rename", "remove", "remove", "remove"]
    );
}

#[test]
fn mounts_read_through_and_block_writes() {
    let host = Vfs::new();
    host.mkdir_p(&p("/mnt/remote")).unwrap();
    let guest = Arc::new(Vfs::new());
    guest.mkdir(&p("/shared")).unwrap();
    guest.save(&p("/shared/doc.txt"), b"remote doc").unwrap();
    host.mount(&p("/mnt/remote"), Arc::clone(&guest)).unwrap();

    // Reads traverse into the guest namespace.
    assert_eq!(
        &host.read_file(&p("/mnt/remote/shared/doc.txt")).unwrap()[..],
        b"remote doc"
    );
    let entries = host.readdir(&p("/mnt/remote")).unwrap();
    assert_eq!(entries[0].name, "shared");
    assert!(host.stat(&p("/mnt/remote/shared")).unwrap().is_dir());

    // Mutations across the boundary are refused.
    assert!(matches!(
        host.create(&p("/mnt/remote/shared/new.txt")),
        Err(VfsError::CrossMount(_))
    ));
    assert!(matches!(
        host.rename(&p("/mnt/remote/shared/doc.txt"), &p("/stolen")),
        Err(VfsError::CrossMount(_))
    ));

    // The covered directory cannot be removed while mounted.
    assert!(matches!(
        host.rmdir(&p("/mnt/remote")),
        Err(VfsError::CrossMount(_))
    ));

    host.unmount(&p("/mnt/remote")).unwrap();
    assert!(host.readdir(&p("/mnt/remote")).unwrap().is_empty());
    assert!(matches!(
        host.unmount(&p("/mnt/remote")),
        Err(VfsError::NotFound(_))
    ));
}

#[test]
fn double_mount_rejected() {
    let host = Vfs::new();
    host.mkdir(&p("/m")).unwrap();
    host.mount(&p("/m"), Arc::new(Vfs::new())).unwrap();
    assert!(matches!(
        host.mount(&p("/m"), Arc::new(Vfs::new())),
        Err(VfsError::AlreadyExists(_))
    ));
}

#[test]
fn attr_cache_serves_repeat_stats() {
    let fs = Vfs::new();
    fs.save(&p("/f"), b"content").unwrap();
    let before = fs.attr_cache_stats();
    for _ in 0..10 {
        fs.stat(&p("/f")).unwrap();
    }
    let after = fs.attr_cache_stats();
    assert!(
        after.hits >= before.hits + 9,
        "repeat stats should hit the cache"
    );

    // A write invalidates; next stat sees the new size.
    fs.write_file(&p("/f"), b"longer content!").unwrap();
    assert_eq!(fs.stat(&p("/f")).unwrap().size, 15);
}

#[test]
fn counters_track_operations() {
    let fs = Vfs::new();
    fs.mkdir(&p("/d")).unwrap();
    fs.save(&p("/d/f"), b"1").unwrap();
    fs.read_file(&p("/d/f")).unwrap();
    fs.rename(&p("/d/f"), &p("/d/g")).unwrap();
    fs.unlink(&p("/d/g")).unwrap();
    let c = fs.counters();
    assert!(c.creates >= 2);
    assert!(c.writes >= 1);
    assert!(c.reads >= 1);
    assert_eq!(c.renames, 1);
    assert_eq!(c.removes, 1);
}

#[test]
fn path_of_round_trips_resolution() {
    let fs = Vfs::new();
    fs.mkdir_p(&p("/deep/nested/dir")).unwrap();
    let id = fs.save(&p("/deep/nested/dir/leaf.txt"), b"x").unwrap();
    assert_eq!(fs.path_of(id).unwrap(), p("/deep/nested/dir/leaf.txt"));
    assert_eq!(fs.resolve(&fs.path_of(id).unwrap()).unwrap(), id);
}

#[test]
fn symlink_batch_is_atomic() {
    let fs = Vfs::new();
    fs.mkdir(&p("/d")).unwrap();
    fs.create(&p("/d/taken")).unwrap();
    // A batch colliding with an existing entry creates nothing.
    let links = vec![
        ("a".to_string(), p("/t1")),
        ("taken".to_string(), p("/t2")),
        ("b".to_string(), p("/t3")),
    ];
    assert!(matches!(
        fs.symlink_batch(&p("/d"), &links),
        Err(VfsError::AlreadyExists(_))
    ));
    assert_eq!(fs.readdir(&p("/d")).unwrap().len(), 1);
    // Duplicate names inside the batch are also refused.
    let dup = vec![("x".to_string(), p("/t1")), ("x".to_string(), p("/t2"))];
    assert!(matches!(
        fs.symlink_batch(&p("/d"), &dup),
        Err(VfsError::AlreadyExists(_))
    ));
    // A clean batch creates everything and publishes per-link events.
    let rx = fs.subscribe();
    let ok = vec![("a".to_string(), p("/t1")), ("b".to_string(), p("/t2"))];
    let ids = fs.symlink_batch(&p("/d"), &ok).unwrap();
    assert_eq!(ids.len(), 2);
    assert_eq!(fs.readlink(&p("/d/a")).unwrap(), p("/t1"));
    assert_eq!(fs.readlink(&p("/d/b")).unwrap(), p("/t2"));
    let events: Vec<VfsEvent> = rx.try_iter().collect();
    assert_eq!(events.len(), 2);
    // Empty batch is a no-op.
    assert!(fs.symlink_batch(&p("/d"), &[]).unwrap().is_empty());
}

#[test]
fn descriptors_are_isolated_between_processes() {
    let fs = Vfs::new();
    fs.save(&p("/shared"), b"abc").unwrap();
    let p1 = fs.spawn_process();
    let p2 = fs.spawn_process();
    let fd1 = fs
        .open(p1, &p("/shared"), OpenMode::Read, CreatePolicy::MustExist)
        .unwrap();
    // The same small-integer descriptor in another process is unrelated.
    assert!(matches!(
        fs.read_fd(p2, fd1, 1),
        Err(VfsError::BadDescriptor(_))
    ));
    let fd2 = fs
        .open(p2, &p("/shared"), OpenMode::Read, CreatePolicy::MustExist)
        .unwrap();
    // Offsets advance independently.
    assert_eq!(&fs.read_fd(p1, fd1, 2).unwrap()[..], b"ab");
    assert_eq!(&fs.read_fd(p2, fd2, 2).unwrap()[..], b"ab");
    assert_eq!(&fs.read_fd(p1, fd1, 2).unwrap()[..], b"c");
    // Exiting one process does not disturb the other.
    fs.exit_process(p1).unwrap();
    assert_eq!(&fs.read_fd(p2, fd2, 2).unwrap()[..], b"c");
}

#[test]
fn symlink_chain_at_depth_limit() {
    let fs = Vfs::new();
    fs.save(&p("/target"), b"deep").unwrap();
    // A chain just under the limit resolves; one past it errors.
    let mut prev = p("/target");
    for i in 0..hac_vfs::fs::MAX_LINK_DEPTH {
        let link = p(&format!("/l{i}"));
        fs.symlink(&link, &prev).unwrap();
        prev = link;
    }
    assert_eq!(
        &fs.read_file(&p(&format!("/l{}", hac_vfs::fs::MAX_LINK_DEPTH - 1)))
            .unwrap()[..],
        b"deep"
    );
    let over = p("/over");
    fs.symlink(&over, &prev).unwrap();
    assert!(matches!(
        fs.read_file(&over),
        Err(VfsError::TooManyLinks(_))
    ));
}

#[test]
fn tiny_attr_cache_still_correct() {
    let fs = Vfs::with_cache_capacity(2);
    for i in 0..10 {
        fs.save(&p(&format!("/f{i}")), format!("{i}").as_bytes())
            .unwrap();
    }
    // Every stat is correct regardless of eviction pressure.
    for i in 0..10 {
        assert_eq!(fs.stat(&p(&format!("/f{i}"))).unwrap().size, 1);
    }
    assert!(fs.attr_cache_stats().evictions > 0);
}
