//! Text document collections (Table 3/4 workload).
//!
//! The paper's second experiment indexes "a database consisting of over
//! 17000 files that occupy about 150 MB". This generator produces a
//! deterministic collection with the same shape at any scale: Zipf word
//! frequencies, log-normal-ish file sizes, and a directory fan-out.

use hac_vfs::{VPath, Vfs, VfsResult};
use rand::Rng;

use crate::words::{rng, Vocabulary};

/// Parameters of a document collection.
#[derive(Debug, Clone)]
pub struct DocCollectionSpec {
    /// Number of files to generate.
    pub files: usize,
    /// Mean words per file.
    pub mean_words: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Files per directory before a new directory is opened.
    pub files_per_dir: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DocCollectionSpec {
    fn default() -> Self {
        DocCollectionSpec {
            files: 400,
            mean_words: 120,
            vocab: 4000,
            files_per_dir: 50,
            seed: 1999,
        }
    }
}

impl DocCollectionSpec {
    /// A spec sized to approximate the paper's full experiment (17 000
    /// files, ~150 MB → ~8.8 KB ≈ 1300 words per file).
    pub fn paper_scale() -> Self {
        DocCollectionSpec {
            files: 17_000,
            mean_words: 1_300,
            vocab: 60_000,
            files_per_dir: 200,
            seed: 1999,
        }
    }
}

/// Summary of a generated collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocCollection {
    /// Root directory of the collection.
    pub root: VPath,
    /// Paths of every generated file.
    pub files: Vec<VPath>,
    /// Total bytes written.
    pub bytes: u64,
}

/// Generates a document collection under `root` (created if missing).
///
/// # Errors
///
/// Propagates VFS errors (e.g. `root` names an existing file).
pub fn generate_docs(
    vfs: &Vfs,
    root: &VPath,
    spec: &DocCollectionSpec,
) -> VfsResult<DocCollection> {
    let vocab = Vocabulary::new(spec.vocab, 1.0);
    let mut r = rng(spec.seed);
    vfs.mkdir_p(root)?;
    let mut files = Vec::with_capacity(spec.files);
    let mut bytes = 0u64;
    for i in 0..spec.files {
        let dir_no = i / spec.files_per_dir.max(1);
        let dir = root.join(&format!("d{dir_no:04}"))?;
        if i % spec.files_per_dir.max(1) == 0 {
            vfs.mkdir_p(&dir)?;
        }
        // Word counts spread geometrically around the mean: many small
        // files, a heavy tail of large ones.
        let factor: f64 = r.gen_range(0.25..2.5f64);
        let n = ((spec.mean_words as f64) * factor) as usize + 1;
        let text = vocab.sample_text(&mut r, n);
        let path = dir.join(&format!("doc{i:06}.txt"))?;
        bytes += text.len() as u64;
        vfs.save(&path, text.as_bytes())?;
        files.push(path);
    }
    Ok(DocCollection {
        root: root.clone(),
        files,
        bytes,
    })
}

/// Picks query terms with a target selectivity from the vocabulary used by
/// [`generate_docs`]: low ranks match a lot of files, deep ranks match very
/// few — the three query classes of Table 4.
pub fn term_for_selectivity(spec: &DocCollectionSpec, selectivity: Selectivity) -> String {
    let vocab = Vocabulary::new(spec.vocab, 1.0);
    let rank = match selectivity {
        Selectivity::Many => 2,
        Selectivity::Intermediate => spec.vocab / 40,
        Selectivity::Few => spec.vocab / 4,
    };
    vocab.word_at_rank(rank).to_string()
}

/// The three query classes of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selectivity {
    /// "queries that matched very few files"
    Few,
    /// "an intermediate number of files"
    Intermediate,
    /// "queries that matched a lot of files"
    Many,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn generates_requested_file_count() {
        let vfs = Vfs::new();
        let spec = DocCollectionSpec {
            files: 120,
            ..Default::default()
        };
        let col = generate_docs(&vfs, &p("/db"), &spec).unwrap();
        assert_eq!(col.files.len(), 120);
        assert!(col.bytes > 0);
        // Directory fan-out: 120 files / 50 per dir = 3 dirs.
        let dirs = vfs.readdir(&p("/db")).unwrap();
        assert_eq!(dirs.len(), 3);
        // All files exist and are non-empty.
        for f in &col.files {
            assert!(vfs.stat(f).unwrap().size > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = {
            let vfs = Vfs::new();
            let col = generate_docs(&vfs, &p("/db"), &DocCollectionSpec::default()).unwrap();
            vfs.read_file(&col.files[7]).unwrap()
        };
        let b = {
            let vfs = Vfs::new();
            let col = generate_docs(&vfs, &p("/db"), &DocCollectionSpec::default()).unwrap();
            vfs.read_file(&col.files[7]).unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn selectivity_terms_have_distinct_frequencies() {
        let vfs = Vfs::new();
        let spec = DocCollectionSpec {
            files: 300,
            ..Default::default()
        };
        let col = generate_docs(&vfs, &p("/db"), &spec).unwrap();
        let count = |term: &str| {
            col.files
                .iter()
                .filter(|f| {
                    let content = vfs.read_file(f).unwrap();
                    String::from_utf8_lossy(&content)
                        .split_whitespace()
                        .any(|w| w == term)
                })
                .count()
        };
        let many = count(&term_for_selectivity(&spec, Selectivity::Many));
        let mid = count(&term_for_selectivity(&spec, Selectivity::Intermediate));
        let few = count(&term_for_selectivity(&spec, Selectivity::Few));
        assert!(many > mid, "many={many} mid={mid}");
        assert!(mid >= few, "mid={mid} few={few}");
        assert!(
            many > col.files.len() / 2,
            "'many' should hit most files: {many}"
        );
    }
}
