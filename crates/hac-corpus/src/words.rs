//! Zipf-distributed vocabulary sampling.
//!
//! Natural-language word frequencies follow a Zipf law; the indexing and
//! query experiments (Tables 3 and 4) need corpora whose term-frequency
//! *shape* is realistic so that "queries that match very few files" and
//! "queries that match a lot of files" both exist. The sampler is fully
//! deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic Zipf sampler over a synthetic vocabulary.
///
/// Word `i` (0-based rank) has probability proportional to `1/(i+1)^s`.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative distribution for sampling.
    cdf: Vec<f64>,
}

impl Vocabulary {
    /// Builds a vocabulary of `size` distinct words with Zipf exponent `s`
    /// (1.0 is the classic value).
    pub fn new(size: usize, s: f64) -> Self {
        assert!(size > 0, "vocabulary must not be empty");
        let words = (0..size).map(synth_word).collect();
        let mut weights: Vec<f64> = (0..size).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Vocabulary {
            words,
            cdf: weights,
        }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at a given frequency rank (0 = most frequent).
    pub fn word_at_rank(&self, rank: usize) -> &str {
        &self.words[rank.min(self.words.len() - 1)]
    }

    /// Samples one word according to the Zipf distribution.
    pub fn sample(&self, rng: &mut StdRng) -> &str {
        let x: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < x);
        &self.words[idx.min(self.words.len() - 1)]
    }

    /// Samples `n` words into a space-separated string.
    pub fn sample_text(&self, rng: &mut StdRng, n: usize) -> String {
        let mut out = String::with_capacity(n * 8);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.sample(rng));
        }
        out
    }
}

/// Deterministic pronounceable-ish synthetic word for a rank.
fn synth_word(rank: usize) -> String {
    const CONS: &[u8] = b"bcdfgklmnprstvz";
    const VOWS: &[u8] = b"aeiou";
    let mut n = rank + 1;
    let mut out = String::new();
    while n > 0 {
        let c = CONS[n % CONS.len()];
        n /= CONS.len();
        let v = VOWS[n % VOWS.len()];
        n /= VOWS.len();
        out.push(c as char);
        out.push(v as char);
    }
    // Guarantee a minimum length so the tokenizer never drops them.
    if out.len() < 3 {
        out.push('x');
    }
    out
}

/// Creates the standard seeded RNG used across generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_and_stable() {
        let v = Vocabulary::new(1000, 1.0);
        let set: std::collections::HashSet<&String> =
            v.words.iter().collect::<std::collections::HashSet<_>>();
        assert_eq!(set.len(), 1000);
        // Deterministic across constructions.
        let v2 = Vocabulary::new(1000, 1.0);
        assert_eq!(v.word_at_rank(0), v2.word_at_rank(0));
        assert_eq!(v.word_at_rank(999), v2.word_at_rank(999));
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let v = Vocabulary::new(100, 1.0);
        let a = v.sample_text(&mut rng(42), 20);
        let b = v.sample_text(&mut rng(42), 20);
        assert_eq!(a, b);
        let c = v.sample_text(&mut rng(43), 20);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_shape_front_loaded() {
        let v = Vocabulary::new(500, 1.0);
        let mut r = rng(7);
        let mut counts = vec![0u32; 500];
        for _ in 0..20_000 {
            let w = v.sample(&mut r).to_string();
            let idx = v.words.iter().position(|x| *x == w).unwrap();
            counts[idx] += 1;
        }
        // Rank 0 must dominate rank 100 heavily.
        assert!(
            counts[0] > counts[100] * 5,
            "rank0={} rank100={}",
            counts[0],
            counts[100]
        );
        // The tail is mostly rare but non-degenerate overall.
        let tail: u32 = counts[400..].iter().sum();
        assert!(tail < 2_000);
    }

    #[test]
    fn words_survive_min_length() {
        for rank in 0..50 {
            assert!(synth_word(rank).len() >= 3);
        }
    }
}
