//! Random file-system operation traces.
//!
//! Deterministic operation sequences for stress tests and failure-injection
//! runs — a seedable counterpart to the proptest strategies used in the
//! unit suites.

use hac_vfs::VPath;
use rand::Rng;

use crate::words::{rng, Vocabulary};

/// One operation in a trace, expressed path-wise so any file system layer
/// (raw VFS, HAC, baselines) can replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create a directory (parents exist by construction).
    Mkdir(VPath),
    /// Create or overwrite a file with text.
    Save(VPath, String),
    /// Delete a file.
    Unlink(VPath),
    /// Move a file.
    Rename(VPath, VPath),
    /// Read a file (may fail if a prior op removed it — replayers ignore
    /// errors).
    Read(VPath),
}

/// Parameters of a trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Number of operations.
    pub ops: usize,
    /// Number of directory slots.
    pub dirs: usize,
    /// Number of file slots per directory.
    pub files_per_dir: usize,
    /// Words per written file.
    pub words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            ops: 200,
            dirs: 4,
            files_per_dir: 8,
            words: 24,
            seed: 3,
        }
    }
}

/// Generates a replayable trace. The first `dirs` operations are the
/// `Mkdir`s so replays never hit missing parents.
pub fn generate_trace(spec: &TraceSpec) -> Vec<TraceOp> {
    let vocab = Vocabulary::new(500, 1.0);
    let mut r = rng(spec.seed);
    let dir = |d: usize| VPath::parse(&format!("/t{d}")).expect("static path");
    let file = |d: usize, f: usize| VPath::parse(&format!("/t{d}/f{f}")).expect("static path");
    let mut out: Vec<TraceOp> = (0..spec.dirs).map(|d| TraceOp::Mkdir(dir(d))).collect();
    for _ in 0..spec.ops {
        let d = r.gen_range(0..spec.dirs);
        let f = r.gen_range(0..spec.files_per_dir);
        let op = match r.gen_range(0..10u32) {
            0..=4 => TraceOp::Save(file(d, f), vocab.sample_text(&mut r, spec.words)),
            5..=6 => TraceOp::Read(file(d, f)),
            7 => TraceOp::Unlink(file(d, f)),
            8 => {
                let d2 = r.gen_range(0..spec.dirs);
                TraceOp::Rename(file(d, f), file(d2, spec.files_per_dir + f))
            }
            _ => TraceOp::Read(file(d, f)),
        };
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_vfs::Vfs;

    #[test]
    fn trace_is_deterministic() {
        let a = generate_trace(&TraceSpec::default());
        let b = generate_trace(&TraceSpec::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), 200 + 4);
    }

    #[test]
    fn trace_replays_on_a_vfs() {
        let vfs = Vfs::new();
        let mut errors = 0;
        for op in generate_trace(&TraceSpec::default()) {
            let r = match op {
                TraceOp::Mkdir(p) => vfs.mkdir(&p).map(|_| ()),
                TraceOp::Save(p, text) => vfs.save(&p, text.as_bytes()).map(|_| ()),
                TraceOp::Unlink(p) => vfs.unlink(&p),
                TraceOp::Rename(a, b) => vfs.rename(&a, &b),
                TraceOp::Read(p) => vfs.read_file(&p).map(|_| ()),
            };
            if r.is_err() {
                errors += 1;
            }
        }
        // Most operations succeed; some reads/unlinks of missing slots fail
        // by design.
        assert!(errors < 150, "too many failures: {errors}");
        assert!(vfs.node_count() > 4);
    }
}
