//! # hac-corpus — synthetic corpora and workloads
//!
//! Deterministic generators for every input the paper's evaluation needs
//! but that cannot ship with a reproduction:
//!
//! * [`docs`] — Zipf text collections (the 17 000-file / 150 MB database of
//!   Tables 3–4, at any scale);
//! * [`mail`] — RFC-822-ish mailboxes for the running example and the mail
//!   transducer;
//! * [`source_tree`] — C-like source trees (the Andrew Benchmark input of
//!   Tables 1–2);
//! * [`trace`] — replayable random operation traces for stress tests;
//! * [`words`] — the seeded Zipf vocabulary sampler underneath them all.
//!
//! Everything is a pure function of its spec (including the seed), so
//! benchmark runs are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docs;
pub mod mail;
pub mod source_tree;
pub mod trace;
pub mod words;

pub use docs::{
    generate_docs, term_for_selectivity, DocCollection, DocCollectionSpec, Selectivity,
};
pub use mail::{generate_mailbox, MailMeta, MailboxSpec};
pub use source_tree::{generate_source_tree, SourceTree, SourceTreeSpec};
pub use trace::{generate_trace, TraceOp, TraceSpec};
pub use words::Vocabulary;
