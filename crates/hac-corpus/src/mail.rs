//! Synthetic mailboxes.
//!
//! The paper's running example files fingerprint-project email into
//! semantic directories by sender, topic, or both. This generator produces
//! RFC-822-ish messages that the mail transducer can field-index.

use hac_vfs::{VPath, Vfs, VfsResult};
use rand::Rng;

use crate::words::{rng, Vocabulary};

/// People appearing in generated mail.
pub const SENDERS: &[&str] = &["alice", "bob", "carol", "dave", "erin", "frank"];

/// Topics; each biases the body vocabulary toward its own marker word.
pub const TOPICS: &[&str] = &["fingerprint", "budget", "deadline", "meeting", "release"];

/// Parameters for a mailbox.
#[derive(Debug, Clone)]
pub struct MailboxSpec {
    /// Number of messages.
    pub messages: usize,
    /// Mean body words.
    pub body_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MailboxSpec {
    fn default() -> Self {
        MailboxSpec {
            messages: 60,
            body_words: 40,
            seed: 7,
        }
    }
}

/// One generated message's metadata (for assertions in tests/benches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailMeta {
    /// File path of the message.
    pub path: VPath,
    /// Sender (a member of [`SENDERS`]).
    pub from: String,
    /// Topic (a member of [`TOPICS`]).
    pub topic: String,
}

/// Generates a mailbox of `.eml` files under `root`.
///
/// # Errors
///
/// Propagates VFS errors.
pub fn generate_mailbox(vfs: &Vfs, root: &VPath, spec: &MailboxSpec) -> VfsResult<Vec<MailMeta>> {
    let vocab = Vocabulary::new(2000, 1.0);
    let mut r = rng(spec.seed);
    vfs.mkdir_p(root)?;
    let mut out = Vec::with_capacity(spec.messages);
    for i in 0..spec.messages {
        let from = SENDERS[r.gen_range(0..SENDERS.len())].to_string();
        let to = SENDERS[r.gen_range(0..SENDERS.len())].to_string();
        let topic = TOPICS[r.gen_range(0..TOPICS.len())].to_string();
        let mut body = vocab.sample_text(&mut r, spec.body_words);
        // The topic word appears in the body too, so content queries and
        // field queries can both find the message.
        body.push(' ');
        body.push_str(&topic);
        let msg = format!(
            "From: {from} <{from}@example.org>\r\n\
To: {to} <{to}@example.org>\r\n\
Subject: {topic} update {i}\r\n\
Date: 1999-{:02}-{:02}\r\n\
\r\n\
{body}\r\n",
            (i % 12) + 1,
            (i % 28) + 1,
        );
        let path = root.join(&format!("msg{i:04}.eml"))?;
        vfs.save(&path, msg.as_bytes())?;
        out.push(MailMeta { path, from, topic });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn generates_parseable_mail() {
        let vfs = Vfs::new();
        let metas = generate_mailbox(&vfs, &p("/mail"), &MailboxSpec::default()).unwrap();
        assert_eq!(metas.len(), 60);
        let content = vfs.read_file(&metas[0].path).unwrap();
        let text = String::from_utf8(content.to_vec()).unwrap();
        assert!(text.starts_with("From: "));
        assert!(text.contains("\r\n\r\n"), "has a header/body separator");
        assert!(text.contains(&format!("Subject: {} update", metas[0].topic)));
    }

    #[test]
    fn topics_and_senders_both_occur() {
        let vfs = Vfs::new();
        let metas = generate_mailbox(
            &vfs,
            &p("/mail"),
            &MailboxSpec {
                messages: 120,
                ..Default::default()
            },
        )
        .unwrap();
        let senders: std::collections::HashSet<&str> =
            metas.iter().map(|m| m.from.as_str()).collect();
        let topics: std::collections::HashSet<&str> =
            metas.iter().map(|m| m.topic.as_str()).collect();
        assert!(senders.len() >= 4);
        assert!(topics.len() >= 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let vfs1 = Vfs::new();
        let vfs2 = Vfs::new();
        let m1 = generate_mailbox(&vfs1, &p("/m"), &MailboxSpec::default()).unwrap();
        let m2 = generate_mailbox(&vfs2, &p("/m"), &MailboxSpec::default()).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(
            vfs1.read_file(&m1[5].path).unwrap(),
            vfs2.read_file(&m2[5].path).unwrap()
        );
    }
}
