//! C-like source trees: the Andrew Benchmark input.
//!
//! The Andrew Benchmark's five phases (Makedir, Copy, Scan, Read, Make)
//! operate on a source tree that is then "compiled". This generator builds
//! a deterministic tree of `.c`/`.h` files with includes and function
//! definitions, so the C-source transducer has real structure to extract
//! and the Make phase has real parsing work to chew on.

use hac_vfs::{VPath, Vfs, VfsResult};
use rand::Rng;

use crate::words::{rng, Vocabulary};

/// Parameters of a source tree.
#[derive(Debug, Clone)]
pub struct SourceTreeSpec {
    /// Number of sub-directories (modules).
    pub modules: usize,
    /// C files per module.
    pub files_per_module: usize,
    /// Functions per file.
    pub functions_per_file: usize,
    /// Statements per function.
    pub statements: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SourceTreeSpec {
    fn default() -> Self {
        SourceTreeSpec {
            modules: 8,
            files_per_module: 6,
            functions_per_file: 5,
            statements: 12,
            seed: 11,
        }
    }
}

/// Summary of a generated tree.
#[derive(Debug, Clone)]
pub struct SourceTree {
    /// Root of the tree.
    pub root: VPath,
    /// Every generated file (headers and sources).
    pub files: Vec<VPath>,
    /// Total bytes.
    pub bytes: u64,
}

/// Generates the tree under `root`.
///
/// # Errors
///
/// Propagates VFS errors.
pub fn generate_source_tree(
    vfs: &Vfs,
    root: &VPath,
    spec: &SourceTreeSpec,
) -> VfsResult<SourceTree> {
    let vocab = Vocabulary::new(800, 1.1);
    let mut r = rng(spec.seed);
    vfs.mkdir_p(root)?;
    let mut files = Vec::new();
    let mut bytes = 0u64;
    for m in 0..spec.modules {
        let module = root.join(&format!("mod{m:02}"))?;
        vfs.mkdir_p(&module)?;
        // One header per module.
        let header = module.join(&format!("mod{m:02}.h"))?;
        let hdr_text = format!(
            "#ifndef MOD{m:02}_H\n#define MOD{m:02}_H\nint mod{m:02}_init(void);\n#endif\n"
        );
        bytes += hdr_text.len() as u64;
        vfs.save(&header, hdr_text.as_bytes())?;
        files.push(header);
        for f in 0..spec.files_per_module {
            let mut src = String::new();
            src.push_str("#include <stdio.h>\n");
            src.push_str(&format!("#include \"mod{m:02}.h\"\n\n"));
            for g in 0..spec.functions_per_file {
                let fname = format!("{}_{}", vocab.sample(&mut r), g);
                src.push_str(&format!("int fn_{m:02}_{f}_{fname}(int a, int b) {{\n"));
                for s in 0..spec.statements {
                    let v = vocab.sample(&mut r);
                    let k: u32 = r.gen_range(1..97);
                    src.push_str(&format!("    int {v}_{s} = (a * {k} + b) % 257;\n"));
                    src.push_str(&format!("    a = a + {v}_{s};\n"));
                }
                src.push_str("    return a - b;\n}\n\n");
            }
            let path = module.join(&format!("file{f:02}.c"))?;
            bytes += src.len() as u64;
            vfs.save(&path, src.as_bytes())?;
            files.push(path);
        }
    }
    Ok(SourceTree {
        root: root.clone(),
        files,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn tree_has_expected_shape() {
        let vfs = Vfs::new();
        let spec = SourceTreeSpec::default();
        let tree = generate_source_tree(&vfs, &p("/src"), &spec).unwrap();
        // modules * (files + 1 header)
        assert_eq!(tree.files.len(), spec.modules * (spec.files_per_module + 1));
        assert!(tree.bytes > 10_000);
        let mods = vfs.readdir(&p("/src")).unwrap();
        assert_eq!(mods.len(), spec.modules);
    }

    #[test]
    fn sources_contain_includes_and_functions() {
        let vfs = Vfs::new();
        let tree = generate_source_tree(&vfs, &p("/src"), &SourceTreeSpec::default()).unwrap();
        let c_file = tree
            .files
            .iter()
            .find(|f| f.to_string().ends_with(".c"))
            .unwrap();
        let text = String::from_utf8(vfs.read_file(c_file).unwrap().to_vec()).unwrap();
        assert!(text.contains("#include <stdio.h>"));
        assert!(text.contains("int fn_"));
        assert!(text.contains("return a - b;"));
    }

    #[test]
    fn deterministic() {
        let a = {
            let vfs = Vfs::new();
            let t = generate_source_tree(&vfs, &p("/s"), &SourceTreeSpec::default()).unwrap();
            vfs.read_file(&t.files[3]).unwrap()
        };
        let b = {
            let vfs = Vfs::new();
            let t = generate_source_tree(&vfs, &p("/s"), &SourceTreeSpec::default()).unwrap();
            vfs.read_file(&t.files[3]).unwrap()
        };
        assert_eq!(a, b);
    }
}
