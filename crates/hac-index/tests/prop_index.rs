//! Property tests: the index against a naive scan, and bitmap algebra laws.

use std::collections::HashMap;

use proptest::prelude::*;

use hac_index::bitmap::{Bitmap, DocId};
use hac_index::engine::{Granularity, Index};
use hac_index::expr::ContentExpr;
use hac_index::token::Token;

/// Small closed vocabulary so random docs and queries overlap often.
const VOCAB: &[&str] = &["apple", "banana", "cherry", "kernel", "quark", "zebra"];

fn doc_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB.len(), 0..8)
}

fn expr_strategy() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![
        (0..VOCAB.len()).prop_map(|i| ContentExpr::term(VOCAB[i])),
        Just(ContentExpr::All),
        Just(ContentExpr::Nothing),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and_not(a, b)),
            inner.prop_map(ContentExpr::not),
        ]
    })
}

/// Naive reference evaluation: does this doc match?
fn matches(expr: &ContentExpr, words: &[usize]) -> bool {
    match expr {
        ContentExpr::Term(t) => words.iter().any(|w| VOCAB[*w] == t),
        ContentExpr::All => true,
        ContentExpr::Nothing => false,
        ContentExpr::And(a, b) => matches(a, words) && matches(b, words),
        ContentExpr::Or(a, b) => matches(a, words) || matches(b, words),
        ContentExpr::AndNot(a, b) => matches(a, words) && !matches(b, words),
        ContentExpr::Not(a) => !matches(a, words),
        _ => unreachable!("strategy only generates the variants above"),
    }
}

fn build_corpus(
    docs: &[Vec<usize>],
    granularity: Granularity,
) -> (Index, HashMap<DocId, Vec<Token>>) {
    let mut index = Index::new(granularity);
    let mut provider = HashMap::new();
    for (i, words) in docs.iter().enumerate() {
        let tokens: Vec<Token> = words.iter().map(|w| Token::word(VOCAB[*w])).collect();
        index.add_doc(DocId(i as u64), 1, &tokens);
        provider.insert(DocId(i as u64), tokens);
    }
    (index, provider)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn index_agrees_with_naive_scan(
        docs in proptest::collection::vec(doc_strategy(), 1..24),
        expr in expr_strategy(),
    ) {
        for granularity in [Granularity::Exact, Granularity::Block { docs_per_block: 4 }] {
            let (index, provider) = build_corpus(&docs, granularity);
            let got: Vec<u64> = index
                .eval(&expr, &index.all_docs(), &provider)
                .ids()
                .iter()
                .map(|d| d.0)
                .collect();
            let want: Vec<u64> = docs
                .iter()
                .enumerate()
                .filter(|(_, words)| matches(&expr, words))
                .map(|(i, _)| i as u64)
                .collect();
            prop_assert_eq!(&got, &want, "granularity {:?} expr {}", granularity, expr);
        }
    }

    #[test]
    fn exact_and_block_granularity_agree(
        docs in proptest::collection::vec(doc_strategy(), 1..24),
        expr in expr_strategy(),
    ) {
        let (exact, p1) = build_corpus(&docs, Granularity::Exact);
        let (block, p2) = build_corpus(&docs, Granularity::Block { docs_per_block: 3 });
        let a = exact.eval(&expr, &exact.all_docs(), &p1);
        let b = block.eval(&expr, &block.all_docs(), &p2);
        prop_assert_eq!(a.ids(), b.ids());
    }

    #[test]
    fn updates_and_removals_match_rebuilt_index(
        initial in proptest::collection::vec(doc_strategy(), 1..16),
        updates in proptest::collection::vec((0..16usize, doc_strategy()), 0..8),
        removals in proptest::collection::vec(0..16usize, 0..4),
        expr in expr_strategy(),
    ) {
        let granularity = Granularity::Exact;
        let (mut index, mut provider) = build_corpus(&initial, granularity);
        let mut model: HashMap<u64, Vec<usize>> =
            initial.iter().enumerate().map(|(i, d)| (i as u64, d.clone())).collect();

        for (slot, words) in &updates {
            let id = (*slot % initial.len()) as u64;
            let tokens: Vec<Token> = words.iter().map(|w| Token::word(VOCAB[*w])).collect();
            index.add_doc(DocId(id), 2, &tokens);
            provider.insert(DocId(id), tokens);
            model.insert(id, words.clone());
        }
        for slot in &removals {
            let id = (*slot % initial.len()) as u64;
            index.remove_doc(DocId(id));
            provider.remove(&DocId(id));
            model.remove(&id);
        }

        // Incremental index ≡ fresh rebuild from the surviving docs.
        let mut rebuilt = Index::new(granularity);
        for (id, words) in &model {
            let tokens: Vec<Token> = words.iter().map(|w| Token::word(VOCAB[*w])).collect();
            rebuilt.add_doc(DocId(*id), 2, &tokens);
        }
        let got = index.eval(&expr, &index.all_docs(), &provider);
        let want = rebuilt.eval(&expr, &rebuilt.all_docs(), &provider);
        prop_assert_eq!(got.ids(), want.ids(), "expr {}", expr);
    }

    #[test]
    fn bitmap_algebra_laws(
        xs in proptest::collection::btree_set(0u64..512, 0..64),
        ys in proptest::collection::btree_set(0u64..512, 0..64),
        zs in proptest::collection::btree_set(0u64..512, 0..64),
        dense_a in any::<bool>(),
        dense_b in any::<bool>(),
    ) {
        fn mk(ids: &std::collections::BTreeSet<u64>, dense: bool) -> Bitmap {
            let mut b = if dense { Bitmap::new_dense() } else { Bitmap::new_sparse() };
            for id in ids {
                b.insert(DocId(*id));
            }
            b
        }
        let a = mk(&xs, dense_a);
        let b = mk(&ys, dense_b);
        let c = mk(&zs, true);

        // Commutativity.
        prop_assert_eq!(a.or(&b).ids(), b.or(&a).ids());
        prop_assert_eq!(a.and(&b).ids(), b.and(&a).ids());
        // Associativity.
        prop_assert_eq!(a.or(&b.or(&c)).ids(), a.or(&b).or(&c).ids());
        prop_assert_eq!(a.and(&b.and(&c)).ids(), a.and(&b).and(&c).ids());
        // Distributivity.
        prop_assert_eq!(
            a.and(&b.or(&c)).ids(),
            a.and(&b).or(&a.and(&c)).ids()
        );
        // Difference definition: a \ b = a AND NOT b; disjoint from b.
        let diff = a.and_not(&b);
        prop_assert!(diff.and(&b).is_empty());
        prop_assert_eq!(diff.or(&a.and(&b)).ids(), a.ids());
        // De Morgan within a universe: u \ (a ∪ b) = (u \ a) ∩ (u \ b).
        let u = a.or(&b).or(&c);
        prop_assert_eq!(
            u.and_not(&a.or(&b)).ids(),
            u.and_not(&a).and(&u.and_not(&b)).ids()
        );
        // Count and membership agree with the source set.
        prop_assert_eq!(a.count(), xs.len() as u64);
        for id in &xs {
            prop_assert!(a.contains(DocId(*id)));
        }
    }

    #[test]
    fn dense_sparse_conversion_is_lossless(
        ids in proptest::collection::btree_set(0u64..4096, 0..128),
    ) {
        let dense = Bitmap::from_ids(ids.iter().map(|i| DocId(*i)));
        let sparse = Bitmap::Sparse(dense.clone().into_sparse());
        prop_assert_eq!(dense.ids(), sparse.ids());
        let back = Bitmap::Dense(sparse.into_dense());
        prop_assert_eq!(back.ids(), dense.ids());
    }
}

#[test]
fn empty_universe_always_yields_empty_results() {
    use hac_index::token::Token;
    let mut index = Index::new(Granularity::Exact);
    let tokens = vec![Token::word("alpha")];
    index.add_doc(DocId(0), 1, &tokens);
    let provider: HashMap<DocId, Vec<Token>> = [(DocId(0), tokens)].into_iter().collect();
    let empty = Bitmap::new_dense();
    for expr in [
        ContentExpr::term("alpha"),
        ContentExpr::All,
        ContentExpr::not(ContentExpr::term("alpha")),
        ContentExpr::Prefix("al".into()),
    ] {
        assert!(index.eval(&expr, &empty, &provider).is_empty(), "{expr}");
    }
}

#[test]
fn stop_words_are_unqueryable_end_to_end() {
    use hac_index::token::{tokenize_text, Token};
    let mut index = Index::new(Granularity::Exact);
    let tokens = tokenize_text(b"the cat sat on the mat");
    index.add_doc(DocId(0), 1, &tokens);
    let provider: HashMap<DocId, Vec<Token>> = [(DocId(0), tokens)].into_iter().collect();
    assert!(index
        .eval(&ContentExpr::term("the"), &index.all_docs(), &provider)
        .is_empty());
    assert!(!index
        .eval(&ContentExpr::term("cat"), &index.all_docs(), &provider)
        .is_empty());
}
