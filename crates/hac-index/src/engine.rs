//! The inverted index and query evaluator.
//!
//! Glimpse (the paper's CBA mechanism) is a *two-level* search system: a
//! small index maps each word to the coarse *blocks* of the file system that
//! contain it, and queries are answered by scanning (agrep-ing) only the
//! candidate blocks. [`Granularity::Block`] reproduces that design — term
//! postings address fixed-size groups of documents and candidates are
//! verified against live content via a [`DocProvider`]. [`Granularity::Exact`]
//! is the conventional doc-precise inverted index, kept as an ablation
//! point (Glimpse's `-b` index-size knob occupies the same axis).
//!
//! Consistent with the paper's lazy data-consistency policy (§2.4), the
//! index never reflects content changes instantly: documents are
//! (re)indexed explicitly by `add_doc`/`rebuild`, driven by HAC's `ssync`
//! and periodic reindexing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::approx;
use crate::bitmap::{Bitmap, DenseBitmap, DocId};
use crate::expr::ContentExpr;
use crate::lexicon::{Lexicon, TermId};
use crate::token::Token;

/// Index addressing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Postings address documents directly (classic inverted index).
    Exact,
    /// Postings address fixed-size blocks of documents; query evaluation
    /// verifies candidates against content (Glimpse's design — small index,
    /// search = lookup + scan).
    Block {
        /// Number of documents grouped into one block.
        docs_per_block: u32,
    },
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::Block { docs_per_block: 16 }
    }
}

/// Per-document bookkeeping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DocMeta {
    /// Content version at indexing time (compared by the reindexer).
    pub version: u64,
    /// Owning block (block granularity only; 0 otherwise).
    pub block: u32,
    /// Number of tokens indexed.
    pub token_count: u32,
}

/// Source of live document tokens for candidate verification.
///
/// The paper's Glimpse greps the actual files; our equivalent re-tokenizes
/// the document through whatever transducer owns it. Returning `None` means
/// the content is unavailable (deleted, unreadable) and the candidate is
/// dropped.
pub trait DocProvider {
    /// Tokens of the document's current content.
    fn tokens(&self, doc: DocId) -> Option<Vec<Token>>;
}

impl DocProvider for std::collections::HashMap<DocId, Vec<Token>> {
    fn tokens(&self, doc: DocId) -> Option<Vec<Token>> {
        self.get(&doc).cloned()
    }
}

/// A provider for indexes that never need verification (exact granularity
/// with no updates since the last rebuild). Panics if consulted — use only
/// where verification is statically impossible.
pub struct NoProvider;

impl DocProvider for NoProvider {
    fn tokens(&self, _doc: DocId) -> Option<Vec<Token>> {
        None
    }
}

/// Counters describing the work one query did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Documents considered as candidates before verification.
    pub candidates: u64,
    /// Documents whose content was fetched and re-tokenized.
    pub verified: u64,
    /// Candidates rejected by verification (index false positives).
    pub false_positives: u64,
    /// Posting lists consulted (one per key lookup that found a list).
    pub postings_scanned: u64,
}

/// Space accounting for the index (drives Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Live documents.
    pub docs: u64,
    /// Distinct terms.
    pub terms: u64,
    /// Blocks allocated (block granularity).
    pub blocks: u64,
    /// Bytes in posting bitmaps.
    pub postings_bytes: u64,
    /// Bytes in the lexicon.
    pub lexicon_bytes: u64,
    /// Bytes in the per-document table.
    pub doc_table_bytes: u64,
}

impl IndexStats {
    /// Total resident bytes.
    pub fn total_bytes(&self) -> u64 {
        self.postings_bytes + self.lexicon_bytes + self.doc_table_bytes
    }
}

/// One document's contribution to a reindex pass, produced off-lock by the
/// parallel tokenize phase and applied in bulk by [`Index::apply_delta`].
#[derive(Debug, Clone)]
pub struct DocDelta {
    /// The document.
    pub doc: DocId,
    /// Content version the tokens were extracted from.
    pub version: u64,
    /// The extracted tokens.
    pub tokens: Vec<Token>,
}

/// The content index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    granularity: Granularity,
    lexicon: Lexicon,
    postings: Vec<DenseBitmap>,
    docs: BTreeMap<u64, DocMeta>,
    /// Block → member documents (block granularity only).
    blocks: Vec<Vec<DocId>>,
    /// Live documents (removals are lazy until the next rebuild).
    live: DenseBitmap,
    /// Documents re-added since the last rebuild; exact-granularity postings
    /// may hold stale bits for them, so they are verified at query time.
    dirty: DenseBitmap,
    /// Mutation epoch: bumped on every add/remove/rebuild. Cached query
    /// results keyed by this value are valid exactly while it is unchanged.
    ///
    /// Adding this field changed the persisted layout once: the snapshot
    /// codec is positional, so snapshots written before the field existed
    /// fail to decode. Snapshots now carry a format-version header
    /// (`hac-core`'s `SNAPSHOT_MAGIC`), so any future layout change bumps
    /// that version and old snapshots degrade to a *counted* migration
    /// (one logged full reindex) instead of a silent decode failure.
    generation: u64,
}

impl Default for Index {
    fn default() -> Self {
        Index::new(Granularity::default())
    }
}

impl Index {
    /// Creates an empty index with the given granularity.
    pub fn new(granularity: Granularity) -> Self {
        Index {
            granularity,
            lexicon: Lexicon::new(),
            postings: Vec::new(),
            docs: BTreeMap::new(),
            blocks: Vec::new(),
            live: DenseBitmap::new(),
            dirty: DenseBitmap::new(),
            generation: 0,
        }
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The mutation epoch. Any cached derivation of this index (query
    /// results, scope bitmaps) is valid only while the generation is
    /// unchanged.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live documents.
    pub fn doc_count(&self) -> u64 {
        self.docs.len() as u64
    }

    /// Whether `doc` is currently indexed.
    pub fn is_indexed(&self, doc: DocId) -> bool {
        self.docs.contains_key(&doc.0)
    }

    /// The indexed version of `doc`, if indexed.
    pub fn indexed_version(&self, doc: DocId) -> Option<u64> {
        self.docs.get(&doc.0).map(|m| m.version)
    }

    /// Bitmap of all live documents.
    pub fn all_docs(&self) -> Bitmap {
        Bitmap::Dense(self.live.clone())
    }

    /// (Re)indexes one document's tokens at content `version`.
    ///
    /// Adding an id that is already indexed replaces it: stale postings are
    /// left behind (they only create verifiable false positives) and the
    /// document is marked dirty until the next [`Index::rebuild`].
    pub fn add_doc(&mut self, doc: DocId, version: u64, tokens: &[Token]) {
        let was_present = self.docs.contains_key(&doc.0);
        let block = match self.granularity {
            Granularity::Exact => 0,
            Granularity::Block { docs_per_block } => {
                if let Some(meta) = self.docs.get(&doc.0) {
                    // Re-use the document's block on update.
                    meta.block
                } else {
                    match self.blocks.last() {
                        Some(b) if (b.len() as u32) < docs_per_block => {
                            self.blocks.len() as u32 - 1
                        }
                        _ => {
                            self.blocks.push(Vec::new());
                            self.blocks.len() as u32 - 1
                        }
                    }
                }
            }
        };
        if let (Granularity::Block { .. }, false) = (self.granularity, was_present) {
            self.blocks[block as usize].push(doc);
        }
        let posting_bit = match self.granularity {
            Granularity::Exact => doc,
            Granularity::Block { .. } => DocId(block as u64),
        };
        for token in tokens {
            let term = self.lexicon.intern(&token.key());
            self.posting_slot(term).insert(posting_bit);
        }
        self.docs.insert(
            doc.0,
            DocMeta {
                version,
                block,
                token_count: tokens.len() as u32,
            },
        );
        self.live.insert(doc);
        if was_present {
            self.dirty.insert(doc);
        }
        self.generation += 1;
    }

    /// Removes a document. Postings are cleaned lazily at the next rebuild;
    /// queries exclude it immediately via the live set.
    pub fn remove_doc(&mut self, doc: DocId) {
        if self.docs.remove(&doc.0).is_some() {
            self.live.remove(doc);
            self.dirty.remove(doc);
            self.generation += 1;
        }
    }

    /// Applies one reindex pass's worth of changes in a single call: every
    /// delta is (re)indexed and every removal dropped. This is the short
    /// write-phase of the lock-split `ssync` pipeline — tokenization already
    /// happened off-lock, so the cost here is posting insertion only.
    ///
    /// A delta whose document is already indexed at the same or a newer
    /// version is skipped (a concurrent eager index beat us to it). Returns
    /// the number of deltas actually applied.
    pub fn apply_delta(&mut self, adds: &[DocDelta], removes: &[DocId]) -> u64 {
        let mut applied = 0;
        for delta in adds {
            if self
                .indexed_version(delta.doc)
                .is_some_and(|v| v >= delta.version)
            {
                continue;
            }
            self.add_doc(delta.doc, delta.version, &delta.tokens);
            applied += 1;
        }
        for &doc in removes {
            self.remove_doc(doc);
        }
        applied
    }

    /// Raises the mutation epoch to at least `generation`.
    ///
    /// Used by segment replay (`hac-index`'s [`segment`](crate::segment)
    /// module): a recovered index must resume at the generation recorded
    /// when the segment was sealed, so caches and dirty-tracking built
    /// against the pre-crash index can never alias a recovered state.
    /// Monotonic — a lower value is ignored.
    pub fn force_generation(&mut self, generation: u64) {
        self.generation = self.generation.max(generation);
    }

    /// Rebuilds the index from scratch out of `(doc, version, tokens)`
    /// triples — HAC's periodic full reindex. The generation survives the
    /// rebuild (and bumps), so cached results keyed by it stay invalid.
    pub fn rebuild(&mut self, docs: impl IntoIterator<Item = (DocId, u64, Vec<Token>)>) {
        let generation = self.generation + 1;
        *self = Index::new(self.granularity);
        self.generation = generation;
        for (doc, version, tokens) in docs {
            self.add_doc(doc, version, &tokens);
        }
    }

    fn posting_slot(&mut self, term: TermId) -> &mut DenseBitmap {
        let idx = term.0 as usize;
        if self.postings.len() <= idx {
            self.postings.resize_with(idx + 1, DenseBitmap::new);
        }
        &mut self.postings[idx]
    }

    fn posting(&self, key: &str) -> Option<&DenseBitmap> {
        self.lexicon
            .get(key)
            .and_then(|t| self.postings.get(t.0 as usize))
    }

    // ------------------------------------------------------------------
    // Query evaluation
    // ------------------------------------------------------------------

    /// Evaluates `expr` against the documents in `universe`, using
    /// `provider` to verify candidates where the index is coarse. Returns
    /// the matching subset of `universe`.
    pub fn eval(
        &self,
        expr: &ContentExpr,
        universe: &Bitmap,
        provider: &dyn DocProvider,
    ) -> Bitmap {
        let mut stats = EvalStats::default();
        self.eval_counted(expr, universe, provider, &mut stats)
    }

    /// Like [`Index::eval`], also accumulating work counters. This is the
    /// metered entry point: each call records one query-latency sample and
    /// the posting/candidate work done, while the recursive descent through
    /// boolean sub-expressions goes through the unmetered
    /// [`Index::eval_inner`].
    pub fn eval_counted(
        &self,
        expr: &ContentExpr,
        universe: &Bitmap,
        provider: &dyn DocProvider,
        stats: &mut EvalStats,
    ) -> Bitmap {
        let before = *stats;
        let start = std::time::Instant::now();
        // Only under an active trace: scope evaluation issues many of these.
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("index_eval"));
        let result = self.eval_inner(expr, universe, provider, stats);
        hac_obs::counter("hac_index_evals_total", &[]).inc();
        hac_obs::histogram("hac_index_eval_duration_us", &[])
            .record(start.elapsed().as_micros() as u64);
        hac_obs::counter("hac_index_postings_scanned_total", &[])
            .add(stats.postings_scanned - before.postings_scanned);
        hac_obs::counter("hac_index_candidates_total", &[])
            .add(stats.candidates - before.candidates);
        hac_obs::histogram("hac_index_results", &[]).record(result.count());
        result
    }

    fn eval_inner(
        &self,
        expr: &ContentExpr,
        universe: &Bitmap,
        provider: &dyn DocProvider,
        stats: &mut EvalStats,
    ) -> Bitmap {
        match expr {
            ContentExpr::All => universe.and(&Bitmap::Dense(self.live.clone())),
            ContentExpr::Nothing => Bitmap::new_dense(),
            ContentExpr::Term(t) => self.eval_key(t, universe, provider, stats),
            ContentExpr::Field(n, v) => {
                self.eval_key(&Token::field_key(n, v), universe, provider, stats)
            }
            ContentExpr::Phrase(words) => self.eval_phrase(words, universe, provider, stats),
            ContentExpr::Approx(pat, k) => {
                let pat = pat.to_ascii_lowercase();
                let matched: Vec<String> =
                    approx::expand(&pat, *k, self.lexicon.iter().map(|(_, key)| key))
                        .map(str::to_string)
                        .collect();
                let mut acc = Bitmap::new_dense();
                for key in matched {
                    acc = acc.or(&self.eval_key(&key, universe, provider, stats));
                }
                acc
            }
            ContentExpr::Prefix(prefix) => {
                let prefix = prefix.to_ascii_lowercase();
                let matched: Vec<String> = self
                    .lexicon
                    .iter()
                    .map(|(_, key)| key)
                    .filter(|key| !key.contains('\u{1f}') && key.starts_with(&prefix))
                    .map(str::to_string)
                    .collect();
                let mut acc = Bitmap::new_dense();
                for key in matched {
                    acc = acc.or(&self.eval_key(&key, universe, provider, stats));
                }
                acc
            }
            ContentExpr::And(a, b) => {
                let left = self.eval_inner(a, universe, provider, stats);
                // Narrow the right side's universe: cheaper verification.
                self.eval_inner(b, &left, provider, stats)
            }
            ContentExpr::Or(a, b) => self
                .eval_inner(a, universe, provider, stats)
                .or(&self.eval_inner(b, universe, provider, stats)),
            ContentExpr::AndNot(a, b) => {
                let left = self.eval_inner(a, universe, provider, stats);
                let right = self.eval_inner(b, &left, provider, stats);
                left.and_not(&right)
            }
            ContentExpr::Not(a) => {
                let u = universe.and(&Bitmap::Dense(self.live.clone()));
                u.and_not(&self.eval_inner(a, &u, provider, stats))
            }
        }
    }

    fn eval_key(
        &self,
        key: &str,
        universe: &Bitmap,
        provider: &dyn DocProvider,
        stats: &mut EvalStats,
    ) -> Bitmap {
        let Some(post) = self.posting(key) else {
            return Bitmap::new_dense();
        };
        stats.postings_scanned += 1;
        match self.granularity {
            Granularity::Exact => {
                let mut hits = post.clone();
                hits.intersect_with(&self.live);
                let hits = Bitmap::Dense(hits).and(universe);
                stats.candidates += hits.count();
                // Docs re-added since the last rebuild may carry stale
                // postings: verify just those.
                let mut out = Bitmap::new_dense();
                for doc in hits.ids() {
                    if self.dirty.contains(doc) {
                        stats.verified += 1;
                        if doc_has_key(provider, doc, key) {
                            out.insert(doc);
                        } else {
                            stats.false_positives += 1;
                        }
                    } else {
                        out.insert(doc);
                    }
                }
                out
            }
            Granularity::Block { .. } => {
                let mut out = Bitmap::new_dense();
                for block in post.iter() {
                    let Some(members) = self.blocks.get(block.0 as usize) else {
                        continue;
                    };
                    for &doc in members {
                        if !self.live.contains(doc) || !universe.contains(doc) {
                            continue;
                        }
                        stats.candidates += 1;
                        stats.verified += 1;
                        if doc_has_key(provider, doc, key) {
                            out.insert(doc);
                        } else {
                            stats.false_positives += 1;
                        }
                    }
                }
                out
            }
        }
    }

    fn eval_phrase(
        &self,
        words: &[String],
        universe: &Bitmap,
        provider: &dyn DocProvider,
        stats: &mut EvalStats,
    ) -> Bitmap {
        if words.is_empty() {
            return Bitmap::new_dense();
        }
        // Conjunction of the member words narrows the candidates…
        let mut cand = universe.clone();
        for w in words {
            cand = self.eval_key(&w.to_ascii_lowercase(), &cand, provider, stats);
        }
        // …then adjacency is verified against live content.
        let needle: Vec<String> = words.iter().map(|w| w.to_ascii_lowercase()).collect();
        let mut out = Bitmap::new_dense();
        for doc in cand.ids() {
            stats.verified += 1;
            let Some(tokens) = provider.tokens(doc) else {
                stats.false_positives += 1;
                continue;
            };
            let seq: Vec<&str> = tokens.iter().filter_map(Token::as_word).collect();
            if seq
                .windows(needle.len())
                .any(|w| w.iter().zip(needle.iter()).all(|(a, b)| *a == b))
            {
                out.insert(doc);
            } else {
                stats.false_positives += 1;
            }
        }
        out
    }

    /// Space accounting.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            docs: self.docs.len() as u64,
            terms: self.lexicon.len() as u64,
            blocks: self.blocks.len() as u64,
            postings_bytes: self.postings.iter().map(DenseBitmap::bytes).sum(),
            lexicon_bytes: self.lexicon.bytes(),
            doc_table_bytes: (self.docs.len() * (8 + std::mem::size_of::<DocMeta>())) as u64
                + self.blocks.iter().map(|b| b.len() as u64 * 8).sum::<u64>(),
        }
    }
}

fn doc_has_key(provider: &dyn DocProvider, doc: DocId, key: &str) -> bool {
    provider
        .tokens(doc)
        .is_some_and(|tokens| tokens.iter().any(|t| t.key() == key))
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::token::tokenize_text;

    type Corpus = HashMap<DocId, Vec<Token>>;

    fn build(granularity: Granularity, docs: &[(u64, &str)]) -> (Index, Corpus) {
        let mut index = Index::new(granularity);
        let mut corpus: Corpus = HashMap::new();
        for (id, text) in docs {
            let tokens = tokenize_text(text.as_bytes());
            index.add_doc(DocId(*id), 1, &tokens);
            corpus.insert(DocId(*id), tokens);
        }
        (index, corpus)
    }

    fn both() -> Vec<Granularity> {
        vec![Granularity::Exact, Granularity::Block { docs_per_block: 2 }]
    }

    const DOCS: &[(u64, &str)] = &[
        (0, "fingerprint matching algorithm"),
        (1, "email about the fingerprint project deadline"),
        (2, "grocery list milk eggs"),
        (3, "matching socks and gloves"),
        (4, "fingerprint database schema email"),
    ];

    fn ids(b: &Bitmap) -> Vec<u64> {
        b.ids().iter().map(|d| d.0).collect()
    }

    #[test]
    fn term_queries_match_both_granularities() {
        for g in both() {
            let (index, corpus) = build(g, DOCS);
            let u = index.all_docs();
            let hits = index.eval(&ContentExpr::term("fingerprint"), &u, &corpus);
            assert_eq!(ids(&hits), vec![0, 1, 4], "granularity {g:?}");
        }
    }

    #[test]
    fn boolean_combinations() {
        for g in both() {
            let (index, corpus) = build(g, DOCS);
            let u = index.all_docs();
            let and = index.eval(
                &ContentExpr::and(ContentExpr::term("fingerprint"), ContentExpr::term("email")),
                &u,
                &corpus,
            );
            assert_eq!(ids(&and), vec![1, 4]);
            let or = index.eval(
                &ContentExpr::or(ContentExpr::term("milk"), ContentExpr::term("socks")),
                &u,
                &corpus,
            );
            assert_eq!(ids(&or), vec![2, 3]);
            let andnot = index.eval(
                &ContentExpr::and_not(ContentExpr::term("fingerprint"), ContentExpr::term("email")),
                &u,
                &corpus,
            );
            assert_eq!(ids(&andnot), vec![0]);
            let not = index.eval(
                &ContentExpr::not(ContentExpr::term("fingerprint")),
                &u,
                &corpus,
            );
            assert_eq!(ids(&not), vec![2, 3]);
        }
    }

    #[test]
    fn universe_restricts_results() {
        for g in both() {
            let (index, corpus) = build(g, DOCS);
            let u = Bitmap::from_ids([DocId(0), DocId(2)]);
            let hits = index.eval(&ContentExpr::term("fingerprint"), &u, &corpus);
            assert_eq!(ids(&hits), vec![0]);
            let all = index.eval(&ContentExpr::All, &u, &corpus);
            assert_eq!(ids(&all), vec![0, 2]);
        }
    }

    #[test]
    fn phrase_requires_adjacency() {
        for g in both() {
            let (index, corpus) = build(g, DOCS);
            let u = index.all_docs();
            let hit = index.eval(
                &ContentExpr::Phrase(vec!["fingerprint".into(), "matching".into()]),
                &u,
                &corpus,
            );
            assert_eq!(ids(&hit), vec![0]);
            // Words present but not adjacent.
            let miss = index.eval(
                &ContentExpr::Phrase(vec!["fingerprint".into(), "deadline".into()]),
                &u,
                &corpus,
            );
            assert!(miss.is_empty());
        }
    }

    #[test]
    fn approx_matches_near_terms() {
        for g in both() {
            let (index, corpus) = build(g, DOCS);
            let u = index.all_docs();
            let hits = index.eval(&ContentExpr::Approx("fingerprnt".into(), 1), &u, &corpus);
            assert_eq!(ids(&hits), vec![0, 1, 4]);
            let none = index.eval(&ContentExpr::Approx("zzzzzz".into(), 1), &u, &corpus);
            assert!(none.is_empty());
        }
    }

    #[test]
    fn field_tokens_query_independently_of_words() {
        for g in both() {
            let mut index = Index::new(g);
            let mut corpus: Corpus = HashMap::new();
            let tokens = vec![Token::field("from", "alice"), Token::word("bob")];
            index.add_doc(DocId(7), 1, &tokens);
            corpus.insert(DocId(7), tokens);
            let u = index.all_docs();
            assert_eq!(
                ids(&index.eval(&ContentExpr::field("from", "alice"), &u, &corpus)),
                vec![7]
            );
            // The field value does not leak into word queries.
            assert!(index
                .eval(&ContentExpr::term("alice"), &u, &corpus)
                .is_empty());
            assert!(index
                .eval(&ContentExpr::field("from", "bob"), &u, &corpus)
                .is_empty());
        }
    }

    #[test]
    fn removal_takes_effect_immediately() {
        for g in both() {
            let (mut index, corpus) = build(g, DOCS);
            index.remove_doc(DocId(1));
            let u = index.all_docs();
            let hits = index.eval(&ContentExpr::term("fingerprint"), &u, &corpus);
            assert_eq!(ids(&hits), vec![0, 4]);
            assert_eq!(index.doc_count(), 4);
        }
    }

    #[test]
    fn update_drops_stale_terms_and_adds_new_ones() {
        for g in both() {
            let (mut index, mut corpus) = build(g, DOCS);
            // Doc 2 changes from groceries to kernels.
            let new_tokens = tokenize_text(b"kernel hacking notes");
            index.add_doc(DocId(2), 2, &new_tokens);
            corpus.insert(DocId(2), new_tokens);
            let u = index.all_docs();
            assert!(index
                .eval(&ContentExpr::term("milk"), &u, &corpus)
                .is_empty());
            assert_eq!(
                ids(&index.eval(&ContentExpr::term("kernel"), &u, &corpus)),
                vec![2]
            );
            assert_eq!(index.indexed_version(DocId(2)), Some(2));
        }
    }

    #[test]
    fn rebuild_compacts_and_preserves_results() {
        for g in both() {
            let (mut index, mut corpus) = build(g, DOCS);
            index.remove_doc(DocId(3));
            let new_tokens = tokenize_text(b"kernel notes");
            index.add_doc(DocId(2), 2, &new_tokens);
            corpus.insert(DocId(2), new_tokens.clone());

            let before: Vec<u64> = ids(&index.eval(
                &ContentExpr::term("fingerprint"),
                &index.all_docs(),
                &corpus,
            ));
            index.rebuild(
                corpus
                    .iter()
                    .filter(|(d, _)| d.0 != 3)
                    .map(|(d, t)| (*d, 2, t.clone())),
            );
            let after: Vec<u64> = ids(&index.eval(
                &ContentExpr::term("fingerprint"),
                &index.all_docs(),
                &corpus,
            ));
            assert_eq!(before, after);
            // Rebuild clears stale postings: "milk" no longer even a candidate.
            let mut stats = EvalStats::default();
            let r = index.eval_counted(
                &ContentExpr::term("milk"),
                &index.all_docs(),
                &corpus,
                &mut stats,
            );
            assert!(r.is_empty());
            assert_eq!(stats.false_positives, 0, "granularity {g:?}");
        }
    }

    #[test]
    fn block_granularity_has_smaller_postings() {
        let mut docs: Vec<(u64, String)> = Vec::new();
        for i in 0..256u64 {
            docs.push((i, format!("document number word{} payload common", i % 37)));
        }
        let borrowed: Vec<(u64, &str)> = docs.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let (exact, _) = build(Granularity::Exact, &borrowed);
        let (block, _) = build(Granularity::Block { docs_per_block: 16 }, &borrowed);
        assert!(
            block.stats().postings_bytes < exact.stats().postings_bytes,
            "block postings {} should be smaller than exact {}",
            block.stats().postings_bytes,
            exact.stats().postings_bytes
        );
    }

    #[test]
    fn eval_stats_count_verification_work() {
        let (index, corpus) = build(Granularity::Block { docs_per_block: 2 }, DOCS);
        let mut stats = EvalStats::default();
        index.eval_counted(
            &ContentExpr::term("fingerprint"),
            &index.all_docs(),
            &corpus,
            &mut stats,
        );
        assert!(stats.candidates >= 3);
        assert_eq!(stats.verified, stats.candidates);
        // Doc 1 shares a block with doc 0 → at least one false positive is
        // possible but not guaranteed; just check consistency.
        assert!(stats.false_positives <= stats.verified);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut index = Index::new(Granularity::Exact);
        assert_eq!(index.generation(), 0);
        index.add_doc(DocId(1), 1, &tokenize_text(b"alpha"));
        let g1 = index.generation();
        assert!(g1 > 0);
        // Removing an absent doc is a no-op: generation unchanged.
        index.remove_doc(DocId(99));
        assert_eq!(index.generation(), g1);
        index.remove_doc(DocId(1));
        assert!(index.generation() > g1);
        // Rebuild keeps the epoch monotonic.
        let before = index.generation();
        index.rebuild([(DocId(2), 1, tokenize_text(b"beta"))]);
        assert!(index.generation() > before);
    }

    #[test]
    fn apply_delta_adds_removes_and_skips_stale() {
        for g in both() {
            let (mut index, corpus) = build(g, DOCS);
            let gen0 = index.generation();
            let applied = index.apply_delta(
                &[
                    // Stale: doc 0 is already at version 1.
                    DocDelta {
                        doc: DocId(0),
                        version: 1,
                        tokens: tokenize_text(b"should not land"),
                    },
                    // Fresh update.
                    DocDelta {
                        doc: DocId(2),
                        version: 2,
                        tokens: tokenize_text(b"kernel hacking"),
                    },
                    // Brand new doc.
                    DocDelta {
                        doc: DocId(9),
                        version: 1,
                        tokens: tokenize_text(b"fingerprint appendix"),
                    },
                ],
                &[DocId(3)],
            );
            assert_eq!(applied, 2);
            assert!(index.generation() > gen0);
            assert!(!index.is_indexed(DocId(3)));
            assert_eq!(index.indexed_version(DocId(2)), Some(2));
            let mut corpus = corpus.clone();
            corpus.insert(DocId(2), tokenize_text(b"kernel hacking"));
            corpus.insert(DocId(9), tokenize_text(b"fingerprint appendix"));
            let hits = index.eval(
                &ContentExpr::term("fingerprint"),
                &index.all_docs(),
                &corpus,
            );
            assert_eq!(ids(&hits), vec![0, 1, 4, 9], "granularity {g:?}");
        }
    }

    #[test]
    fn missing_content_fails_verification() {
        let (index, mut corpus) = build(Granularity::Block { docs_per_block: 2 }, DOCS);
        corpus.remove(&DocId(0));
        let hits = index.eval(&ContentExpr::term("algorithm"), &index.all_docs(), &corpus);
        assert!(hits.is_empty());
    }
}

#[cfg(test)]
mod prefix_tests {
    use std::collections::HashMap;

    use super::*;
    use crate::token::tokenize_text;

    #[test]
    fn prefix_matches_across_granularities() {
        for g in [Granularity::Exact, Granularity::Block { docs_per_block: 2 }] {
            let mut index = Index::new(g);
            let mut corpus: HashMap<DocId, Vec<Token>> = HashMap::new();
            for (i, text) in [
                "fingerprint scan",
                "fingering charts",
                "final countdown",
                "unrelated",
            ]
            .iter()
            .enumerate()
            {
                let tokens = tokenize_text(text.as_bytes());
                index.add_doc(DocId(i as u64), 1, &tokens);
                corpus.insert(DocId(i as u64), tokens);
            }
            let hits = index.eval(
                &ContentExpr::Prefix("finger".into()),
                &index.all_docs(),
                &corpus,
            );
            let ids: Vec<u64> = hits.ids().iter().map(|d| d.0).collect();
            assert_eq!(ids, vec![0, 1], "granularity {g:?}");
            // Prefixes never match field tokens.
            let mut index2 = Index::new(g);
            index2.add_doc(DocId(9), 1, &[Token::field("fingerer", "x")]);
            let empty = index2.eval(
                &ContentExpr::Prefix("finger".into()),
                &index2.all_docs(),
                &corpus,
            );
            assert!(empty.is_empty());
        }
    }
}
