//! Term dictionary.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Dense identifier of a term in the lexicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

/// Bidirectional term ↔ id dictionary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    by_key: HashMap<String, TermId>,
    by_id: Vec<String>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `key`, interning it if new.
    pub fn intern(&mut self, key: &str) -> TermId {
        if let Some(id) = self.by_key.get(key) {
            return *id;
        }
        let id = TermId(self.by_id.len() as u32);
        self.by_id.push(key.to_string());
        self.by_key.insert(key.to_string(), id);
        id
    }

    /// Looks up an existing term without interning.
    pub fn get(&self, key: &str) -> Option<TermId> {
        self.by_key.get(key).copied()
    }

    /// The key of a term id.
    pub fn key_of(&self, id: TermId) -> Option<&str> {
        self.by_id.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, k)| (TermId(i as u32), k.as_str()))
    }

    /// Approximate resident bytes (for the Table 3 space accounting).
    pub fn bytes(&self) -> u64 {
        self.by_id.iter().map(|k| 2 * k.len() as u64 + 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut lex = Lexicon::new();
        let a = lex.intern("alpha");
        let b = lex.intern("beta");
        assert_ne!(a, b);
        assert_eq!(lex.intern("alpha"), a);
        assert_eq!(lex.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut lex = Lexicon::new();
        let id = lex.intern("gamma");
        assert_eq!(lex.get("gamma"), Some(id));
        assert_eq!(lex.get("nope"), None);
        assert_eq!(lex.key_of(id), Some("gamma"));
        assert_eq!(lex.key_of(TermId(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut lex = Lexicon::new();
        lex.intern("one");
        lex.intern("two");
        let keys: Vec<&str> = lex.iter().map(|(_, k)| k).collect();
        assert_eq!(keys, vec!["one", "two"]);
    }
}
