//! Attribute transducers.
//!
//! The MIT Semantic File System (which the paper builds on conceptually)
//! extracts typed attribute/value pairs from files with *transducers*. HAC
//! inherits the idea for its indexing pass: a transducer turns a file's
//! bytes into the token stream the index stores. The registry picks a
//! transducer per file by name/extension, defaulting to plain text.

use crate::token::{tokenize_text, Token};

/// Converts file content into indexable tokens.
pub trait Transducer: Send + Sync {
    /// A short identifier for diagnostics.
    fn name(&self) -> &'static str;

    /// Whether this transducer wants files with the given name.
    fn matches(&self, file_name: &str) -> bool;

    /// Extracts tokens from content.
    fn extract(&self, file_name: &str, content: &[u8]) -> Vec<Token>;
}

/// Plain text: every word, no fields. The fallback for unknown types.
#[derive(Debug, Default)]
pub struct PlainText;

impl Transducer for PlainText {
    fn name(&self) -> &'static str {
        "text"
    }

    fn matches(&self, _file_name: &str) -> bool {
        true
    }

    fn extract(&self, _file_name: &str, content: &[u8]) -> Vec<Token> {
        tokenize_text(content)
    }
}

/// RFC-822-ish mail: header lines become field tokens (`from:`, `to:`,
/// `subject:`, `date:`), the body is tokenized as text. Subject words are
/// additionally indexed as plain words — that is how the paper's email
/// examples ("email messages from a certain user or about a certain topic")
/// become queryable both ways.
#[derive(Debug, Default)]
pub struct MailTransducer;

/// Header names [`MailTransducer`] turns into fields.
pub const MAIL_HEADERS: &[&str] = &["from", "to", "cc", "subject", "date"];

impl Transducer for MailTransducer {
    fn name(&self) -> &'static str {
        "mail"
    }

    fn matches(&self, file_name: &str) -> bool {
        file_name.ends_with(".eml") || file_name.ends_with(".mail")
    }

    fn extract(&self, _file_name: &str, content: &[u8]) -> Vec<Token> {
        let text = String::from_utf8_lossy(content);
        let mut tokens = Vec::new();
        let mut body_start = 0;
        for (offset, line) in split_lines(&text) {
            if line.is_empty() {
                body_start = offset + 1;
                break;
            }
            body_start = offset + line.len() + 1;
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                if MAIL_HEADERS.contains(&name.as_str()) {
                    let value = value.trim();
                    // Address-ish headers index each word of the value as a
                    // separate field token so `from:alice` matches
                    // "Alice Liddell <alice@example.org>".
                    for word in tokenize_text(value.as_bytes()) {
                        if let Token::Word(w) = word {
                            tokens.push(Token::field(&name, &w));
                        }
                    }
                    if name == "subject" {
                        tokens.extend(tokenize_text(value.as_bytes()));
                    }
                }
            }
        }
        let body = &text[body_start.min(text.len())..];
        tokens.extend(tokenize_text(body.as_bytes()));
        tokens
    }
}

fn split_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut offset = 0;
    text.split('\n').map(move |line| {
        let start = offset;
        offset += line.len() + 1;
        (start, line.trim_end_matches('\r'))
    })
}

/// C-like source: `#include` targets and defined function names become
/// fields; everything is also indexed as words (identifiers matter).
#[derive(Debug, Default)]
pub struct CSourceTransducer;

impl Transducer for CSourceTransducer {
    fn name(&self) -> &'static str {
        "csource"
    }

    fn matches(&self, file_name: &str) -> bool {
        file_name.ends_with(".c") || file_name.ends_with(".h")
    }

    fn extract(&self, _file_name: &str, content: &[u8]) -> Vec<Token> {
        let text = String::from_utf8_lossy(content);
        let mut tokens = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("#include") {
                let target: String = rest
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
                    .collect();
                if !target.is_empty() {
                    tokens.push(Token::field("include", &target));
                }
            }
            // A crude function-definition heuristic: `name(` at the start of
            // a line that is not a control keyword.
            if let Some(paren) = trimmed.find('(') {
                let head = &trimmed[..paren];
                if let Some(ident) = head.split_whitespace().last() {
                    let ident: String = ident
                        .chars()
                        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !ident.is_empty()
                        && !["if", "while", "for", "switch", "return", "sizeof"]
                            .contains(&ident.as_str())
                        && trimmed.ends_with('{')
                    {
                        tokens.push(Token::field("func", &ident));
                    }
                }
            }
        }
        tokens.extend(tokenize_text(content));
        tokens
    }
}

/// Picks the first matching transducer for each file.
pub struct TransducerRegistry {
    transducers: Vec<Box<dyn Transducer>>,
    fallback: PlainText,
}

impl Default for TransducerRegistry {
    fn default() -> Self {
        TransducerRegistry {
            transducers: vec![Box::new(MailTransducer), Box::new(CSourceTransducer)],
            fallback: PlainText,
        }
    }
}

impl TransducerRegistry {
    /// The default registry: mail + C source + plain-text fallback.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry (plain text only).
    pub fn plain_only() -> Self {
        TransducerRegistry {
            transducers: Vec::new(),
            fallback: PlainText,
        }
    }

    /// Registers a user-defined transducer ahead of the built-ins — the
    /// paper's SFS lineage "allows users to define their own transducers".
    pub fn register(&mut self, t: Box<dyn Transducer>) {
        self.transducers.insert(0, t);
    }

    /// Extracts tokens for a file, choosing a transducer by name.
    pub fn extract(&self, file_name: &str, content: &[u8]) -> Vec<Token> {
        for t in &self.transducers {
            if t.matches(file_name) {
                return t.extract(file_name, content);
            }
        }
        self.fallback.extract(file_name, content)
    }

    /// The transducer name that would handle `file_name` (diagnostics).
    pub fn route(&self, file_name: &str) -> &'static str {
        for t in &self.transducers {
            if t.matches(file_name) {
                return t.name();
            }
        }
        self.fallback.name()
    }
}

impl std::fmt::Debug for TransducerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.transducers.iter().map(|t| t.name()).collect();
        f.debug_struct("TransducerRegistry")
            .field("transducers", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIL: &[u8] = b"From: Alice Liddell <alice@example.org>\n\
To: bob@example.org\n\
Subject: Fingerprint project status\n\
Date: 1999-02-03\n\
\n\
The minutiae extraction pipeline is done.\n";

    #[test]
    fn mail_headers_become_fields() {
        let tokens = MailTransducer.extract("m.eml", MAIL);
        assert!(tokens.contains(&Token::field("from", "alice")));
        assert!(tokens.contains(&Token::field("to", "bob")));
        assert!(tokens.contains(&Token::field("subject", "fingerprint")));
        // Subject words are also plain words.
        assert!(tokens.contains(&Token::word("fingerprint")));
        // Body words are indexed.
        assert!(tokens.contains(&Token::word("minutiae")));
        // Header words other than subject do NOT leak into plain words.
        assert!(!tokens.contains(&Token::word("liddell")));
    }

    #[test]
    fn mail_without_body_separator_is_all_headers() {
        let tokens = MailTransducer.extract("m.eml", b"From: carol@x.org\nSubject: hi there");
        assert!(tokens.contains(&Token::field("from", "carol")));
        assert!(tokens.contains(&Token::field("subject", "hi")));
    }

    #[test]
    fn csource_extracts_includes_and_functions() {
        let src = b"#include <stdio.h>\n#include \"match.h\"\n\nint match_minutiae(int a) {\n  return a;\n}\n";
        let tokens = CSourceTransducer.extract("match.c", src);
        assert!(tokens.contains(&Token::field("include", "stdio.h")));
        assert!(tokens.contains(&Token::field("include", "match.h")));
        assert!(tokens.contains(&Token::field("func", "match_minutiae")));
        assert!(tokens.contains(&Token::word("match_minutiae")));
        // Control keywords are not functions.
        assert!(!tokens.contains(&Token::field("func", "return")));
    }

    #[test]
    fn registry_routes_by_extension() {
        let reg = TransducerRegistry::new();
        assert_eq!(reg.route("a.eml"), "mail");
        assert_eq!(reg.route("a.c"), "csource");
        assert_eq!(reg.route("a.txt"), "text");
        assert_eq!(reg.route("README"), "text");
    }

    #[test]
    fn custom_transducer_takes_precedence() {
        struct Custom;
        impl Transducer for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn matches(&self, f: &str) -> bool {
                f.ends_with(".eml")
            }
            fn extract(&self, _f: &str, _c: &[u8]) -> Vec<Token> {
                vec![Token::word("custom")]
            }
        }
        let mut reg = TransducerRegistry::new();
        reg.register(Box::new(Custom));
        assert_eq!(reg.route("a.eml"), "custom");
        assert_eq!(reg.extract("a.eml", MAIL), vec![Token::word("custom")]);
    }
}
