//! Content query expressions.
//!
//! `ContentExpr` is the boolean query language the CBA engine evaluates —
//! the role Glimpse's search expressions play in the paper. The full HAC
//! query language (`hac-query`) additionally has directory references; it
//! lowers its content parts into this type.

use serde::{Deserialize, Serialize};

/// A boolean query over indexed content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentExpr {
    /// Matches documents containing the word.
    Term(String),
    /// Matches documents carrying the attribute `name`=`value` (emitted by a
    /// transducer).
    Field(String, String),
    /// Matches documents containing the words consecutively.
    Phrase(Vec<String>),
    /// Matches documents containing any word within the given edit distance
    /// of the pattern (Glimpse's approximate matching).
    Approx(String, u8),
    /// Matches documents containing any word with this prefix (`finger*`),
    /// a practical subset of Glimpse's regular-expression patterns.
    Prefix(String),
    /// Conjunction.
    And(Box<ContentExpr>, Box<ContentExpr>),
    /// Disjunction.
    Or(Box<ContentExpr>, Box<ContentExpr>),
    /// `lhs AND NOT rhs`.
    AndNot(Box<ContentExpr>, Box<ContentExpr>),
    /// Complement within the evaluation universe.
    Not(Box<ContentExpr>),
    /// Matches every document in the universe.
    All,
    /// Matches nothing.
    Nothing,
}

impl ContentExpr {
    /// `a AND b` without manual boxing.
    pub fn and(a: ContentExpr, b: ContentExpr) -> ContentExpr {
        ContentExpr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b` without manual boxing.
    pub fn or(a: ContentExpr, b: ContentExpr) -> ContentExpr {
        ContentExpr::Or(Box::new(a), Box::new(b))
    }

    /// `a AND NOT b` without manual boxing.
    pub fn and_not(a: ContentExpr, b: ContentExpr) -> ContentExpr {
        ContentExpr::AndNot(Box::new(a), Box::new(b))
    }

    /// `NOT a` without manual boxing.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: ContentExpr) -> ContentExpr {
        ContentExpr::Not(Box::new(a))
    }

    /// A case-folded term.
    pub fn term(w: &str) -> ContentExpr {
        ContentExpr::Term(w.to_ascii_lowercase())
    }

    /// A case-folded field match.
    pub fn field(name: &str, value: &str) -> ContentExpr {
        ContentExpr::Field(name.to_ascii_lowercase(), value.to_ascii_lowercase())
    }

    /// Collects every plain term mentioned anywhere in the expression.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ContentExpr::Term(t) = e {
                out.push(t.as_str());
            }
        });
        out
    }

    /// Depth of the expression tree (diagnostics, fuzz shrink metric).
    pub fn depth(&self) -> usize {
        match self {
            ContentExpr::And(a, b) | ContentExpr::Or(a, b) | ContentExpr::AndNot(a, b) => {
                1 + a.depth().max(b.depth())
            }
            ContentExpr::Not(a) => 1 + a.depth(),
            _ => 1,
        }
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a ContentExpr)) {
        f(self);
        match self {
            ContentExpr::And(a, b) | ContentExpr::Or(a, b) | ContentExpr::AndNot(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ContentExpr::Not(a) => a.walk(f),
            _ => {}
        }
    }
}

impl std::fmt::Display for ContentExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentExpr::Term(t) => write!(f, "{t}"),
            ContentExpr::Field(n, v) => write!(f, "{n}:{v}"),
            ContentExpr::Phrase(ws) => write!(f, "\"{}\"", ws.join(" ")),
            ContentExpr::Approx(t, k) => write!(f, "~{k}:{t}"),
            ContentExpr::Prefix(t) => write!(f, "{t}*"),
            ContentExpr::And(a, b) => write!(f, "({a} AND {b})"),
            ContentExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            ContentExpr::AndNot(a, b) => write!(f, "({a} AND NOT {b})"),
            ContentExpr::Not(a) => write!(f, "(NOT {a})"),
            ContentExpr::All => write!(f, "*"),
            ContentExpr::Nothing => write!(f, "∅"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fold_case() {
        assert_eq!(
            ContentExpr::term("FiNgEr"),
            ContentExpr::Term("finger".into())
        );
        assert_eq!(
            ContentExpr::field("From", "Alice"),
            ContentExpr::Field("from".into(), "alice".into())
        );
    }

    #[test]
    fn display_is_parenthesized() {
        let e = ContentExpr::and_not(
            ContentExpr::term("fingerprint"),
            ContentExpr::term("murder"),
        );
        assert_eq!(e.to_string(), "(fingerprint AND NOT murder)");
    }

    #[test]
    fn terms_collects_all_leaves() {
        let e = ContentExpr::or(
            ContentExpr::and(ContentExpr::term("a1"), ContentExpr::term("b2")),
            ContentExpr::not(ContentExpr::term("c3")),
        );
        assert_eq!(e.terms(), vec!["a1", "b2", "c3"]);
        assert_eq!(e.depth(), 3);
    }
}
