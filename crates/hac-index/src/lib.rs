//! # hac-index — Glimpse-like content-based access engine
//!
//! The CBA (content-based access) mechanism of the HAC reproduction,
//! standing in for Glimpse in *Integrating Content-Based Access Mechanisms
//! with Hierarchical File Systems* (Gopal & Manber, OSDI '99):
//!
//! * [`token`] / [`transducer`] — tokenization and SFS-style attribute
//!   extraction (mail headers, C source, plain text);
//! * [`lexicon`] / [`engine`] — a two-level, block-addressed inverted index
//!   in Glimpse's design (small index + candidate verification), with an
//!   exact-granularity mode as an ablation point;
//! * [`bitmap`] — the paper's `N/8`-byte dense result bitmaps plus the
//!   sparse representation the paper lists as future work;
//! * [`expr`] — the boolean content-query language (AND / OR / AND NOT /
//!   NOT, phrases, fields, agrep-style approximate terms);
//! * [`approx`] — banded edit-distance matching.
//!
//! The index is deliberately *lazy* about content changes: documents enter
//! and leave only through explicit `add_doc` / `remove_doc` / `rebuild`
//! calls, because the paper's data-consistency policy (§2.4) reconciles
//! content at reindex time, not instantly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod bitmap;
pub mod engine;
pub mod expr;
pub mod lexicon;
pub mod segment;
pub mod token;
pub mod transducer;

pub use bitmap::{Bitmap, DenseBitmap, DocId, SparseBitmap};
pub use engine::{DocDelta, DocProvider, EvalStats, Granularity, Index, IndexStats};
pub use expr::ContentExpr;
pub use lexicon::{Lexicon, TermId};
pub use segment::{Segment, SegmentDoc};
pub use token::{tokenize_text, Token};
pub use transducer::{Transducer, TransducerRegistry};
