//! Immutable index segments: the unit of durable, incremental persistence.
//!
//! A segment is one reindex pass's worth of change, sealed as a value: the
//! token deltas applied (`adds`), the documents dropped (`removes`), the
//! commit sequence number, and the index generation reached. Segments are
//! *delta logs*, not posting shards — deliberately so:
//!
//! * Block-granularity postings address blocks, not documents, so a
//!   posting shard could not be re-applied against a differently-blocked
//!   base. Token deltas replay through [`Index::add_doc`] and land
//!   identically regardless of block layout history.
//! * Replaying a delta is exactly the write-phase of the live `ssync`
//!   pipeline, so recovery exercises the same code path as normal
//!   operation.
//!
//! Durable state is `base snapshot + ordered segments`; recovery decodes
//! the base and replays segments in ascending `seq`. Background
//! maintenance *merges* runs of adjacent segments — later writes to the
//! same document win — to bound replay length, and periodically folds
//! everything back into a fresh base (a checkpoint).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::bitmap::DocId;
use crate::engine::{DocDelta, Index};
use crate::token::Token;

/// One document's sealed contribution: the tokens that were indexed at
/// `version`. Mirrors [`DocDelta`] but serializable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentDoc {
    /// The document id.
    pub doc: u64,
    /// Content version the tokens were extracted from.
    pub version: u64,
    /// Namespace path the document was indexed under when the segment was
    /// sealed (empty when unknown). Carried so recovery can rebuild the
    /// doc→path map from the durable trail instead of walking the whole
    /// namespace — the walk would make warm starts O(namespace), not
    /// O(index).
    pub path: String,
    /// The extracted tokens.
    pub tokens: Vec<Token>,
}

/// An immutable segment: one committed batch of index change.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Commit sequence number (ascending across the store's life; replay
    /// order).
    pub seq: u64,
    /// Index generation after this batch was applied — replay restores it
    /// via [`Index::force_generation`].
    pub generation: u64,
    /// Documents (re)indexed, each at most once per segment.
    pub adds: Vec<SegmentDoc>,
    /// Documents removed.
    pub removes: Vec<u64>,
}

impl Segment {
    /// Seal an applied delta batch as a segment. `path_of` supplies each
    /// added document's current namespace path (None → sealed without
    /// one, and recovery falls back to a namespace walk).
    pub fn from_delta(
        seq: u64,
        generation: u64,
        adds: &[DocDelta],
        removes: &[DocId],
        path_of: impl Fn(DocId) -> Option<String>,
    ) -> Segment {
        Segment {
            seq,
            generation,
            adds: adds
                .iter()
                .map(|d| SegmentDoc {
                    doc: d.doc.0,
                    version: d.version,
                    path: path_of(d.doc).unwrap_or_default(),
                    tokens: d.tokens.clone(),
                })
                .collect(),
            removes: removes.iter().map(|d| d.0).collect(),
        }
    }

    /// Whether the segment carries no change.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }

    /// Documents touched (adds + removes) — the merge policy's notion of
    /// segment size.
    pub fn doc_count(&self) -> u64 {
        (self.adds.len() + self.removes.len()) as u64
    }

    /// Fold an ascending-`seq` run of segments into one equivalent
    /// segment: for each document the latest add wins, and a later
    /// add/remove cancels an earlier remove/add. The result carries the
    /// run's last `seq` and `generation`, so replacing the run with the
    /// merge leaves replay order and the recovered generation unchanged.
    ///
    /// Only *adjacent* runs may be merged (the caller guarantees no
    /// other live segment's seq falls inside the run), otherwise
    /// interleaved updates to the same document could be reordered.
    pub fn merge(run: &[Segment]) -> Segment {
        let mut adds: BTreeMap<u64, SegmentDoc> = BTreeMap::new();
        let mut removes: BTreeSet<u64> = BTreeSet::new();
        for seg in run {
            for add in &seg.adds {
                removes.remove(&add.doc);
                adds.insert(add.doc, add.clone());
            }
            for &doc in &seg.removes {
                adds.remove(&doc);
                removes.insert(doc);
            }
        }
        let last = run.last();
        Segment {
            seq: last.map(|s| s.seq).unwrap_or(0),
            generation: last.map(|s| s.generation).unwrap_or(0),
            adds: adds.into_values().collect(),
            removes: removes.into_iter().collect(),
        }
    }
}

impl Index {
    /// Replay a segment: the recovery-side twin of the live
    /// [`Index::apply_delta`] write-phase. Applies adds and removes
    /// unconditionally (segments were sealed *from* applied deltas, so
    /// version arbitration already happened) and restores the sealed
    /// generation.
    pub fn replay_segment(&mut self, segment: &Segment) {
        for add in &segment.adds {
            self.add_doc(DocId(add.doc), add.version, &add.tokens);
        }
        for &doc in &segment.removes {
            self.remove_doc(DocId(doc));
        }
        self.force_generation(segment.generation);
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::engine::Granularity;
    use crate::expr::ContentExpr;
    use crate::token::tokenize_text;

    fn delta(doc: u64, version: u64, text: &str) -> DocDelta {
        DocDelta {
            doc: DocId(doc),
            version,
            tokens: tokenize_text(text.as_bytes()),
        }
    }

    fn hits(index: &Index, term: &str, corpus: &HashMap<DocId, Vec<Token>>) -> Vec<u64> {
        index
            .eval(&ContentExpr::term(term), &index.all_docs(), corpus)
            .ids()
            .iter()
            .map(|d| d.0)
            .collect()
    }

    #[test]
    fn replay_reproduces_apply_delta_exactly() {
        for g in [Granularity::Exact, Granularity::Block { docs_per_block: 2 }] {
            let batches: Vec<(Vec<DocDelta>, Vec<DocId>)> = vec![
                (
                    vec![
                        delta(0, 1, "fingerprint matching algorithm"),
                        delta(1, 1, "email deadline fingerprint"),
                        delta(2, 1, "grocery milk"),
                    ],
                    vec![],
                ),
                (
                    vec![delta(2, 2, "kernel hacking"), delta(3, 1, "socks gloves")],
                    vec![DocId(1)],
                ),
                (vec![delta(0, 3, "rewritten completely")], vec![DocId(3)]),
            ];

            // Live path: apply each batch, sealing a segment per batch.
            let mut live = Index::new(g);
            let mut segments = Vec::new();
            for (i, (adds, removes)) in batches.iter().enumerate() {
                live.apply_delta(adds, removes);
                segments.push(Segment::from_delta(
                    i as u64 + 1,
                    live.generation(),
                    adds,
                    removes,
                    |d| Some(format!("/d{}", d.0)),
                ));
            }

            // Recovery path: replay the segments into a fresh index.
            let mut recovered = Index::new(g);
            for seg in &segments {
                recovered.replay_segment(seg);
            }

            let mut corpus: HashMap<DocId, Vec<Token>> = HashMap::new();
            corpus.insert(DocId(0), tokenize_text(b"rewritten completely"));
            corpus.insert(DocId(2), tokenize_text(b"kernel hacking"));
            for term in ["fingerprint", "kernel", "rewritten", "milk", "socks"] {
                assert_eq!(
                    hits(&live, term, &corpus),
                    hits(&recovered, term, &corpus),
                    "term {term} granularity {g:?}"
                );
            }
            assert_eq!(recovered.doc_count(), live.doc_count());
            assert_eq!(recovered.generation(), live.generation());
            assert_eq!(
                recovered.indexed_version(DocId(0)),
                live.indexed_version(DocId(0))
            );

            // And replaying the *merged* run is equivalent too.
            let merged = Segment::merge(&segments);
            let mut via_merge = Index::new(g);
            via_merge.replay_segment(&merged);
            for term in ["fingerprint", "kernel", "rewritten", "milk", "socks"] {
                assert_eq!(
                    hits(&live, term, &corpus),
                    hits(&via_merge, term, &corpus),
                    "merged replay, term {term} granularity {g:?}"
                );
            }
            assert_eq!(via_merge.generation(), live.generation());
        }
    }

    #[test]
    fn merge_folds_per_document_history() {
        let s1 = Segment::from_delta(
            1,
            10,
            &[delta(1, 1, "one"), delta(2, 1, "two")],
            &[DocId(9)],
            |_| None,
        );
        let s2 = Segment::from_delta(
            2,
            20,
            &[delta(2, 2, "two updated"), delta(9, 2, "nine returns")],
            &[DocId(1)],
            |_| None,
        );
        let m = Segment::merge(&[s1, s2]);
        assert_eq!(m.seq, 2);
        assert_eq!(m.generation, 20);
        // Doc 2: only the latest version survives.
        let d2 = m.adds.iter().find(|d| d.doc == 2).unwrap();
        assert_eq!(d2.version, 2);
        // Doc 1: added then removed → remove wins.
        assert!(m.adds.iter().all(|d| d.doc != 1));
        assert!(m.removes.contains(&1));
        // Doc 9: removed then re-added → add wins.
        assert!(m.adds.iter().any(|d| d.doc == 9));
        assert!(!m.removes.contains(&9));
        assert_eq!(m.doc_count(), 3);
    }

    #[test]
    fn empty_and_degenerate_merge() {
        assert!(Segment::merge(&[]).is_empty());
        let single = Segment::from_delta(5, 7, &[delta(1, 1, "solo")], &[], |_| None);
        let merged = Segment::merge(std::slice::from_ref(&single));
        assert_eq!(merged, single);
        assert!(!single.is_empty());
        assert!(Segment::from_delta(6, 7, &[], &[], |_| None).is_empty());
    }
}
