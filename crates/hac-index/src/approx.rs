//! Approximate term matching.
//!
//! Glimpse's signature feature is agrep-style approximate search. We
//! implement bounded Levenshtein distance with the classic banded dynamic
//! program: for `k` allowed errors only a `2k+1`-wide diagonal band of the
//! DP matrix is computed, so matching is `O(k·|word|)` per candidate.

/// Maximum number of errors accepted by [`within_distance`]. Larger values
/// degenerate into matching everything.
pub const MAX_ERRORS: u8 = 4;

/// Returns whether `candidate` is within Levenshtein distance `k` of
/// `pattern`. Both inputs are expected case-folded.
pub fn within_distance(pattern: &str, candidate: &str, k: u8) -> bool {
    let k = k.min(MAX_ERRORS) as usize;
    let p: Vec<u8> = pattern.bytes().collect();
    let c: Vec<u8> = candidate.bytes().collect();
    if p.len().abs_diff(c.len()) > k {
        return false;
    }
    if k == 0 {
        return p == c;
    }
    // Banded DP over rows of the candidate. `row[j]` = distance between
    // c[..i] and p[..j]; cells outside the band are treated as > k.
    const INF: usize = usize::MAX / 2;
    let m = p.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    for (i, &cb) in c.iter().enumerate() {
        let lo = (i + 1).saturating_sub(k);
        let hi = (i + 1 + k).min(m);
        let mut row = vec![INF; m + 1];
        if lo == 0 {
            row[0] = i + 1;
        }
        for j in lo.max(1)..=hi {
            let sub = prev[j - 1] + usize::from(p[j - 1] != cb);
            let del = prev[j].saturating_add(1);
            let ins = row[j - 1].saturating_add(1);
            row[j] = sub.min(del).min(ins);
        }
        if row.iter().all(|&v| v > k) {
            return false;
        }
        prev = row;
    }
    prev[m] <= k
}

/// Filters an iterator of lexicon keys down to those within distance `k` of
/// `pattern`. Field keys (containing the `\u{1f}` separator) never match.
pub fn expand<'a>(
    pattern: &'a str,
    k: u8,
    candidates: impl Iterator<Item = &'a str> + 'a,
) -> impl Iterator<Item = &'a str> + 'a {
    candidates.filter(move |c| !c.contains('\u{1f}') && within_distance(pattern, c, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_at_zero_errors() {
        assert!(within_distance("kernel", "kernel", 0));
        assert!(!within_distance("kernel", "kernal", 0));
    }

    #[test]
    fn single_errors() {
        // Substitution, insertion, deletion.
        assert!(within_distance("kernel", "kernal", 1));
        assert!(within_distance("kernel", "kernels", 1));
        assert!(within_distance("kernel", "kernl", 1));
        assert!(!within_distance("kernel", "colonel", 1));
    }

    #[test]
    fn distance_two() {
        assert!(within_distance("fingerprint", "fingreprint", 2)); // transposition = 2 edits
        assert!(within_distance("glimpse", "glmpse", 2));
        assert!(!within_distance("glimpse", "grep", 2));
    }

    #[test]
    fn length_gap_short_circuits() {
        assert!(!within_distance("ab", "abcdefgh", 2));
        assert!(!within_distance("abcdefgh", "ab", 2));
    }

    #[test]
    fn empty_patterns() {
        assert!(within_distance("", "", 0));
        assert!(within_distance("", "ab", 2));
        assert!(!within_distance("", "abc", 2));
    }

    #[test]
    fn expand_filters_lexicon() {
        let lex = ["kernel", "kernal", "colonel", "shell", "from\u{1f}kernel"];
        let hits: Vec<&str> = expand("kernel", 1, lex.iter().copied()).collect();
        assert_eq!(hits, vec!["kernel", "kernal"]);
    }

    #[test]
    fn k_is_clamped() {
        // k beyond MAX_ERRORS behaves like MAX_ERRORS, not "match all".
        assert!(!within_distance("a1", "completely-different", 200));
    }

    #[test]
    fn agrees_with_reference_levenshtein() {
        fn reference(a: &str, b: &str) -> usize {
            let a: Vec<u8> = a.bytes().collect();
            let b: Vec<u8> = b.bytes().collect();
            let mut prev: Vec<usize> = (0..=b.len()).collect();
            for i in 1..=a.len() {
                let mut row = vec![i];
                for j in 1..=b.len() {
                    let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
                    row.push(sub.min(prev[j] + 1).min(row[j - 1] + 1));
                }
                prev = row;
            }
            prev[b.len()]
        }
        let words = ["search", "sea", "searches", "serach", "smirch", "peach", ""];
        for a in words {
            for b in words {
                let d = reference(a, b);
                for k in 0..=3u8 {
                    assert_eq!(
                        within_distance(a, b, k),
                        d <= k as usize,
                        "a={a} b={b} k={k} d={d}"
                    );
                }
            }
        }
    }
}
