//! Tokenization.
//!
//! Glimpse indexes words; our tokenizer lowercases ASCII-alphanumeric runs
//! and drops a small stop list. Transducers (see [`crate::transducer`])
//! additionally emit *field* tokens — typed attribute/value pairs in the
//! style of the MIT Semantic File System's transducers, which the paper
//! cites as the standard way to feed attribute queries.

use serde::{Deserialize, Serialize};

/// Words shorter than this are not indexed.
pub const MIN_WORD_LEN: usize = 2;

/// Words longer than this are truncated (defends the lexicon against
/// binary junk).
pub const MAX_WORD_LEN: usize = 48;

/// The stop list: high-frequency words that add index bulk but no
/// discriminating power.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "that", "the", "to", "was", "were", "will", "with",
];

/// One indexable token.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// A plain content word (already case-folded).
    Word(String),
    /// A typed attribute extracted by a transducer, e.g. `from:alice`.
    Field {
        /// Attribute name (case-folded).
        name: String,
        /// Attribute value (case-folded).
        value: String,
    },
}

impl Token {
    /// Builds a word token, folding case.
    pub fn word(w: &str) -> Token {
        Token::Word(w.to_ascii_lowercase())
    }

    /// Builds a field token, folding case on both sides.
    pub fn field(name: &str, value: &str) -> Token {
        Token::Field {
            name: name.to_ascii_lowercase(),
            value: value.to_ascii_lowercase(),
        }
    }

    /// The lexicon key for this token. Field tokens are namespaced with an
    /// unprintable separator so they can never collide with content words.
    pub fn key(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Field { name, value } => format!("{name}\u{1f}{value}"),
        }
    }

    /// Builds the lexicon key for a field query without allocating a token.
    pub fn field_key(name: &str, value: &str) -> String {
        format!(
            "{}\u{1f}{}",
            name.to_ascii_lowercase(),
            value.to_ascii_lowercase()
        )
    }

    /// The word content, if this is a word token.
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            Token::Field { .. } => None,
        }
    }
}

/// Whether a word survives the stop list and length limits.
pub fn is_indexable(word: &str) -> bool {
    word.len() >= MIN_WORD_LEN && !STOP_WORDS.contains(&word)
}

/// Tokenizes plain text into lowercase words, applying the stop list.
///
/// # Examples
///
/// ```
/// use hac_index::token::tokenize_text;
///
/// let words = tokenize_text(b"The Fingerprint-Matching ALGORITHM, v2!");
/// let strs: Vec<&str> = words.iter().filter_map(|t| t.as_word()).collect();
/// assert_eq!(strs, vec!["fingerprint", "matching", "algorithm", "v2"]);
/// ```
pub fn tokenize_text(content: &[u8]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut word = String::new();
    for &b in content {
        let c = b as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            if word.len() < MAX_WORD_LEN {
                word.push(c.to_ascii_lowercase());
            }
        } else if !word.is_empty() {
            if is_indexable(&word) {
                out.push(Token::Word(std::mem::take(&mut word)));
            } else {
                word.clear();
            }
        }
    }
    if !word.is_empty() && is_indexable(&word) {
        out.push(Token::Word(word));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_folds_case_and_splits_punctuation() {
        let toks = tokenize_text(b"Hello, WORLD! foo_bar x");
        let words: Vec<&str> = toks.iter().filter_map(Token::as_word).collect();
        // "x" is below MIN_WORD_LEN.
        assert_eq!(words, vec!["hello", "world", "foo_bar"]);
    }

    #[test]
    fn stop_words_are_dropped() {
        let toks = tokenize_text(b"the cat and the hat");
        let words: Vec<&str> = toks.iter().filter_map(Token::as_word).collect();
        assert_eq!(words, vec!["cat", "hat"]);
    }

    #[test]
    fn long_runs_are_truncated_not_dropped() {
        let long = vec![b'a'; 200];
        let toks = tokenize_text(&long);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].as_word().unwrap().len(), MAX_WORD_LEN);
    }

    #[test]
    fn field_keys_cannot_collide_with_words() {
        let f = Token::field("From", "Alice");
        assert_eq!(f.key(), "from\u{1f}alice");
        assert_eq!(Token::field_key("FROM", "ALICE"), f.key());
        let w = Token::word("from");
        assert_ne!(w.key(), Token::field_key("from", ""));
    }

    #[test]
    fn empty_and_binary_input() {
        assert!(tokenize_text(b"").is_empty());
        let toks = tokenize_text(&[0u8, 1, 2, 255, b' ', b'o', b'k']);
        let words: Vec<&str> = toks.iter().filter_map(Token::as_word).collect();
        assert_eq!(words, vec!["ok"]);
    }
}
