//! Result-set bitmaps.
//!
//! The paper stores, with each semantic directory, "a compact representation
//! of the list of all file names … We currently use bitmaps since it is
//! simple to implement and has speed advantages for Glimpse. The extra space
//! we need per semantic directory is therefore N/8 Bytes … We plan to
//! improve this in future by using better sparse-set representations."
//!
//! [`DenseBitmap`] is that N/8-byte representation; [`SparseBitmap`] is the
//! promised sparse alternative (a sorted id list). [`Bitmap`] unifies them so
//! the rest of the system is representation-agnostic, and an ablation bench
//! compares the two.

use serde::{Deserialize, Serialize};

/// Identifier of an indexed document. The HAC layer maps file ids to doc ids
/// one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u64);

/// Dense bit-per-document set: exactly the paper's `N/8` bytes for a
/// universe of `N` documents (rounded up to whole 64-bit words here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBitmap {
    words: Vec<u64>,
}

impl DenseBitmap {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing `0..n`.
    pub fn full(n: u64) -> Self {
        let mut b = Self::new();
        for i in 0..n {
            b.insert(DocId(i));
        }
        b
    }

    /// Adds a document.
    pub fn insert(&mut self, doc: DocId) {
        let (w, bit) = ((doc.0 / 64) as usize, doc.0 % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << bit;
    }

    /// Removes a document.
    pub fn remove(&mut self, doc: DocId) {
        let (w, bit) = ((doc.0 / 64) as usize, doc.0 % 64);
        if let Some(word) = self.words.get_mut(w) {
            *word &= !(1 << bit);
        }
    }

    /// Membership test.
    pub fn contains(&self, doc: DocId) -> bool {
        let (w, bit) = ((doc.0 / 64) as usize, doc.0 % 64);
        self.words.get(w).is_some_and(|word| word & (1 << bit) != 0)
    }

    /// Number of documents in the set.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DenseBitmap) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &DenseBitmap) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &DenseBitmap) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, word)| {
            let word = *word;
            (0..64).filter_map(move |bit| {
                if word & (1u64 << bit) != 0 {
                    Some(DocId(wi as u64 * 64 + bit))
                } else {
                    None
                }
            })
        })
    }

    /// Resident bytes of the representation (the paper's N/8 figure).
    pub fn bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

/// Sorted-id sparse set: the paper's planned "better sparse-set
/// representation" for very large universes with small results.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBitmap {
    ids: Vec<u64>,
}

impl SparseBitmap {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document (no-op if present).
    pub fn insert(&mut self, doc: DocId) {
        if let Err(pos) = self.ids.binary_search(&doc.0) {
            self.ids.insert(pos, doc.0);
        }
    }

    /// Removes a document (no-op if absent).
    pub fn remove(&mut self, doc: DocId) {
        if let Ok(pos) = self.ids.binary_search(&doc.0) {
            self.ids.remove(pos);
        }
    }

    /// Membership test.
    pub fn contains(&self, doc: DocId) -> bool {
        self.ids.binary_search(&doc.0).is_ok()
    }

    /// Number of documents.
    pub fn count(&self) -> u64 {
        self.ids.len() as u64
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// In-place union (merge).
    pub fn union_with(&mut self, other: &SparseBitmap) {
        let mut merged = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.ids[i..]);
        merged.extend_from_slice(&other.ids[j..]);
        self.ids = merged;
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &SparseBitmap) {
        self.ids.retain(|id| other.ids.binary_search(id).is_ok());
    }

    /// In-place difference.
    pub fn subtract(&mut self, other: &SparseBitmap) {
        self.ids.retain(|id| other.ids.binary_search(id).is_err());
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.ids.iter().map(|id| DocId(*id))
    }

    /// Resident bytes of the representation (8 bytes per member).
    pub fn bytes(&self) -> u64 {
        (self.ids.len() * 8) as u64
    }
}

/// Representation-agnostic document set.
///
/// All binary operations work across representations (the dense side of a
/// mixed operation wins, except `Sparse ∩ Dense` which stays sparse — the
/// result can only shrink).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bitmap {
    /// Dense `N/8`-byte representation.
    Dense(DenseBitmap),
    /// Sorted-id sparse representation.
    Sparse(SparseBitmap),
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::Dense(DenseBitmap::new())
    }
}

impl Bitmap {
    /// Empty set in the dense representation.
    pub fn new_dense() -> Self {
        Bitmap::Dense(DenseBitmap::new())
    }

    /// Empty set in the sparse representation.
    pub fn new_sparse() -> Self {
        Bitmap::Sparse(SparseBitmap::new())
    }

    /// Builds a set from an iterator of ids, in the dense representation.
    pub fn from_ids<I: IntoIterator<Item = DocId>>(ids: I) -> Self {
        let mut b = DenseBitmap::new();
        for id in ids {
            b.insert(id);
        }
        Bitmap::Dense(b)
    }

    /// Adds a document.
    pub fn insert(&mut self, doc: DocId) {
        match self {
            Bitmap::Dense(b) => b.insert(doc),
            Bitmap::Sparse(b) => b.insert(doc),
        }
    }

    /// Removes a document.
    pub fn remove(&mut self, doc: DocId) {
        match self {
            Bitmap::Dense(b) => b.remove(doc),
            Bitmap::Sparse(b) => b.remove(doc),
        }
    }

    /// Membership test.
    pub fn contains(&self, doc: DocId) -> bool {
        match self {
            Bitmap::Dense(b) => b.contains(doc),
            Bitmap::Sparse(b) => b.contains(doc),
        }
    }

    /// Number of documents.
    pub fn count(&self) -> u64 {
        match self {
            Bitmap::Dense(b) => b.count(),
            Bitmap::Sparse(b) => b.count(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            Bitmap::Dense(b) => b.is_empty(),
            Bitmap::Sparse(b) => b.is_empty(),
        }
    }

    /// Members in ascending order.
    pub fn ids(&self) -> Vec<DocId> {
        match self {
            Bitmap::Dense(b) => b.iter().collect(),
            Bitmap::Sparse(b) => b.iter().collect(),
        }
    }

    /// Converts to the dense representation (clone-free when already dense).
    pub fn into_dense(self) -> DenseBitmap {
        match self {
            Bitmap::Dense(b) => b,
            Bitmap::Sparse(s) => {
                let mut d = DenseBitmap::new();
                for id in s.iter() {
                    d.insert(id);
                }
                d
            }
        }
    }

    /// Converts to the sparse representation.
    pub fn into_sparse(self) -> SparseBitmap {
        match self {
            Bitmap::Sparse(s) => s,
            Bitmap::Dense(d) => {
                let mut s = SparseBitmap::new();
                for id in d.iter() {
                    s.insert(id);
                }
                s
            }
        }
    }

    /// Set union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        match (self, other) {
            (Bitmap::Dense(a), Bitmap::Dense(b)) => {
                let mut r = a.clone();
                r.union_with(b);
                Bitmap::Dense(r)
            }
            (Bitmap::Sparse(a), Bitmap::Sparse(b)) => {
                let mut r = a.clone();
                r.union_with(b);
                Bitmap::Sparse(r)
            }
            (a, b) => {
                let mut r = a.clone().into_dense();
                r.union_with(&b.clone().into_dense());
                Bitmap::Dense(r)
            }
        }
    }

    /// Set intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        match (self, other) {
            (Bitmap::Dense(a), Bitmap::Dense(b)) => {
                let mut r = a.clone();
                r.intersect_with(b);
                Bitmap::Dense(r)
            }
            (Bitmap::Sparse(a), b) => {
                let mut r = a.clone();
                r.ids_retain(|id| b.contains(DocId(id)));
                Bitmap::Sparse(r)
            }
            (Bitmap::Dense(_), Bitmap::Sparse(b)) => {
                let mut r = b.clone();
                r.ids_retain(|id| self.contains(DocId(id)));
                Bitmap::Sparse(r)
            }
        }
    }

    /// Set difference (`self \ other`).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        match (self, other) {
            (Bitmap::Dense(a), Bitmap::Dense(b)) => {
                let mut r = a.clone();
                r.subtract(b);
                Bitmap::Dense(r)
            }
            (Bitmap::Sparse(a), b) => {
                let mut r = a.clone();
                r.ids_retain(|id| !b.contains(DocId(id)));
                Bitmap::Sparse(r)
            }
            (Bitmap::Dense(a), Bitmap::Sparse(b)) => {
                let mut r = a.clone();
                for id in b.iter() {
                    r.remove(id);
                }
                Bitmap::Dense(r)
            }
        }
    }

    /// Resident bytes of the representation.
    pub fn bytes(&self) -> u64 {
        match self {
            Bitmap::Dense(b) => b.bytes(),
            Bitmap::Sparse(b) => b.bytes(),
        }
    }

    /// Order-sensitive FNV-1a hash of the member ids. Representation
    /// agnostic: a dense and a sparse bitmap holding the same set produce
    /// the same fingerprint (both iterate ascending). Used as the scope
    /// component of query-result cache keys.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |id: u64| {
            for byte in id.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        match self {
            Bitmap::Dense(b) => b.iter().for_each(|d| mix(d.0)),
            Bitmap::Sparse(b) => b.iter().for_each(|d| mix(d.0)),
        }
        hash
    }
}

impl SparseBitmap {
    fn ids_retain(&mut self, mut f: impl FnMut(u64) -> bool) {
        self.ids.retain(|id| f(*id));
    }
}

impl FromIterator<DocId> for Bitmap {
    fn from_iter<T: IntoIterator<Item = DocId>>(iter: T) -> Self {
        Bitmap::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(ids: &[u64]) -> Bitmap {
        Bitmap::from_ids(ids.iter().map(|i| DocId(*i)))
    }

    fn sparse(ids: &[u64]) -> Bitmap {
        let mut b = Bitmap::new_sparse();
        for i in ids {
            b.insert(DocId(*i));
        }
        b
    }

    #[test]
    fn insert_remove_contains_dense() {
        let mut b = DenseBitmap::new();
        b.insert(DocId(3));
        b.insert(DocId(64));
        b.insert(DocId(1000));
        assert!(b.contains(DocId(3)) && b.contains(DocId(64)) && b.contains(DocId(1000)));
        assert!(!b.contains(DocId(4)));
        assert_eq!(b.count(), 3);
        b.remove(DocId(64));
        assert!(!b.contains(DocId(64)));
        assert_eq!(b.count(), 2);
        // Removing past the allocated words is a no-op.
        b.remove(DocId(1 << 20));
    }

    #[test]
    fn insert_remove_contains_sparse() {
        let mut b = SparseBitmap::new();
        b.insert(DocId(9));
        b.insert(DocId(2));
        b.insert(DocId(9));
        assert_eq!(b.count(), 2);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![DocId(2), DocId(9)]);
        b.remove(DocId(2));
        assert!(!b.contains(DocId(2)));
    }

    #[test]
    fn cross_representation_ops_agree() {
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![1, 2, 3], vec![2, 3, 4]),
            (vec![], vec![5]),
            (vec![100, 200], vec![]),
            (vec![0, 63, 64, 127, 128], vec![63, 128, 500]),
        ];
        for (xs, ys) in cases {
            for (a, b) in [
                (dense(&xs), dense(&ys)),
                (dense(&xs), sparse(&ys)),
                (sparse(&xs), dense(&ys)),
                (sparse(&xs), sparse(&ys)),
            ] {
                let or: Vec<u64> = a.or(&b).ids().iter().map(|d| d.0).collect();
                let and: Vec<u64> = a.and(&b).ids().iter().map(|d| d.0).collect();
                let diff: Vec<u64> = a.and_not(&b).ids().iter().map(|d| d.0).collect();
                let mut want_or: Vec<u64> = xs
                    .iter()
                    .chain(ys.iter())
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                want_or.dedup();
                let want_and: Vec<u64> = xs.iter().filter(|x| ys.contains(x)).copied().collect();
                let want_diff: Vec<u64> = xs.iter().filter(|x| !ys.contains(x)).copied().collect();
                assert_eq!(or, want_or);
                assert_eq!(and, want_and);
                assert_eq!(diff, want_diff);
            }
        }
    }

    #[test]
    fn dense_bytes_is_n_over_8() {
        let mut b = DenseBitmap::new();
        b.insert(DocId(1023));
        // Universe of 1024 docs → 128 bytes, the paper's N/8.
        assert_eq!(b.bytes(), 128);
    }

    #[test]
    fn full_contains_range() {
        let b = DenseBitmap::full(130);
        assert_eq!(b.count(), 130);
        assert!(b.contains(DocId(0)) && b.contains(DocId(129)));
        assert!(!b.contains(DocId(130)));
    }

    #[test]
    fn conversions_roundtrip() {
        let b = dense(&[5, 77, 901]);
        let s = b.clone().into_sparse();
        let d2 = Bitmap::Sparse(s).into_dense();
        assert_eq!(Bitmap::Dense(d2), b);
    }

    #[test]
    fn fingerprint_is_representation_agnostic_and_content_sensitive() {
        let sets: Vec<Vec<u64>> = vec![vec![], vec![0], vec![1, 64, 900], vec![1, 65, 900]];
        let mut fps = Vec::new();
        for ids in &sets {
            let d = dense(ids).fingerprint();
            let s = sparse(ids).fingerprint();
            assert_eq!(d, s, "dense/sparse fingerprints must agree for {ids:?}");
            fps.push(d);
        }
        // Distinct sets get distinct fingerprints (for these small cases).
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "sets {i} and {j} collided");
            }
        }
        // Trailing zero words don't change the fingerprint.
        let mut with_tail = DenseBitmap::new();
        with_tail.insert(DocId(3));
        with_tail.insert(DocId(1000));
        with_tail.remove(DocId(1000));
        assert_eq!(
            Bitmap::Dense(with_tail).fingerprint(),
            dense(&[3]).fingerprint()
        );
    }

    #[test]
    fn sparse_saves_space_on_sparse_sets() {
        let mut d = DenseBitmap::new();
        let mut s = SparseBitmap::new();
        for i in [0u64, 1_000_000] {
            d.insert(DocId(i));
            s.insert(DocId(i));
        }
        assert!(s.bytes() < d.bytes());
    }
}
