//! Recursive-descent query parser.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! query   := or
//! or      := and ( OR and )*
//! and     := unary ( [AND [NOT] | AND-less juxtaposition] unary )*
//! unary   := NOT unary | primary
//! primary := '(' query ')' | phrase | ~approx | field | pathref | word | '*'
//! ```
//!
//! Juxtaposition is conjunction (`fingerprint email` ≡ `fingerprint AND
//! email`), matching Glimpse's habit. `AND NOT` parses into the dedicated
//! [`QueryExpr::AndNot`] node the paper's running example uses
//! ("fingerprint AND NOT murder").

use std::fmt;

use crate::ast::{DirRef, Query, QueryExpr};
use crate::lexer::{lex, LexError, Tok};

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The query contained no expression.
    Empty,
    /// `)` without matching `(`, or missing `)`.
    UnbalancedParen,
    /// An operator missing its operand.
    MissingOperand(&'static str),
    /// Tokens remained after a complete expression.
    TrailingInput,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lexical error: {e}"),
            ParseError::Empty => write!(f, "empty query"),
            ParseError::UnbalancedParen => write!(f, "unbalanced parentheses"),
            ParseError::MissingOperand(op) => write!(f, "operator {op} is missing an operand"),
            ParseError::TrailingInput => write!(f, "unexpected trailing input"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a query string into a [`Query`].
///
/// # Examples
///
/// ```
/// use hac_query::parse;
///
/// let q = parse("fingerprint AND NOT murder").unwrap();
/// assert_eq!(q.display_with(|_| None), "(fingerprint AND NOT murder)");
/// ```
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input; never panics.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(ParseError::TrailingInput);
    }
    Ok(Query {
        expr,
        source: input.to_string(),
    })
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w == kw)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<QueryExpr, ParseError> {
        let mut left = self.parse_and()?;
        while self.peek_keyword("or") {
            self.bump();
            let right = self.parse_and().map_err(|e| match e {
                ParseError::Empty => ParseError::MissingOperand("OR"),
                other => other,
            })?;
            left = QueryExpr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<QueryExpr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            // Explicit AND [NOT]?
            if self.peek_keyword("and") {
                self.bump();
                if self.peek_keyword("not") {
                    self.bump();
                    let right = self.parse_unary().map_err(|e| match e {
                        ParseError::Empty => ParseError::MissingOperand("AND NOT"),
                        other => other,
                    })?;
                    left = QueryExpr::and_not(left, right);
                } else {
                    let right = self.parse_unary().map_err(|e| match e {
                        ParseError::Empty => ParseError::MissingOperand("AND"),
                        other => other,
                    })?;
                    left = QueryExpr::and(left, right);
                }
                continue;
            }
            // Juxtaposition: another primary begins here?
            match self.peek() {
                Some(Tok::Word(w)) if w == "or" => break,
                Some(Tok::RParen) | None => break,
                Some(_) => {
                    let right = self.parse_unary()?;
                    left = QueryExpr::and(left, right);
                }
            }
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<QueryExpr, ParseError> {
        if self.peek_keyword("not") {
            self.bump();
            let inner = self.parse_unary().map_err(|e| match e {
                ParseError::Empty => ParseError::MissingOperand("NOT"),
                other => other,
            })?;
            return Ok(QueryExpr::not(inner));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<QueryExpr, ParseError> {
        match self.bump() {
            Some(Tok::LParen) => {
                let inner = self.parse_or()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(ParseError::UnbalancedParen),
                }
            }
            Some(Tok::RParen) => Err(ParseError::UnbalancedParen),
            Some(Tok::Word(w)) => Ok(QueryExpr::Term(w)),
            Some(Tok::Field(n, v)) => Ok(QueryExpr::Field(n, v)),
            Some(Tok::Phrase(ws)) => Ok(QueryExpr::Phrase(ws)),
            Some(Tok::Approx(t, k)) => Ok(QueryExpr::Approx(t, k)),
            Some(Tok::Prefix(t)) => Ok(QueryExpr::Prefix(t)),
            Some(Tok::PathRef(p)) => Ok(QueryExpr::Dir(DirRef::Path(p))),
            Some(Tok::Star) => Ok(QueryExpr::All),
            None => Err(ParseError::Empty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_vfs::VPath;

    fn show(q: &str) -> String {
        parse(q).unwrap().display_with(|_| None)
    }

    #[test]
    fn single_term() {
        assert_eq!(show("fingerprint"), "fingerprint");
    }

    #[test]
    fn precedence_or_lower_than_and() {
        assert_eq!(show("a OR b AND c"), "(a OR (b AND c))");
        assert_eq!(show("a AND b OR c"), "((a AND b) OR c)");
    }

    #[test]
    fn juxtaposition_is_and() {
        assert_eq!(show("finger print email"), "((finger AND print) AND email)");
    }

    #[test]
    fn and_not_is_a_single_node() {
        let q = parse("fingerprint AND NOT murder").unwrap();
        assert!(matches!(q.expr, QueryExpr::AndNot(..)));
    }

    #[test]
    fn unary_not_nests() {
        assert_eq!(show("NOT NOT a"), "(NOT (NOT a))");
        assert_eq!(show("a AND (NOT b)"), "(a AND (NOT b))");
    }

    #[test]
    fn parens_override() {
        assert_eq!(show("(a OR b) AND c"), "((a OR b) AND c)");
        assert_eq!(parse("(a"), Err(ParseError::UnbalancedParen));
        assert_eq!(parse("a)"), Err(ParseError::TrailingInput));
        assert_eq!(parse(")"), Err(ParseError::UnbalancedParen));
    }

    #[test]
    fn empty_and_operator_errors() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert_eq!(parse("a AND"), Err(ParseError::MissingOperand("AND")));
        assert_eq!(parse("a OR"), Err(ParseError::MissingOperand("OR")));
        assert_eq!(parse("NOT"), Err(ParseError::MissingOperand("NOT")));
        assert_eq!(
            parse("a AND NOT"),
            Err(ParseError::MissingOperand("AND NOT"))
        );
    }

    #[test]
    fn the_papers_running_example() {
        // §2.5: "<old query> AND <path-name of parent>".
        let q = parse("fingerprint AND path(/projects)").unwrap();
        assert_eq!(
            q.expr.unbound_paths(),
            vec![VPath::parse("/projects").unwrap()]
        );
        assert_eq!(
            show("fingerprint AND path(/projects)"),
            "(fingerprint AND path(/projects))"
        );
    }

    #[test]
    fn mixed_leaves() {
        let q = show("from:alice \"status report\" ~2:kernl *");
        assert_eq!(
            q,
            "(((from:alice AND \"status report\") AND ~2:kernl) AND *)"
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(show("a and b or not c"), "((a AND b) OR (NOT c))");
    }
}

#[cfg(test)]
mod prefix_tests {
    use super::*;

    #[test]
    fn prefix_parses_and_displays() {
        let q = parse("finger* AND NOT email").unwrap();
        assert!(matches!(
            &q.expr,
            QueryExpr::AndNot(a, _) if matches!(&**a, QueryExpr::Prefix(p) if p == "finger")
        ));
        assert_eq!(q.display_with(|_| None), "(finger* AND NOT email)");
    }

    #[test]
    fn bare_star_is_still_all() {
        assert!(matches!(parse("*").unwrap().expr, QueryExpr::All));
    }
}
