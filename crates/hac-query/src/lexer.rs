//! Query lexer.

use std::fmt;

use hac_vfs::VPath;

/// Lexical errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A quoted phrase was never closed.
    UnterminatedPhrase,
    /// `path(` without a closing `)`.
    UnterminatedPathRef,
    /// A `path(...)` or `/...` reference held an invalid path.
    BadPath(String),
    /// `~` not followed by a word.
    BadApprox,
    /// A character that cannot start any token.
    UnexpectedChar(char),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedPhrase => write!(f, "unterminated quoted phrase"),
            LexError::UnterminatedPathRef => write!(f, "unterminated path(...) reference"),
            LexError::BadPath(p) => write!(f, "invalid path in query: {p:?}"),
            LexError::BadApprox => write!(f, "'~' must be followed by a word (e.g. ~2:term)"),
            LexError::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
        }
    }
}

impl std::error::Error for LexError {}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A bare word (possibly an operator keyword — the parser decides).
    Word(String),
    /// `name:value`.
    Field(String, String),
    /// `"some words"`.
    Phrase(Vec<String>),
    /// `~word` or `~k:word`.
    Approx(String, u8),
    /// `word*`.
    Prefix(String),
    /// `path(/a/b)` or a bare `/a/b`.
    PathRef(VPath),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `*`.
    Star,
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '@'
}

fn read_word(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut w = String::new();
    while let Some(&c) = chars.peek() {
        if is_word_char(c) {
            w.push(c);
            chars.next();
        } else {
            break;
        }
    }
    w
}

/// Tokenizes a query string.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                }
                out.push(Tok::Word("and".into()));
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                }
                out.push(Tok::Word("or".into()));
            }
            '!' => {
                chars.next();
                out.push(Tok::Word("not".into()));
            }
            '"' => {
                chars.next();
                let mut phrase = String::new();
                let mut closed = false;
                for pc in chars.by_ref() {
                    if pc == '"' {
                        closed = true;
                        break;
                    }
                    phrase.push(pc);
                }
                if !closed {
                    return Err(LexError::UnterminatedPhrase);
                }
                let words: Vec<String> = phrase
                    .split_whitespace()
                    .map(|w| {
                        w.chars()
                            .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
                            .collect::<String>()
                            .to_ascii_lowercase()
                    })
                    .filter(|w| !w.is_empty())
                    .collect();
                out.push(Tok::Phrase(words));
            }
            '~' => {
                chars.next();
                // Optional error count: ~2:word. Default 1.
                let mut k = 1u8;
                let mut first = read_word(&mut chars);
                if chars.peek() == Some(&':') {
                    if let Ok(parsed) = first.parse::<u8>() {
                        k = parsed;
                        chars.next(); // consume ':'
                        first = read_word(&mut chars);
                    }
                }
                if first.is_empty() {
                    return Err(LexError::BadApprox);
                }
                out.push(Tok::Approx(first.to_ascii_lowercase(), k));
            }
            '/' => {
                // A bare path reference: consume path-ish characters.
                let mut raw = String::new();
                while let Some(&pc) = chars.peek() {
                    if is_word_char(pc) || pc == '/' {
                        raw.push(pc);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let path = VPath::parse(&raw).map_err(|_| LexError::BadPath(raw.clone()))?;
                out.push(Tok::PathRef(path));
            }
            c if is_word_char(c) => {
                let word = read_word(&mut chars);
                if chars.peek() == Some(&':') {
                    chars.next();
                    if word.eq_ignore_ascii_case("path") && chars.peek() == Some(&'/') {
                        // Tolerate "path:/a/b" as an alternative spelling.
                        let mut raw = String::new();
                        while let Some(&pc) = chars.peek() {
                            if is_word_char(pc) || pc == '/' {
                                raw.push(pc);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        let path =
                            VPath::parse(&raw).map_err(|_| LexError::BadPath(raw.clone()))?;
                        out.push(Tok::PathRef(path));
                    } else {
                        let value = read_word(&mut chars);
                        out.push(Tok::Field(
                            word.to_ascii_lowercase(),
                            value.to_ascii_lowercase(),
                        ));
                    }
                } else if word.eq_ignore_ascii_case("path") && chars.peek() == Some(&'(') {
                    chars.next();
                    let mut raw = String::new();
                    let mut closed = false;
                    for pc in chars.by_ref() {
                        if pc == ')' {
                            closed = true;
                            break;
                        }
                        raw.push(pc);
                    }
                    if !closed {
                        return Err(LexError::UnterminatedPathRef);
                    }
                    let raw = raw.trim().to_string();
                    let path = VPath::parse(&raw).map_err(|_| LexError::BadPath(raw.clone()))?;
                    out.push(Tok::PathRef(path));
                } else if chars.peek() == Some(&'*') {
                    chars.next();
                    out.push(Tok::Prefix(word.to_ascii_lowercase()));
                } else {
                    out.push(Tok::Word(word.to_ascii_lowercase()));
                }
            }
            other => return Err(LexError::UnexpectedChar(other)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn words_fold_case() {
        assert_eq!(
            lex("Fingerprint AND Email").unwrap(),
            vec![
                Tok::Word("fingerprint".into()),
                Tok::Word("and".into()),
                Tok::Word("email".into())
            ]
        );
    }

    #[test]
    fn operators_symbols() {
        assert_eq!(
            lex("a && b || !c").unwrap(),
            vec![
                Tok::Word("a".into()),
                Tok::Word("and".into()),
                Tok::Word("b".into()),
                Tok::Word("or".into()),
                Tok::Word("not".into()),
                Tok::Word("c".into()),
            ]
        );
    }

    #[test]
    fn phrases_normalize_words() {
        assert_eq!(
            lex("\"Minutiae Extraction, v2\"").unwrap(),
            vec![Tok::Phrase(vec![
                "minutiae".into(),
                "extraction".into(),
                "v2".into()
            ])]
        );
        assert_eq!(lex("\"unterminated"), Err(LexError::UnterminatedPhrase));
    }

    #[test]
    fn fields_split_on_colon() {
        assert_eq!(
            lex("From:Alice subject:status").unwrap(),
            vec![
                Tok::Field("from".into(), "alice".into()),
                Tok::Field("subject".into(), "status".into())
            ]
        );
    }

    #[test]
    fn path_refs_three_spellings() {
        for q in ["path(/mail/inbox)", "path:/mail/inbox", "/mail/inbox"] {
            assert_eq!(
                lex(q).unwrap(),
                vec![Tok::PathRef(p("/mail/inbox"))],
                "spelling {q}"
            );
        }
        assert_eq!(lex("path(/a"), Err(LexError::UnterminatedPathRef));
    }

    #[test]
    fn approx_with_and_without_count() {
        assert_eq!(
            lex("~kernel").unwrap(),
            vec![Tok::Approx("kernel".into(), 1)]
        );
        assert_eq!(
            lex("~2:kernel").unwrap(),
            vec![Tok::Approx("kernel".into(), 2)]
        );
        assert_eq!(lex("~ "), Err(LexError::BadApprox));
    }

    #[test]
    fn parens_and_star() {
        assert_eq!(
            lex("(a) *").unwrap(),
            vec![Tok::LParen, Tok::Word("a".into()), Tok::RParen, Tok::Star]
        );
    }

    #[test]
    fn unexpected_char_is_reported() {
        assert_eq!(lex("a % b"), Err(LexError::UnexpectedChar('%')));
    }
}
