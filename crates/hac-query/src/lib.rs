//! # hac-query — the HAC query language
//!
//! Queries in HAC are boolean expressions over content predicates (words,
//! phrases, transducer fields, approximate matches) *and directory
//! references* — §2.5 of the OSDI '99 paper lets users name an existing
//! (semantic or syntactic) directory inside a query, pulling in its
//! current, possibly hand-edited result set.
//!
//! This crate owns the textual form: [`lexer`], [`parser`], and the
//! [`ast`]. Path references are parsed as paths and then *bound* to stable
//! directory UIDs ([`Query::bind_paths`]) before storage, reproducing the
//! paper's rename-stable global identifier map. Evaluation lives in
//! `hac-core`, which has access to both the index and directory scopes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{DirRef, DirUid, Query, QueryExpr};
pub use lexer::LexError;
pub use parser::{parse, ParseError};
