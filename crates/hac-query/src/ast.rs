//! Query abstract syntax.
//!
//! A HAC query is a boolean expression over content predicates *and
//! directory references* (§2.5 of the paper): naming a directory in a query
//! pulls in that directory's current, possibly hand-edited result set. The
//! paper stores stable unique identifiers instead of path names inside
//! queries so that renames do not invalidate them; [`DirRef`] models both
//! states (as-parsed path, bound UID).

use serde::{Deserialize, Serialize};

use hac_index::ContentExpr;
use hac_vfs::VPath;

/// Stable unique identifier of a directory, as kept in HAC's global
/// UID ↔ path map. Allocated by the HAC layer, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DirUid(pub u64);

impl std::fmt::Display for DirUid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// A reference to another directory inside a query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirRef {
    /// As parsed from user input: a path name. Must be bound to a UID
    /// before the query is stored (paths are not rename-stable).
    Path(VPath),
    /// Bound form: the directory's stable UID.
    Uid(DirUid),
}

/// A node of the query expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryExpr {
    /// A content word.
    Term(String),
    /// A transducer-extracted attribute, `name:value`.
    Field(String, String),
    /// Consecutive words, `"like this"`.
    Phrase(Vec<String>),
    /// Approximate word match, `~word` or `~2:word` (edit distance).
    Approx(String, u8),
    /// Prefix word match, `finger*`.
    Prefix(String),
    /// The result set of another directory (§2.5).
    Dir(DirRef),
    /// Conjunction.
    And(Box<QueryExpr>, Box<QueryExpr>),
    /// Disjunction.
    Or(Box<QueryExpr>, Box<QueryExpr>),
    /// `lhs AND NOT rhs`.
    AndNot(Box<QueryExpr>, Box<QueryExpr>),
    /// Complement within the evaluation scope.
    Not(Box<QueryExpr>),
    /// Everything in scope.
    All,
}

impl QueryExpr {
    /// `a AND b` without manual boxing.
    pub fn and(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b` without manual boxing.
    pub fn or(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::Or(Box::new(a), Box::new(b))
    }

    /// `a AND NOT b` without manual boxing.
    pub fn and_not(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::AndNot(Box::new(a), Box::new(b))
    }

    /// `NOT a` without manual boxing.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: QueryExpr) -> QueryExpr {
        QueryExpr::Not(Box::new(a))
    }

    /// Visits every node.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a QueryExpr)) {
        f(self);
        match self {
            QueryExpr::And(a, b) | QueryExpr::Or(a, b) | QueryExpr::AndNot(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            QueryExpr::Not(a) => a.walk(f),
            _ => {}
        }
    }

    /// Rewrites every node bottom-up.
    pub fn map(self, f: &mut impl FnMut(QueryExpr) -> QueryExpr) -> QueryExpr {
        let rebuilt = match self {
            QueryExpr::And(a, b) => QueryExpr::And(Box::new(a.map(f)), Box::new(b.map(f))),
            QueryExpr::Or(a, b) => QueryExpr::Or(Box::new(a.map(f)), Box::new(b.map(f))),
            QueryExpr::AndNot(a, b) => QueryExpr::AndNot(Box::new(a.map(f)), Box::new(b.map(f))),
            QueryExpr::Not(a) => QueryExpr::Not(Box::new(a.map(f))),
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// All directory UIDs this query depends on. Unbound path references
    /// are not included — bind them first.
    pub fn referenced_uids(&self) -> Vec<DirUid> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let QueryExpr::Dir(DirRef::Uid(uid)) = e {
                if !out.contains(uid) {
                    out.push(*uid);
                }
            }
        });
        out
    }

    /// All still-unbound path references.
    pub fn unbound_paths(&self) -> Vec<VPath> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let QueryExpr::Dir(DirRef::Path(p)) = e {
                out.push(p.clone());
            }
        });
        out
    }

    /// Whether the expression contains any directory reference.
    pub fn has_dir_refs(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, QueryExpr::Dir(_)) {
                found = true;
            }
        });
        found
    }

    /// Projects the query onto pure content for shipping to a remote query
    /// system (§3): directory references collapse to `All`, because a remote
    /// name space cannot resolve local directories — the local evaluator
    /// re-applies them as set restrictions afterwards.
    pub fn content_projection(&self) -> ContentExpr {
        match self {
            QueryExpr::Term(t) => ContentExpr::Term(t.clone()),
            QueryExpr::Field(n, v) => ContentExpr::Field(n.clone(), v.clone()),
            QueryExpr::Phrase(ws) => ContentExpr::Phrase(ws.clone()),
            QueryExpr::Approx(t, k) => ContentExpr::Approx(t.clone(), *k),
            QueryExpr::Prefix(t) => ContentExpr::Prefix(t.clone()),
            QueryExpr::Dir(_) => ContentExpr::All,
            QueryExpr::And(a, b) => {
                ContentExpr::and(a.content_projection(), b.content_projection())
            }
            QueryExpr::Or(a, b) => ContentExpr::or(a.content_projection(), b.content_projection()),
            QueryExpr::AndNot(a, b) => {
                ContentExpr::and_not(a.content_projection(), b.content_projection())
            }
            QueryExpr::Not(a) => ContentExpr::not(a.content_projection()),
            QueryExpr::All => ContentExpr::All,
        }
    }
}

/// A complete query: the expression plus the original source text (kept for
/// user-facing display and re-parsing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The parsed expression.
    pub expr: QueryExpr,
    /// The source text the user wrote.
    pub source: String,
}

impl Query {
    /// Binds every path reference to a UID via `resolve`, so the stored
    /// query survives renames (§2.5). Fails if any path cannot be resolved.
    pub fn bind_paths<E>(
        &mut self,
        mut resolve: impl FnMut(&VPath) -> Result<DirUid, E>,
    ) -> Result<(), E> {
        let expr = std::mem::replace(&mut self.expr, QueryExpr::All);
        let mut err = None;
        let bound = expr.map(&mut |e| match e {
            QueryExpr::Dir(DirRef::Path(p)) if err.is_none() => match resolve(&p) {
                Ok(uid) => QueryExpr::Dir(DirRef::Uid(uid)),
                Err(e) => {
                    err = Some(e);
                    QueryExpr::Dir(DirRef::Path(p))
                }
            },
            other => other,
        });
        self.expr = bound;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Renders the query with UIDs translated back to current path names
    /// via `path_of` (the user-visible form; unknown UIDs render as
    /// `uid:N`).
    pub fn display_with(&self, mut path_of: impl FnMut(DirUid) -> Option<VPath>) -> String {
        fn go(e: &QueryExpr, path_of: &mut impl FnMut(DirUid) -> Option<VPath>) -> String {
            match e {
                QueryExpr::Term(t) => t.clone(),
                QueryExpr::Field(n, v) => format!("{n}:{v}"),
                QueryExpr::Phrase(ws) => format!("\"{}\"", ws.join(" ")),
                QueryExpr::Approx(t, k) => format!("~{k}:{t}"),
                QueryExpr::Prefix(t) => format!("{t}*"),
                QueryExpr::Dir(DirRef::Path(p)) => format!("path({p})"),
                QueryExpr::Dir(DirRef::Uid(uid)) => match path_of(*uid) {
                    Some(p) => format!("path({p})"),
                    None => format!("{uid}"),
                },
                QueryExpr::And(a, b) => {
                    format!("({} AND {})", go(a, path_of), go(b, path_of))
                }
                QueryExpr::Or(a, b) => format!("({} OR {})", go(a, path_of), go(b, path_of)),
                QueryExpr::AndNot(a, b) => {
                    format!("({} AND NOT {})", go(a, path_of), go(b, path_of))
                }
                QueryExpr::Not(a) => format!("(NOT {})", go(a, path_of)),
                QueryExpr::All => "*".to_string(),
            }
        }
        go(&self.expr, &mut path_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn bind_paths_rewrites_to_uids() {
        let mut q = Query {
            expr: QueryExpr::and(
                QueryExpr::Term("x".into()),
                QueryExpr::Dir(DirRef::Path(p("/mail"))),
            ),
            source: "x AND path(/mail)".into(),
        };
        q.bind_paths(|path| {
            assert_eq!(path, &p("/mail"));
            Ok::<_, ()>(DirUid(7))
        })
        .unwrap();
        assert_eq!(q.expr.referenced_uids(), vec![DirUid(7)]);
        assert!(q.expr.unbound_paths().is_empty());
    }

    #[test]
    fn bind_paths_propagates_errors() {
        let mut q = Query {
            expr: QueryExpr::Dir(DirRef::Path(p("/gone"))),
            source: "path(/gone)".into(),
        };
        assert_eq!(
            q.bind_paths(|_| Err::<DirUid, _>("no such dir")),
            Err("no such dir")
        );
    }

    #[test]
    fn content_projection_drops_dir_refs() {
        let e = QueryExpr::and(
            QueryExpr::Term("fingerprint".into()),
            QueryExpr::Dir(DirRef::Uid(DirUid(3))),
        );
        assert_eq!(
            e.content_projection(),
            ContentExpr::and(ContentExpr::Term("fingerprint".into()), ContentExpr::All)
        );
    }

    #[test]
    fn display_resolves_uids_to_paths() {
        let q = Query {
            expr: QueryExpr::and_not(
                QueryExpr::Dir(DirRef::Uid(DirUid(1))),
                QueryExpr::Term("murder".into()),
            ),
            source: String::new(),
        };
        let shown = q.display_with(|uid| (uid == DirUid(1)).then(|| p("/fingerprint")));
        assert_eq!(shown, "(path(/fingerprint) AND NOT murder)");
        let unknown = q.display_with(|_| None);
        assert_eq!(unknown, "(uid:1 AND NOT murder)");
    }

    #[test]
    fn referenced_uids_deduplicates() {
        let e = QueryExpr::or(
            QueryExpr::Dir(DirRef::Uid(DirUid(2))),
            QueryExpr::Dir(DirRef::Uid(DirUid(2))),
        );
        assert_eq!(e.referenced_uids(), vec![DirUid(2)]);
        assert!(e.has_dir_refs());
        assert!(!QueryExpr::Term("a".into()).has_dir_refs());
    }
}
