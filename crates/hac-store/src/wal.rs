//! Write-ahead-log record framing.
//!
//! The WAL is one append-only byte stream (see
//! [`ContentStore::wal_append`](crate::ContentStore::wal_append)); this
//! module frames opaque payloads on top of it:
//!
//! ```text
//! record := 'W' | len:u32le | payload[len] | check:8  (first 8 bytes of sha256(payload))
//! ```
//!
//! The reader is deliberately tolerant: a torn tail — truncated length,
//! truncated payload, or checksum mismatch from a crash mid-append — is
//! *dropped*, and everything before it is returned. Commit ordering
//! guarantees a dropped tail is always re-derivable from the source of
//! truth (the next `ssync` pass re-discovers the un-persisted delta via
//! document version comparison), so torn ≠ lost.

use crate::hash::ContentHash;

const RECORD_TAG: u8 = b'W';

/// Frame one payload as a WAL record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 13);
    out.push(RECORD_TAG);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&ContentHash::of(payload).short());
    out
}

/// The result of scanning a WAL byte stream.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn/corrupt tail was dropped.
    pub torn: bool,
}

/// Decode as many intact records as the stream holds, stopping (and
/// flagging `torn`) at the first damaged one.
pub fn decode_records(mut bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    while !bytes.is_empty() {
        if bytes.len() < 5 || bytes[0] != RECORD_TAG {
            scan.torn = true;
            break;
        }
        let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
        let total = 5 + len + 8;
        if bytes.len() < total {
            scan.torn = true;
            break;
        }
        let payload = &bytes[5..5 + len];
        let check = &bytes[5 + len..total];
        if ContentHash::of(payload).short() != check {
            scan.torn = true;
            break;
        }
        scan.records.push(payload.to_vec());
        bytes = &bytes[total..];
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"first"));
        log.extend_from_slice(&encode_record(b""));
        log.extend_from_slice(&encode_record(b"third record, longer"));
        let scan = decode_records(&log);
        assert!(!scan.torn);
        assert_eq!(
            scan.records,
            vec![
                b"first".to_vec(),
                b"".to_vec(),
                b"third record, longer".to_vec()
            ]
        );
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"intact"));
        let second = encode_record(b"interrupted mid-write");
        // Crash truncated the second record at every possible point: the
        // intact prefix must always survive.
        for cut in 1..second.len() {
            let mut torn = log.clone();
            torn.extend_from_slice(&second[..cut]);
            let scan = decode_records(&torn);
            assert!(scan.torn, "cut at {cut} not flagged");
            assert_eq!(scan.records, vec![b"intact".to_vec()], "cut at {cut}");
        }
    }

    #[test]
    fn bitflip_in_payload_is_caught() {
        let mut log = encode_record(b"payload under test");
        log[7] ^= 0x40;
        let scan = decode_records(&log);
        assert!(scan.torn);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = decode_records(&[]);
        assert!(!scan.torn);
        assert!(scan.records.is_empty());
    }
}
