//! The content-addressed object store.
//!
//! A [`ContentStore`] keeps three kinds of state:
//!
//! * **objects** — immutable blobs addressed by [`ContentHash`]. Writes
//!   are idempotent; reads re-hash the bytes so corruption is detected
//!   at the moment it matters, not at scrub time.
//! * **refs** — tiny mutable name → hash pointers (`current` points at
//!   the live manifest). Updating a ref is the only mutation the commit
//!   protocol depends on being atomic.
//! * **wal** — a single append-only byte log consumed by
//!   [`crate::wal`]'s record framing. It makes the multi-object commit
//!   (segment + manifest + ref swap) atomic-in-effect: a crash between
//!   any two steps leaves the delta replayable from the log.
//!
//! Two implementations ship here: [`FileStore`] on a real directory
//! (tmp+rename writes, fsync discipline) and [`MemStore`] for tests and
//! for embedding behind other byte substrates.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use crate::hash::ContentHash;

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// No object with that hash.
    NotFound(ContentHash),
    /// No ref with that name.
    RefNotFound(String),
    /// Stored bytes no longer hash to their address, or a manifest /
    /// record failed structural validation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(String),
    /// A fault injector has "killed the process": every subsequent
    /// operation on this handle fails with this error.
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(h) => write!(f, "object not found: {h}"),
            StoreError::RefNotFound(n) => write!(f, "ref not found: {n}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store data: {m}"),
            StoreError::Io(m) => write!(f, "store i/o error: {m}"),
            StoreError::Crashed => write!(f, "store handle crashed by fault injection"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A stored object's identity and bookkeeping, as reported by
/// [`ContentStore::objects`].
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// The object's content address.
    pub hash: ContentHash,
    /// Size in bytes.
    pub bytes: u64,
    /// Age in backend-native units (seconds for [`FileStore`], write
    /// ticks for [`MemStore`]). Only compared against a grace period of
    /// the same unit, so the unit never leaves the backend.
    pub age: u64,
}

/// The storage abstraction the index engine persists through.
///
/// All methods take `&self`; implementations are internally
/// synchronized. Object writes must be atomic (all-or-nothing visible)
/// and `set_ref` must atomically replace the pointer; the WAL is the
/// only append-in-place structure and its reader tolerates torn tails.
pub trait ContentStore: Send + Sync {
    /// Store a blob, returning its address. Idempotent.
    fn put(&self, bytes: &[u8]) -> StoreResult<ContentHash>;

    /// Store a blob at a caller-asserted address *without* verifying
    /// that the bytes hash to it. This is the trusted-write path for
    /// replication (the sender already hashed) and for fault injection
    /// (placing deliberately torn bytes at a real address). [`get`]
    /// still verifies, so a lying `put_raw` is caught on read.
    ///
    /// [`get`]: ContentStore::get
    fn put_raw(&self, hash: ContentHash, bytes: &[u8]) -> StoreResult<()>;

    /// Fetch a blob and verify it still hashes to its address.
    fn get(&self, hash: ContentHash) -> StoreResult<Vec<u8>>;

    /// Whether an object exists (no integrity check).
    fn contains(&self, hash: ContentHash) -> StoreResult<bool>;

    /// Remove an object if present; `Ok(true)` if something was removed.
    fn remove(&self, hash: ContentHash) -> StoreResult<bool>;

    /// Enumerate every stored object (for GC and status).
    fn objects(&self) -> StoreResult<Vec<ObjectInfo>>;

    /// Atomically point `name` at `hash`.
    fn set_ref(&self, name: &str, hash: ContentHash) -> StoreResult<()>;

    /// Read a ref, `Ok(None)` if it was never set.
    fn get_ref(&self, name: &str) -> StoreResult<Option<ContentHash>>;

    /// Read the whole WAL (empty vec if none).
    fn wal_load(&self) -> StoreResult<Vec<u8>>;

    /// Durably append bytes to the WAL.
    fn wal_append(&self, bytes: &[u8]) -> StoreResult<()>;

    /// Truncate the WAL to empty.
    fn wal_reset(&self) -> StoreResult<()>;
}

/// Process-unique suffix for temp files so concurrent writers never
/// collide even on the same hash.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A [`ContentStore`] over a real directory tree:
///
/// ```text
/// root/objects/{2-hex}/{62-hex}   immutable blobs
/// root/refs/{name}                hex hash, one line
/// root/wal                        append-only record log
/// root/tmp/                       staging for atomic renames
/// ```
///
/// Every object and ref write goes tmp → fsync(file) → rename →
/// fsync(parent dir), so a visible object is always complete. WAL
/// appends fsync before returning.
pub struct FileStore {
    root: PathBuf,
}

impl FileStore {
    /// Open (creating directories as needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> StoreResult<FileStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("refs"))?;
        fs::create_dir_all(root.join("tmp"))?;
        Ok(FileStore { root })
    }

    /// Absolute path of the object with this hash.
    pub fn object_path(&self, hash: ContentHash) -> PathBuf {
        self.root
            .join("objects")
            .join(hash.prefix())
            .join(hash.remainder())
    }

    fn wal_path(&self) -> PathBuf {
        self.root.join("wal")
    }

    fn fsync_dir(dir: &Path) -> StoreResult<()> {
        // Directory fsync is what makes the rename itself durable.
        fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    fn atomic_write(&self, dest: &Path, bytes: &[u8]) -> StoreResult<()> {
        let parent = dest
            .parent()
            .ok_or_else(|| StoreError::Io("destination has no parent".into()))?;
        fs::create_dir_all(parent)?;
        let tmp = self.root.join("tmp").join(format!(
            "w{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, dest)?;
        Self::fsync_dir(parent)?;
        Ok(())
    }
}

impl ContentStore for FileStore {
    fn put(&self, bytes: &[u8]) -> StoreResult<ContentHash> {
        let hash = ContentHash::of(bytes);
        let dest = self.object_path(hash);
        // Idempotent, but *healing*: an existing object that no longer
        // matches its address (torn write at a real address) is rewritten,
        // not trusted — otherwise recovery's re-put of a WAL record could
        // leave a corrupt object live under a fresh manifest.
        if fs::read(&dest).ok().as_deref() != Some(bytes) {
            self.atomic_write(&dest, bytes)?;
        }
        Ok(hash)
    }

    fn put_raw(&self, hash: ContentHash, bytes: &[u8]) -> StoreResult<()> {
        self.atomic_write(&self.object_path(hash), bytes)
    }

    fn get(&self, hash: ContentHash) -> StoreResult<Vec<u8>> {
        let path = self.object_path(hash);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(hash))
            }
            Err(e) => return Err(e.into()),
        };
        if ContentHash::of(&bytes) != hash {
            return Err(StoreError::Corrupt(format!(
                "object {hash} fails content verification"
            )));
        }
        Ok(bytes)
    }

    fn contains(&self, hash: ContentHash) -> StoreResult<bool> {
        Ok(self.object_path(hash).exists())
    }

    fn remove(&self, hash: ContentHash) -> StoreResult<bool> {
        let path = self.object_path(hash);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn objects(&self) -> StoreResult<Vec<ObjectInfo>> {
        let mut out = Vec::new();
        let objects = self.root.join("objects");
        for shard in fs::read_dir(&objects)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            let prefix = shard.file_name().to_string_lossy().into_owned();
            for entry in fs::read_dir(shard.path())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(hash) = ContentHash::parse(&format!("{prefix}{name}")) else {
                    continue;
                };
                let meta = entry.metadata()?;
                let age = meta
                    .modified()
                    .ok()
                    .and_then(|m| SystemTime::now().duration_since(m).ok())
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                out.push(ObjectInfo {
                    hash,
                    bytes: meta.len(),
                    age,
                });
            }
        }
        Ok(out)
    }

    fn set_ref(&self, name: &str, hash: ContentHash) -> StoreResult<()> {
        self.atomic_write(&self.root.join("refs").join(name), hash.to_hex().as_bytes())
    }

    fn get_ref(&self, name: &str) -> StoreResult<Option<ContentHash>> {
        let path = self.root.join("refs").join(name);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        ContentHash::parse(text.trim())
            .map(Some)
            .ok_or_else(|| StoreError::Corrupt(format!("ref {name} is not a hash")))
    }

    fn wal_load(&self) -> StoreResult<Vec<u8>> {
        match fs::read(self.wal_path()) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn wal_append(&self, bytes: &[u8]) -> StoreResult<()> {
        let mut f = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.wal_path())?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    }

    fn wal_reset(&self) -> StoreResult<()> {
        match fs::remove_file(self.wal_path()) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Self::fsync_dir(&self.root)
    }
}

#[derive(Default)]
struct MemInner {
    objects: HashMap<ContentHash, (Vec<u8>, u64)>,
    refs: HashMap<String, ContentHash>,
    wal: Vec<u8>,
    /// Logical write clock; object "age" is measured in these ticks.
    tick: u64,
}

/// An in-memory [`ContentStore`] for tests and fault-injection
/// harnesses. Object age is counted in write ticks, so `gc(grace)`
/// semantics are exercised deterministically.
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<MemInner>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl ContentStore for MemStore {
    fn put(&self, bytes: &[u8]) -> StoreResult<ContentHash> {
        let hash = ContentHash::of(bytes);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // Heal a mismatched (torn) object rather than trusting presence.
        match inner.objects.get(&hash) {
            Some((existing, _)) if existing == bytes => {}
            _ => {
                inner.objects.insert(hash, (bytes.to_vec(), tick));
            }
        }
        Ok(hash)
    }

    fn put_raw(&self, hash: ContentHash, bytes: &[u8]) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.objects.insert(hash, (bytes.to_vec(), tick));
        Ok(())
    }

    fn get(&self, hash: ContentHash) -> StoreResult<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        let (bytes, _) = inner.objects.get(&hash).ok_or(StoreError::NotFound(hash))?;
        if ContentHash::of(bytes) != hash {
            return Err(StoreError::Corrupt(format!(
                "object {hash} fails content verification"
            )));
        }
        Ok(bytes.clone())
    }

    fn contains(&self, hash: ContentHash) -> StoreResult<bool> {
        Ok(self.inner.lock().unwrap().objects.contains_key(&hash))
    }

    fn remove(&self, hash: ContentHash) -> StoreResult<bool> {
        Ok(self.inner.lock().unwrap().objects.remove(&hash).is_some())
    }

    fn objects(&self) -> StoreResult<Vec<ObjectInfo>> {
        let inner = self.inner.lock().unwrap();
        let now = inner.tick;
        Ok(inner
            .objects
            .iter()
            .map(|(hash, (bytes, tick))| ObjectInfo {
                hash: *hash,
                bytes: bytes.len() as u64,
                age: now.saturating_sub(*tick),
            })
            .collect())
    }

    fn set_ref(&self, name: &str, hash: ContentHash) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        inner.refs.insert(name.to_string(), hash);
        Ok(())
    }

    fn get_ref(&self, name: &str) -> StoreResult<Option<ContentHash>> {
        Ok(self.inner.lock().unwrap().refs.get(name).copied())
    }

    fn wal_load(&self) -> StoreResult<Vec<u8>> {
        Ok(self.inner.lock().unwrap().wal.clone())
    }

    fn wal_append(&self, bytes: &[u8]) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        inner.wal.extend_from_slice(bytes);
        Ok(())
    }

    fn wal_reset(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        inner.wal.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ContentStore) {
        // put / get / contains / idempotence.
        let h = store.put(b"hello segment").unwrap();
        assert_eq!(h, ContentHash::of(b"hello segment"));
        assert_eq!(store.get(h).unwrap(), b"hello segment");
        assert!(store.contains(h).unwrap());
        assert_eq!(store.put(b"hello segment").unwrap(), h);

        // Missing object.
        let missing = ContentHash::of(b"never stored");
        assert!(matches!(store.get(missing), Err(StoreError::NotFound(_))));
        assert!(!store.contains(missing).unwrap());

        // put_raw lies, get catches it.
        let fake = ContentHash::of(b"claimed content");
        store.put_raw(fake, b"actual different bytes").unwrap();
        assert!(matches!(store.get(fake), Err(StoreError::Corrupt(_))));

        // Refs.
        assert_eq!(store.get_ref("current").unwrap(), None);
        store.set_ref("current", h).unwrap();
        assert_eq!(store.get_ref("current").unwrap(), Some(h));
        let h2 = store.put(b"second").unwrap();
        store.set_ref("current", h2).unwrap();
        assert_eq!(store.get_ref("current").unwrap(), Some(h2));

        // WAL.
        assert!(store.wal_load().unwrap().is_empty());
        store.wal_append(b"rec1").unwrap();
        store.wal_append(b"rec2").unwrap();
        assert_eq!(store.wal_load().unwrap(), b"rec1rec2");
        store.wal_reset().unwrap();
        assert!(store.wal_load().unwrap().is_empty());

        // Enumeration + removal.
        let listed = store.objects().unwrap();
        assert!(listed.iter().any(|o| o.hash == h));
        assert!(listed.iter().any(|o| o.hash == h2));
        assert!(store.remove(h2).unwrap());
        assert!(!store.remove(h2).unwrap());
        assert!(!store.contains(h2).unwrap());
    }

    #[test]
    fn memstore_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn filestore_contract() {
        let dir = std::env::temp_dir().join(format!(
            "hac-store-test-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = FileStore::open(&dir).unwrap();
        exercise(&store);

        // Layout: objects/{2-hex}/{62-hex}.
        let h = store.put(b"layout check").unwrap();
        let path = store.object_path(h);
        assert!(path.ends_with(Path::new("objects").join(h.prefix()).join(h.remainder())));
        assert!(path.exists());

        // On-disk corruption is caught at read time.
        fs::write(&path, b"scribbled over").unwrap();
        assert!(matches!(store.get(h), Err(StoreError::Corrupt(_))));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memstore_ages_advance_with_writes() {
        let store = MemStore::new();
        let old = store.put(b"old").unwrap();
        for i in 0..5u8 {
            store.put(&[i]).unwrap();
        }
        let new = store.put(b"new").unwrap();
        let objects = store.objects().unwrap();
        let age = |h: ContentHash| objects.iter().find(|o| o.hash == h).unwrap().age;
        assert!(age(old) > age(new));
        assert_eq!(age(new), 0);
    }
}
