//! # hac-store — content-addressed segment storage for the HAC index
//!
//! The durability layer under [`hac-index`]: an LSM-flavoured design
//! where the index on "disk" is
//!
//! * an optional **base** object (full index snapshot),
//! * an ordered run of immutable **segment** objects (delta logs sealed
//!   from `ssync` tokenize batches),
//! * a **manifest** object listing both by content hash,
//! * one mutable **ref** (`current`) naming the live manifest, and
//! * a **WAL** that makes the multi-object commit crash-atomic.
//!
//! Everything immutable is addressed by the SHA-256 of its bytes
//! ([`ContentHash`]), which buys idempotent writes, corruption detection
//! on read, and — later — replication by shipping hashes. This crate is
//! storage only: it knows bytes, hashes, manifests, and logs. What the
//! bytes *mean* (segments, snapshots) lives in `hac-index`; the commit
//! and recovery protocol lives in `hac-core`.
//!
//! The commit protocol, for reference (each step durable before the next):
//!
//! 1. frame the sealed segment into the WAL ([`wal::encode_record`]);
//! 2. `put` the segment object;
//! 3. `put` a new manifest listing it;
//! 4. `set_ref("current", manifest)` — the commit point;
//! 5. `wal_reset`.
//!
//! A crash before 4 leaves `current` on the old manifest and the delta
//! in the WAL (replayable); a crash after 4 has already committed; a
//! torn WAL tail from a crash inside 1 is dropped by the tolerant
//! reader and re-derived by the next sync pass. Unreferenced objects
//! left by any crash are garbage, swept by grace-period GC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod hash;
pub mod manifest;
pub mod store;
pub mod wal;

pub use fault::{CrashStyle, FaultStore};
pub use hash::{sha256, ContentHash};
pub use manifest::{Manifest, SegmentEntry, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use store::{ContentStore, FileStore, MemStore, ObjectInfo, StoreError, StoreResult};
pub use wal::{decode_records, encode_record, WalScan};
