//! Content hashing.
//!
//! Every object in a [`ContentStore`](crate::ContentStore) is addressed
//! by the hash of its bytes, so the hash *is* the identity: two equal
//! blobs are one object, a corrupted blob no longer matches its own
//! address, and replication (ship-segments-by-hash) needs no coordination.
//!
//! The digest is SHA-256, implemented here from the FIPS 180-4
//! specification because this build environment vendors no external
//! crates. Only the fixed-size one-shot interface is exposed; the store
//! never needs streaming.

use std::fmt;

/// The 256-bit content address of an object.
///
/// Displayed and parsed as 64 lowercase hex digits. The first two digits
/// ([`prefix`](ContentHash::prefix)) shard the object directory so no
/// single directory grows unboundedly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Hash a byte string.
    pub fn of(bytes: &[u8]) -> ContentHash {
        ContentHash(sha256(bytes))
    }

    /// The two-hex-digit directory shard (`objects/{prefix}/{rest}`).
    pub fn prefix(&self) -> String {
        format!("{:02x}", self.0[0])
    }

    /// The remaining 62 hex digits (the file name inside the shard).
    pub fn remainder(&self) -> String {
        let mut s = String::with_capacity(62);
        for b in &self.0[1..] {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Full 64-digit lowercase hex form.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse the 64-digit hex form produced by [`to_hex`](Self::to_hex).
    pub fn parse(s: &str) -> Option<ContentHash> {
        let s = s.as_bytes();
        if s.len() != 64 {
            return None;
        }
        let nib = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                b'A'..=b'F' => Some(c - b'A' + 10),
                _ => None,
            }
        };
        let mut out = [0u8; 32];
        for (i, chunk) in s.chunks(2).enumerate() {
            out[i] = nib(chunk[0])? << 4 | nib(chunk[1])?;
        }
        Some(ContentHash(out))
    }

    /// The first 8 bytes of the digest, for compact record checksums.
    pub fn short(&self) -> [u8; 8] {
        let mut s = [0u8; 8];
        s.copy_from_slice(&self.0[..8]);
        s
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({}…)", &self.to_hex()[..12])
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// One-shot SHA-256 (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Pad: message || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        ContentHash::of(bytes).to_hex()
    }

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block message (len > 64).
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&million_a),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_roundtrip_and_shard() {
        let h = ContentHash::of(b"segment 42");
        assert_eq!(ContentHash::parse(&h.to_hex()), Some(h));
        assert_eq!(h.prefix().len(), 2);
        assert_eq!(h.remainder().len(), 62);
        assert_eq!(format!("{}{}", h.prefix(), h.remainder()), h.to_hex());
        assert!(ContentHash::parse("zz").is_none());
        assert!(ContentHash::parse(&"0".repeat(63)).is_none());
    }
}
