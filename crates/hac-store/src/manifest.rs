//! The manifest: the single source of truth for what the index *is*.
//!
//! A manifest lists an optional **base** object (a full index snapshot)
//! and an ordered run of **segment** objects (delta logs), all by
//! content hash. The manifest itself is content-addressed and immutable;
//! "the current index" is whatever the `current` ref points at, and
//! moving that ref is the commit point for every state change. Old
//! manifests, superseded segments, and bases become unreferenced objects
//! for GC to sweep.
//!
//! Encoding is a fixed hand-rolled binary layout (magic + version byte
//! up front) rather than the VFS serde codec: the manifest is the
//! recovery *root*, so it must be decodable before anything else and
//! must fail loudly — not positionally — when its shape evolves.

use crate::hash::ContentHash;
use crate::store::{StoreError, StoreResult};

/// Manifest wire magic.
pub const MANIFEST_MAGIC: [u8; 4] = *b"HACM";
/// Current manifest format version. v2 added `committed_at_micros`
/// (wall-clock commit stamp) after `seq`; v1 manifests still decode,
/// reporting a zero stamp.
pub const MANIFEST_VERSION: u8 = 2;

/// One live segment in manifest order (ascending `seq`; replay order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Content address of the segment object.
    pub hash: ContentHash,
    /// Commit sequence number (monotonic across the store's life).
    pub seq: u64,
    /// Documents touched (adds + removes) — the merge policy's size.
    pub docs: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Index generation after this segment was applied.
    pub generation: u64,
}

/// The manifest structure. See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic manifest revision (bumped on every commit/merge/checkpoint).
    pub seq: u64,
    /// Wall-clock time (µs since the Unix epoch) this revision was
    /// written, stamped by the committing store. Zero for pre-v2
    /// manifests and for manifests never committed. Replicas use the
    /// delta against their own clock as the wall-clock half of lag
    /// telemetry (`hac_fed_replica_lag_us`), so it is advisory — clock
    /// skew makes it an estimate, never a correctness input.
    pub committed_at_micros: u64,
    /// Full index snapshot all segments replay on top of, if any.
    pub base: Option<ContentHash>,
    /// Doc→path sidecar for the base snapshot, if any: the paths the
    /// base's documents were indexed under, written at checkpoint time so
    /// recovery can rebuild its path map without a namespace walk.
    pub paths: Option<ContentHash>,
    /// Live delta segments, ascending `seq`.
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    /// Total documents covered by live segments.
    pub fn segment_docs(&self) -> u64 {
        self.segments.iter().map(|s| s.docs).sum()
    }

    /// The highest committed segment seq (0 if none).
    pub fn last_segment_seq(&self) -> u64 {
        self.segments.last().map(|s| s.seq).unwrap_or(0)
    }

    /// The segments a replica that has already applied `applied` (by
    /// content hash) still needs, in replay order. The export half of
    /// segment shipping: a replica fetches the primary's manifest, diffs
    /// by hash — hashes survive merges and checkpoints changing *around*
    /// a segment, because the segment object itself is immutable — and
    /// pulls exactly the missing objects.
    pub fn missing_segments<F>(&self, applied: F) -> Vec<&SegmentEntry>
    where
        F: Fn(&ContentHash) -> bool,
    {
        self.segments.iter().filter(|s| !applied(&s.hash)).collect()
    }

    /// Serialize to the versioned binary layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 64);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.committed_at_micros.to_le_bytes());
        for link in [self.base, self.paths] {
            match link {
                Some(h) => {
                    out.push(1);
                    out.extend_from_slice(&h.0);
                }
                None => out.push(0),
            }
        }
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.hash.0);
            out.extend_from_slice(&s.seq.to_le_bytes());
            out.extend_from_slice(&s.docs.to_le_bytes());
            out.extend_from_slice(&s.bytes.to_le_bytes());
            out.extend_from_slice(&s.generation.to_le_bytes());
        }
        out
    }

    /// Decode a manifest, validating magic, version, and arity.
    pub fn decode(bytes: &[u8]) -> StoreResult<Manifest> {
        let corrupt = |m: &str| StoreError::Corrupt(format!("manifest: {m}"));
        let mut cur = bytes;
        let mut take = |n: usize, what: &str| -> StoreResult<&[u8]> {
            if cur.len() < n {
                return Err(corrupt(&format!("truncated at {what}")));
            }
            let (head, tail) = cur.split_at(n);
            cur = tail;
            Ok(head)
        };

        if take(4, "magic")? != MANIFEST_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = take(1, "version")?[0];
        if version == 0 || version > MANIFEST_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap());
        let hash_of = |b: &[u8]| {
            let mut h = [0u8; 32];
            h.copy_from_slice(b);
            ContentHash(h)
        };

        let seq = u64_of(take(8, "seq")?);
        let committed_at_micros = if version >= 2 {
            u64_of(take(8, "commit stamp")?)
        } else {
            0
        };
        let base = match take(1, "base flag")?[0] {
            0 => None,
            1 => Some(hash_of(take(32, "base hash")?)),
            _ => return Err(corrupt("bad base flag")),
        };
        let paths = match take(1, "paths flag")?[0] {
            0 => None,
            1 => Some(hash_of(take(32, "paths hash")?)),
            _ => return Err(corrupt("bad paths flag")),
        };
        let count = u32::from_le_bytes(take(4, "segment count")?.try_into().unwrap()) as usize;
        let mut segments = Vec::with_capacity(count.min(4096));
        for i in 0..count {
            segments.push(SegmentEntry {
                hash: hash_of(take(32, "segment hash")?),
                seq: u64_of(take(8, "segment seq")?),
                docs: u64_of(take(8, "segment docs")?),
                bytes: u64_of(take(8, "segment bytes")?),
                generation: u64_of(take(8, "segment generation")?),
            });
            if i > 0 && segments[i].seq <= segments[i - 1].seq {
                return Err(corrupt("segment seqs not ascending"));
            }
        }
        if !cur.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Manifest {
            seq,
            committed_at_micros,
            base,
            paths,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            seq: 7,
            committed_at_micros: 1_700_000_000_000_000,
            base: Some(ContentHash::of(b"base snapshot")),
            paths: Some(ContentHash::of(b"paths sidecar")),
            segments: vec![
                SegmentEntry {
                    hash: ContentHash::of(b"seg 1"),
                    seq: 3,
                    docs: 120,
                    bytes: 4096,
                    generation: 120,
                },
                SegmentEntry {
                    hash: ContentHash::of(b"seg 2"),
                    seq: 5,
                    docs: 4,
                    bytes: 512,
                    generation: 124,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        for m in [Manifest::default(), sample()] {
            assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        }
        assert_eq!(sample().segment_docs(), 124);
        assert_eq!(sample().last_segment_seq(), 5);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let full = sample().encode();
        for cut in 0..full.len() {
            assert!(
                Manifest::decode(&full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_trailing_rejected() {
        let mut b = sample().encode();
        b[0] = b'X';
        assert!(Manifest::decode(&b).is_err());

        let mut b = sample().encode();
        b[4] = 99;
        assert!(matches!(
            Manifest::decode(&b),
            Err(StoreError::Corrupt(m)) if m.contains("version 99")
        ));

        let mut b = sample().encode();
        b.push(0);
        assert!(Manifest::decode(&b).is_err());
    }

    #[test]
    fn missing_segments_diffs_by_hash() {
        let m = sample();
        let all: Vec<_> = m.missing_segments(|_| false);
        assert_eq!(all.len(), 2);
        let have = ContentHash::of(b"seg 1");
        let missing = m.missing_segments(|h| *h == have);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].seq, 5);
        assert!(m.missing_segments(|_| true).is_empty());
    }

    #[test]
    fn v1_manifests_still_decode_with_a_zero_stamp() {
        // Hand-build the v1 layout: no commit stamp after seq.
        let m = sample();
        let v2 = m.encode();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&v2[..4]); // magic
        v1.push(1); // version
        v1.extend_from_slice(&m.seq.to_le_bytes());
        v1.extend_from_slice(&v2[4 + 1 + 8 + 8..]); // skip the v2 stamp
        let back = Manifest::decode(&v1).unwrap();
        assert_eq!(back.committed_at_micros, 0, "v1 reports an absent stamp");
        assert_eq!(back.seq, m.seq);
        assert_eq!(back.segments, m.segments);
    }

    #[test]
    fn non_ascending_seqs_rejected() {
        let mut m = sample();
        m.segments[1].seq = 2;
        assert!(Manifest::decode(&m.encode()).is_err());
    }
}
