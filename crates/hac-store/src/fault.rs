//! Crash injection for recovery testing.
//!
//! [`FaultStore`] wraps any [`ContentStore`] and counts *mutating*
//! operations. When the count reaches a chosen budget the store
//! "crashes": that operation either fails cleanly or — in
//! [`CrashStyle::Torn`] — leaves a deliberately partial effect first
//! (half-written WAL append, truncated object at its real address), and
//! every operation afterwards fails with [`StoreError::Crashed`]. That
//! is the SIGKILL model: the process dies mid-commit and nothing else it
//! would have done happens.
//!
//! Recovery is then exercised by opening the *inner* store directly —
//! the durable state that survived the "machine" — and asserting the
//! replay path reconstructs a consistent index.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use crate::hash::ContentHash;
use crate::store::{ContentStore, ObjectInfo, StoreError, StoreResult};

/// What the crashing operation leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// The operation has no effect at all (power cut before any write).
    Fail,
    /// The operation leaves a *partial* effect where the medium allows
    /// one: a WAL append keeps only its first half, an object put lands
    /// truncated bytes at the correct address. Atomic operations
    /// (ref swap, reset, remove) cannot tear and behave like [`Fail`].
    Torn,
}

/// A [`ContentStore`] wrapper that kills the handle after a fixed number
/// of mutating operations. Reads pass through until the crash.
pub struct FaultStore {
    inner: Arc<dyn ContentStore>,
    /// Mutations remaining before the crash. Negative = unlimited.
    budget: AtomicI64,
    style: CrashStyle,
    crashed: AtomicBool,
    mutations: AtomicI64,
}

impl FaultStore {
    /// Crash after `budget` further mutating operations succeed (the
    /// `budget+1`-th mutation is the one that dies).
    pub fn new(inner: Arc<dyn ContentStore>, budget: u64, style: CrashStyle) -> FaultStore {
        FaultStore {
            inner,
            budget: AtomicI64::new(budget as i64),
            style,
            crashed: AtomicBool::new(false),
            mutations: AtomicI64::new(0),
        }
    }

    /// A pass-through wrapper that never crashes but still counts
    /// mutations — run the workload once through this to learn how many
    /// budgets are worth iterating.
    pub fn counting(inner: Arc<dyn ContentStore>) -> FaultStore {
        FaultStore {
            inner,
            budget: AtomicI64::new(-1),
            style: CrashStyle::Fail,
            crashed: AtomicBool::new(false),
            mutations: AtomicI64::new(0),
        }
    }

    /// Total mutating operations attempted through this handle.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed).max(0) as u64
    }

    /// Whether the injected crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Gate a mutating op: `Ok(())` to proceed, `Err` if this op crashes
    /// (after `tear` ran against the inner store, for torn media).
    fn gate(&self, tear: impl FnOnce(&dyn ContentStore)) -> StoreResult<()> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(StoreError::Crashed);
        }
        self.mutations.fetch_add(1, Ordering::Relaxed);
        let remaining = self.budget.load(Ordering::Relaxed);
        if remaining < 0 {
            return Ok(()); // unlimited
        }
        if remaining == 0 {
            self.crashed.store(true, Ordering::Relaxed);
            if self.style == CrashStyle::Torn {
                tear(&*self.inner);
            }
            return Err(StoreError::Crashed);
        }
        self.budget.store(remaining - 1, Ordering::Relaxed);
        Ok(())
    }

    fn check_alive(&self) -> StoreResult<()> {
        if self.crashed.load(Ordering::Relaxed) {
            Err(StoreError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl ContentStore for FaultStore {
    fn put(&self, bytes: &[u8]) -> StoreResult<ContentHash> {
        let hash = ContentHash::of(bytes);
        self.gate(|inner| {
            // Torn put: truncated bytes land at the *real* address, so
            // recovery must catch them via content verification.
            let _ = inner.put_raw(hash, &bytes[..bytes.len() / 2]);
        })?;
        self.inner.put(bytes)
    }

    fn put_raw(&self, hash: ContentHash, bytes: &[u8]) -> StoreResult<()> {
        self.gate(|inner| {
            let _ = inner.put_raw(hash, &bytes[..bytes.len() / 2]);
        })?;
        self.inner.put_raw(hash, bytes)
    }

    fn get(&self, hash: ContentHash) -> StoreResult<Vec<u8>> {
        self.check_alive()?;
        self.inner.get(hash)
    }

    fn contains(&self, hash: ContentHash) -> StoreResult<bool> {
        self.check_alive()?;
        self.inner.contains(hash)
    }

    fn remove(&self, hash: ContentHash) -> StoreResult<bool> {
        self.gate(|_| {})?;
        self.inner.remove(hash)
    }

    fn objects(&self) -> StoreResult<Vec<ObjectInfo>> {
        self.check_alive()?;
        self.inner.objects()
    }

    fn set_ref(&self, name: &str, hash: ContentHash) -> StoreResult<()> {
        self.gate(|_| {})?; // ref swap is atomic: it happens or it doesn't
        self.inner.set_ref(name, hash)
    }

    fn get_ref(&self, name: &str) -> StoreResult<Option<ContentHash>> {
        self.check_alive()?;
        self.inner.get_ref(name)
    }

    fn wal_load(&self) -> StoreResult<Vec<u8>> {
        self.check_alive()?;
        self.inner.wal_load()
    }

    fn wal_append(&self, bytes: &[u8]) -> StoreResult<()> {
        self.gate(|inner| {
            let _ = inner.wal_append(&bytes[..bytes.len() / 2]);
        })?;
        self.inner.wal_append(bytes)
    }

    fn wal_reset(&self) -> StoreResult<()> {
        self.gate(|_| {})?;
        self.inner.wal_reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn budget_counts_down_then_kills_everything() {
        let inner = Arc::new(MemStore::new());
        let faulty = FaultStore::new(inner.clone(), 2, CrashStyle::Fail);

        faulty.put(b"one").unwrap();
        faulty.put(b"two").unwrap();
        assert!(matches!(faulty.put(b"three"), Err(StoreError::Crashed)));
        assert!(faulty.has_crashed());
        // Dead handle: reads fail too.
        assert!(matches!(faulty.wal_load(), Err(StoreError::Crashed)));
        assert!(matches!(
            faulty.get(ContentHash::of(b"one")),
            Err(StoreError::Crashed)
        ));
        // The durable medium survives with only the pre-crash writes.
        assert_eq!(inner.get(ContentHash::of(b"one")).unwrap(), b"one");
        assert!(!inner.contains(ContentHash::of(b"three")).unwrap());
        assert_eq!(faulty.mutations(), 3);
    }

    #[test]
    fn torn_put_leaves_corrupt_object_at_real_address() {
        let inner = Arc::new(MemStore::new());
        let faulty = FaultStore::new(inner.clone(), 0, CrashStyle::Torn);
        assert!(faulty.put(b"a segment worth of bytes").is_err());
        let addr = ContentHash::of(b"a segment worth of bytes");
        assert!(inner.contains(addr).unwrap());
        assert!(matches!(inner.get(addr), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn torn_wal_append_keeps_half() {
        let inner = Arc::new(MemStore::new());
        let faulty = FaultStore::new(inner.clone(), 0, CrashStyle::Torn);
        assert!(faulty.wal_append(b"0123456789").is_err());
        assert_eq!(inner.wal_load().unwrap(), b"01234");
    }

    #[test]
    fn fail_style_crash_has_no_effect() {
        let inner = Arc::new(MemStore::new());
        let faulty = FaultStore::new(inner.clone(), 0, CrashStyle::Fail);
        assert!(faulty.wal_append(b"0123456789").is_err());
        assert!(inner.wal_load().unwrap().is_empty());
    }

    #[test]
    fn counting_mode_never_crashes() {
        let faulty = FaultStore::counting(Arc::new(MemStore::new()));
        for i in 0..100u32 {
            faulty.put(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(faulty.mutations(), 100);
        assert!(!faulty.has_crashed());
    }
}
