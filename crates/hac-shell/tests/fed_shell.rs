//! End-to-end `fed` command suite: one shell serves its corpus as a
//! sharded federation, a second shell mounts it with `mount … fed://` and
//! drives semantic directories over it — the full operator path from
//! `fed serve` to `ls` on a federated mount, plus `fed status` on both
//! sides and `fed stop` teardown.

use hac_shell::Shell;

/// Pulls the `mount with: mount <dir> fed://ADDR/NS` hint out of the
/// `fed serve` output.
fn mount_url(serve_output: &str) -> String {
    serve_output
        .lines()
        .find_map(|l| l.strip_prefix("mount with: mount <dir> "))
        .expect("fed serve must print a mount hint")
        .to_string()
}

#[test]
fn fed_serve_mount_query_status_stop_round_trip() {
    // Server side: a corpus, synced, sharded three ways.
    let mut server = Shell::new();
    server.exec("mkdir /docs").unwrap();
    server
        .exec("write /docs/a.txt fingerprint ridge patterns")
        .unwrap();
    server
        .exec("write /docs/b.txt fingerprint whorl atlas")
        .unwrap();
    server.exec("write /docs/c.txt grocery list").unwrap();
    server.exec("ssync").unwrap();
    let served = server.exec("fed serve 127.0.0.1:0 lib 3 /docs").unwrap();
    assert!(served.contains("serving lib across 3 shards"), "{served}");
    let url = mount_url(&served);

    // The serving side reports its shard listeners.
    let status = server.exec("fed status").unwrap();
    assert!(status.contains("serving 3 shards"), "{status}");

    // Client side: bootstrap the whole federation from the one address.
    let mut client = Shell::new();
    client.exec("mkdir /mnt").unwrap();
    let mounted = client.exec(&format!("mount /mnt {url}")).unwrap();
    assert!(
        mounted.contains("mounted federated lib") && mounted.contains("3 shards"),
        "{mounted}"
    );

    // A semantic directory over the federated mount unions all shards:
    // both fingerprint docs land regardless of shard placement.
    client.exec("smkdir /q fingerprint").unwrap();
    client.exec("ssync").unwrap();
    let ls = client.exec("ls /q").unwrap();
    assert!(ls.contains("a.txt"), "{ls}");
    assert!(ls.contains("b.txt"), "{ls}");
    assert!(!ls.contains("c.txt"), "{ls}");

    // The client sees the coordinator's view: per-shard health, complete
    // last result.
    let status = client.exec("fed status").unwrap();
    assert!(
        status.contains("federation lib (generation 2, last result complete)"),
        "{status}"
    );
    assert!(status.contains("lib.0 @ "), "{status}");
    assert!(status.contains("lib.2 @ "), "{status}");

    // Reading a hit routes the fetch to the owning shard.
    let body = client.exec("cat /q/a.txt").unwrap();
    assert!(body.contains("fingerprint ridge"), "{body}");

    // Teardown is symmetric with serve.
    let stopped = server.exec("fed stop").unwrap();
    assert!(stopped.contains("stopped 3 shard servers"), "{stopped}");
    assert_eq!(
        server.exec("fed status").unwrap(),
        "no federation running\n"
    );
}

#[test]
fn fed_usage_errors_are_caught_before_any_socket_work() {
    let mut sh = Shell::new();
    assert!(sh.exec("fed").is_err());
    assert!(sh.exec("fed serve 127.0.0.1:0 lib 0").is_err(), "0 shards");
    assert!(
        sh.exec("fed serve 127.0.0.1:0 lib 65").is_err(),
        "too many shards"
    );
    assert!(sh.exec("fed serve no-port lib 2").is_err(), "bad addr");
    assert!(
        sh.exec("mount /m fed://127.0.0.1:1").is_err(),
        "no namespace"
    );
    assert_eq!(sh.exec("fed stop").unwrap(), "no federation serving\n");
}

#[test]
fn fed_follow_attaches_a_replica_that_joins_failover_and_fleet_scrapes() {
    let mut server = Shell::new();
    server.exec("mkdir /docs").unwrap();
    server
        .exec("write /docs/a.txt fingerprint ridge patterns")
        .unwrap();
    server
        .exec("write /docs/b.txt fingerprint whorl atlas")
        .unwrap();
    server.exec("ssync").unwrap();
    let served = server.exec("fed serve 127.0.0.1:0 lib 2 /docs").unwrap();
    let url = mount_url(&served);

    // `fed follow` needs a mounted federation to attach to.
    let mut client = Shell::new();
    assert!(client.exec("fed follow 0").is_err(), "no mount yet");
    client.exec("mkdir /mnt").unwrap();
    client.exec(&format!("mount /mnt {url}")).unwrap();
    assert!(client.exec("fed follow 9").is_err(), "shard out of range");

    let followed = client.exec("fed follow 1").unwrap();
    assert!(
        followed.contains("following lib.1 @ ") && followed.contains("registered for failover"),
        "{followed}"
    );
    let status = client.exec("fed status").unwrap();
    assert!(status.contains("replicas 1"), "{status}");

    // The replica is a fleet peer in its own right, and it speaks the
    // v5 obs ops — so a scatter-scrape over primaries AND the replica
    // still comes back complete (3 peers, none down, not partial).
    let stats = client.exec("fleet stats").unwrap();
    assert!(
        stats.contains("fleet scrape: 3 peers (3 up, 0 down), result complete"),
        "{stats}"
    );
    assert!(stats.contains("lib.1@replica0"), "{stats}");

    // Teardown joins the follower thread.
    let stopped = client.exec("fed stop").unwrap();
    assert!(stopped.contains("stopped 1 replica followers"), "{stopped}");
}
