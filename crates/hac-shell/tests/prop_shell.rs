//! Property test: random command traces never panic the shell, and the
//! session remains usable afterwards.

use proptest::prelude::*;

use hac_shell::Shell;

fn command_strategy() -> impl Strategy<Value = String> {
    let word = "[a-z]{1,6}";
    let path = prop_oneof![
        Just("/d0".to_string()),
        Just("/d1".to_string()),
        Just("/d0/f0".to_string()),
        Just("/d0/f1".to_string()),
        Just("/q0".to_string()),
        Just("/q0/sub".to_string()),
        Just("relative".to_string()),
        Just("..".to_string()),
    ];
    prop_oneof![
        path.clone().prop_map(|p| format!("mkdir {p}")),
        (path.clone(), word).prop_map(|(p, w)| format!("write {p} {w} content")),
        path.clone().prop_map(|p| format!("cat {p}")),
        path.clone().prop_map(|p| format!("ls {p}")),
        path.clone().prop_map(|p| format!("cd {p}")),
        path.clone().prop_map(|p| format!("rm {p}")),
        path.clone().prop_map(|p| format!("rm -r {p}")),
        (path.clone(), path.clone()).prop_map(|(a, b)| format!("mv {a} {b}")),
        (path.clone(), path.clone()).prop_map(|(a, b)| format!("ln {a} {b}")),
        (path.clone(), "[a-z]{2,6}").prop_map(|(p, q)| format!("smkdir {p} {q}")),
        (path.clone(), "[a-z]{2,6}").prop_map(|(p, q)| format!("chquery {p} {q}")),
        path.clone().prop_map(|p| format!("query {p}")),
        path.clone().prop_map(|p| format!("links {p}")),
        path.clone().prop_map(|p| format!("prohibited {p}")),
        Just("ssync".to_string()),
        Just("stats".to_string()),
        Just("pwd".to_string()),
        "[a-z]{2,6}".prop_map(|q| format!("find {q}")),
        "[a-z]{2,6}".prop_map(|q| format!("explain {q}")),
        // Deliberately malformed lines.
        Just("smkdir".to_string()),
        Just("cat".to_string()),
        Just("((( '".to_string()),
        Just("unknowncmd x y".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_sessions_never_panic(cmds in proptest::collection::vec(command_strategy(), 1..50)) {
        let mut sh = Shell::new();
        for cmd in &cmds {
            // Errors are fine; panics are not (proptest catches them as
            // failures automatically).
            let _ = sh.exec(cmd);
        }
        // The session is still coherent: pwd answers and a fresh round-trip
        // works end to end.
        prop_assert!(sh.exec("pwd").is_ok());
        sh.exec("cd /").unwrap();
        let _ = sh.exec("rm -r /zzz-probe");
        sh.exec("mkdir /zzz-probe").unwrap();
        sh.exec("write /zzz-probe/x.txt zebra stripes").unwrap();
        sh.exec("ssync").unwrap();
        let out = sh.exec("find zebra").unwrap();
        prop_assert!(out.contains("/zzz-probe/x.txt"), "{}", out);
    }
}
