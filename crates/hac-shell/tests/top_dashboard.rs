//! End-to-end acceptance for the time-series + SLO layer: a real
//! `HacServer` on loopback behind a `ChaosProxy`, a reindex daemon, a
//! fast sampler, and an `ObsServer` — then:
//!
//! 1. `hacsh top` renders live windowed data (rates, percentiles) while
//!    serve + daemon are running;
//! 2. `/timeseries` returns multiple windows each holding ≥2 real
//!    sampled points;
//! 3. injecting latency through the chaos proxy breaches a tight
//!    latency SLO, which surfaces in `/alerts`, `slo status`, and the
//!    `hac_slo_breaches_total` counter.
//!
//! Everything shares one process-global registry/sampler, so this lives
//! in its own test binary and runs as a single scripted scenario.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_core::{HacFs, ReindexDaemon};
use hac_net::{ChaosMode, ChaosProxy, ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_obs::{ObsServer, SloSpec};
use hac_remote::RemoteHac;
use hac_shell::Shell;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect obs server");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let code: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

/// A server-side HacFs exporting `/pub`.
fn export_fs() -> Arc<HacFs> {
    let fs = Arc::new(HacFs::new());
    fs.mkdir_p(&p("/pub")).unwrap();
    fs.save(&p("/pub/fp.txt"), b"fingerprint ridge minutiae analysis")
        .unwrap();
    fs.save(&p("/pub/survey.txt"), b"semantic file system survey")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    fs
}

#[test]
fn top_timeseries_and_slo_breach_end_to_end() {
    // The fast sampler must win the first-starter race against the
    // serve/daemon default-interval starters below.
    hac_obs::start_sampler(Duration::from_millis(50));
    assert!(hac_obs::sampler_running());

    // Real TCP export behind a fault injector.
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(RemoteHac::new(
            "colleague",
            export_fs(),
            p("/pub"),
        ))],
        ServerConfig::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::start(server.local_addr()).unwrap();
    let mut ccfg = ClientConfig::default();
    ccfg.retry.max_attempts = 2;
    ccfg.retry.base_delay = Duration::from_millis(2);
    ccfg.retry.request_timeout = Duration::from_secs(2);
    let client = Arc::new(NetRemote::connect(
        "colleague",
        &proxy.local_addr().to_string(),
        ccfg,
    ));

    // Local fs with a networked semantic mount plus a reindex daemon —
    // the "serve + daemon" operational posture from the issue.
    let fs = Arc::new(HacFs::new());
    fs.mkdir_p(&p("/docs")).unwrap();
    fs.save(&p("/docs/a.txt"), b"fingerprint patterns").unwrap();
    fs.mkdir_p(&p("/library")).unwrap();
    fs.smount(&p("/library"), client.clone() as _).unwrap();
    fs.smkdir(&p("/library/fp"), "fingerprint").unwrap();
    let daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(20));

    // A tight latency objective the chaos proxy can break on demand,
    // alongside the stock set (so `top` shows a realistic panel).
    let mut slos = SloSpec::default_set();
    slos.push(
        SloSpec::parse("net-latency: hac_net_request_duration_us p99 < 5ms over 2s").unwrap(),
    );
    hac_obs::slo::install(&slos);

    let mut obs = ObsServer::serve("127.0.0.1:0", Arc::new(|| "{}".to_string())).unwrap();
    let obs_addr = obs.local_addr().to_string();

    // Phase 1: healthy traffic through the passthrough proxy, long
    // enough for several 50 ms sampler ticks to land.
    for _ in 0..20 {
        client.ping().unwrap();
    }
    fs.ssync(&p("/")).unwrap();
    std::thread::sleep(Duration::from_millis(160));
    hac_obs::sample_now();

    // `/timeseries`: two different windows, each with ≥2 real points.
    for window in [10, 60] {
        let (code, body) = http_get(
            &obs_addr,
            &format!("/timeseries?metric=hac_net_requests_total&window={window}"),
        );
        assert_eq!(code, 200, "{body}");
        assert!(
            body.contains(&format!("\"window_secs\":{window}")),
            "{body}"
        );
        let points = body.matches("\"t_us\":").count();
        assert!(points >= 2, "window {window}: {points} points in {body}");
    }
    let (code, _) = http_get(&obs_addr, "/timeseries?metric=no_such_metric&window=10");
    assert_eq!(code, 404);

    // `hacsh top` renders live windowed data from the same registry.
    let mut sh = Shell::over(Arc::clone(&fs));
    let top = sh.exec("top").unwrap();
    assert!(top.contains("hac top —"), "{top}");
    assert!(top.contains("server rps"), "{top}");
    assert!(top.contains("alerts"), "{top}");
    let slo_before = sh.exec("slo status").unwrap();
    assert!(slo_before.contains("net-latency"), "{slo_before}");

    // Phase 2: 50 ms of injected latency per request — an order of
    // magnitude over the 5 ms p99 objective. Drive slow requests until
    // the engine records the breach (fast and slow windows both blown).
    let breaches = hac_obs::counter("hac_slo_breaches_total", &[("slo", "net-latency")]);
    let base = breaches.get();
    proxy.set_mode(ChaosMode::Latency(Duration::from_millis(50)));
    let deadline = Instant::now() + Duration::from_secs(20);
    while breaches.get() == base {
        assert!(
            Instant::now() < deadline,
            "SLO never breached under injected latency"
        );
        client.ping().unwrap();
        hac_obs::sample_now();
    }

    // The breach is visible everywhere the issue promises.
    let (code, alerts) = http_get(&obs_addr, "/alerts");
    assert_eq!(code, 200);
    assert!(alerts.contains("net-latency"), "{alerts}");
    assert!(alerts.contains("breach"), "{alerts}");
    let slo_after = sh.exec("slo status").unwrap();
    assert!(slo_after.contains("net-latency"), "{slo_after}");
    assert!(
        slo_after.contains("breach") || slo_after.contains("warn"),
        "{slo_after}"
    );
    let top_after = sh.exec("top").unwrap();
    assert!(top_after.contains("alerts"), "{top_after}");

    proxy.set_mode(ChaosMode::Passthrough);
    daemon.stop();
    obs.shutdown();
    proxy.stop();
    server.shutdown();
}
