//! End-to-end distributed tracing: a query issued through an `smount`-ed
//! `NetRemote` → `HacServer` pair carries ONE trace id across the wire —
//! the server's `net_server_request` span lands in the event ring nested
//! under the client's `net_client_request` span — and the assembled tree
//! is visible over HTTP via `GET /trace/<id>` on the embedded
//! observability server.
//!
//! This file holds a single test: it asserts over the process-global
//! event ring, so it must not share a test binary with unrelated span
//! traffic.

use std::io::{Read, Write};
use std::net::TcpStream;

use hac_obs::SpanNode;
use hac_shell::Shell;

/// Depth-first search for a span by event name.
fn find<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
    for node in nodes {
        if node.event.name == name {
            return Some(node);
        }
        if let Some(hit) = find(&node.children, name) {
            return Some(hit);
        }
    }
    None
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn one_trace_id_spans_client_and_server_and_is_served_over_http() {
    // Exporter: a shell serving /pub over real TCP.
    let mut exporter = Shell::new();
    exporter
        .exec_script(
            "mkdir /pub; write /pub/notes.txt shared semantic notes; \
             write /pub/misc.txt grocery list; ssync",
        )
        .unwrap();
    exporter.exec("serve 127.0.0.1:0 team /pub").unwrap();
    let addr = exporter.server_addr().expect("server running");

    // Importer: mounts the export, then creates a semantic directory whose
    // query evaluation crosses the wire. The `smkdir` command is the
    // operation root — everything below it must share its trace id.
    let mut importer = Shell::new();
    importer.exec("mkdir /lib").unwrap();
    importer
        .exec(&format!("mount /lib tcp://{addr}/team"))
        .unwrap();
    let out = importer.exec("smkdir /sem semantic").unwrap();
    assert!(out.contains("1 links"), "{out}");

    // The client-side request span for the remote search.
    let events = hac_obs::recent_events();
    let client = events
        .iter()
        .filter(|e| e.name == "net_client_request")
        .rfind(|e| e.fields.iter().any(|(k, v)| k == "op" && v == "search"))
        .expect("client request span recorded");
    let trace_id = client.trace_id.expect("client span carries a trace id");
    let client_span = client.span_id.expect("client span has a span id");

    // The server handled the request on its own worker thread, yet its
    // span joined the same trace, parented under the client span.
    let server = events
        .iter()
        .filter(|e| e.name == "net_server_request")
        .find(|e| e.trace_id == Some(trace_id))
        .expect("server continued the client's trace");
    assert_eq!(
        server.parent_span_id,
        Some(client_span),
        "server span must nest under the client's request span"
    );
    assert!(
        server.duration_micros.is_some(),
        "server span measured its handling time"
    );

    // Assembled tree: the shell command is the root, and the server span
    // hangs below the client span.
    let tree = hac_obs::assemble(&events, trace_id);
    assert_eq!(tree.roots.len(), 1, "one operation root: {}", tree.render());
    assert_eq!(tree.roots[0].event.name, "hacsh_command");
    let client_node = find(&tree.roots, "net_client_request").expect("client span in tree");
    assert!(
        find(&client_node.children, "net_server_request").is_some(),
        "server span must be a descendant of the client span:\n{}",
        tree.render()
    );
    assert!(
        tree.span_count() >= 4,
        "expected a deep tree:\n{}",
        tree.render()
    );

    // The same tree is served over HTTP by the embedded endpoint.
    let out = importer.exec("obs-serve 127.0.0.1:0").unwrap();
    assert!(out.contains("observability on http://"), "{out}");
    let obs_addr = importer.obs_addr().expect("obs server running");
    let hex = format!("{trace_id:016x}");
    let response = http_get(obs_addr, &format!("/trace/{hex}"));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("net_client_request"), "{response}");
    assert!(response.contains("net_server_request"), "{response}");
    assert!(response.contains(&hex), "{response}");

    // The shell renderer shows the same nesting.
    let rendered = importer.exec(&format!("trace {hex}")).unwrap();
    assert!(rendered.contains("hacsh_command"), "{rendered}");
    assert!(rendered.contains("net_server_request"), "{rendered}");

    importer.exec("obs-serve stop").unwrap();
    exporter.exec("serve stop").unwrap();
}
