//! Fleet observability end to end, across real process boundaries: two
//! `hacsh` child processes each serve one shard of a federation
//! (`fed shard`), an in-test coordinator mounts it, runs one federated
//! query, and the coordinator's obs endpoint then proves the tentpole:
//!
//! * `/trace/<id>` stitches spans pulled from BOTH shard processes
//!   (wire-v5 `TraceSpans`) under the coordinator's request span, each
//!   tagged with its node label;
//! * `/fleet/metrics` merges ≥ 2 peer registries with `node` labels
//!   (wire-v5 `Metrics`);
//! * killing one shard degrades both endpoints — and `fed status` /
//!   `fleet stats` — to explicitly-partial output, never an error
//!   (the PR-9 partial-result contract).
//!
//! This file asserts over the process-global event ring, so it must not
//! share a test binary with unrelated span traffic.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hac_shell::Shell;

/// Reserves a loopback port by binding, reading it back, and dropping
/// the listener. Racy in principle; in practice the child rebinds it
/// before anything else on a CI box grabs an ephemeral port.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// One shard of the federation, running in its own `hacsh` process. The
/// REPL keeps serving until stdin closes (or the test kills it).
struct ShardProc {
    child: Child,
    /// Held open so the child's REPL blocks on the next read.
    _stdin: std::process::ChildStdin,
}

fn spawn_shard(index: usize, peers: &str) -> ShardProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hacsh"))
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hacsh shard");
    let mut stdin = child.stdin.take().unwrap();
    // Same corpus in every process: placement filters each shard's
    // answers to its own doc-path hash range, so the union is exact.
    write!(
        stdin,
        "mkdir /docs\n\
         write /docs/a.txt fingerprint ridge patterns\n\
         write /docs/b.txt fingerprint whorl atlas\n\
         write /docs/c.txt grocery list\n\
         ssync\n\
         fed shard {index} lib {peers} /docs\n"
    )
    .unwrap();
    stdin.flush().unwrap();
    ShardProc {
        child,
        _stdin: stdin,
    }
}

fn wait_listening(port: u16) {
    for _ in 0..200 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("shard on port {port} never came up");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pulls `"spans":N` out of a peer's meta entry in the stitched trace.
fn peer_meta(body: &str, node: &str, ok: bool) -> Option<u64> {
    let needle = format!("{{\"node\":\"{node}\",\"ok\":{ok},\"spans\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest.find('}')?;
    rest[..end].parse().ok()
}

#[test]
fn stitched_traces_and_fleet_metrics_cross_process_boundaries() {
    let (port_a, port_b) = (free_port(), free_port());
    let peers = format!("127.0.0.1:{port_a},127.0.0.1:{port_b}");
    let (node_a, node_b) = (
        format!("lib.0@127.0.0.1:{port_a}"),
        format!("lib.1@127.0.0.1:{port_b}"),
    );

    let _shard_a = spawn_shard(0, &peers);
    let mut shard_b = spawn_shard(1, &peers);
    wait_listening(port_a);
    wait_listening(port_b);

    // Coordinator: mount the federation, run ONE federated query — its
    // trace id is what the stitched endpoint must reassemble.
    let mut coord = Shell::new();
    coord.exec("mkdir /mnt").unwrap();
    let mounted = coord
        .exec(&format!("mount /mnt fed://127.0.0.1:{port_a}/lib"))
        .unwrap();
    assert!(mounted.contains("2 shards"), "{mounted}");
    let out = coord.exec("smkdir /q fingerprint").unwrap();
    assert!(out.contains("2 links"), "{out}");

    let events = hac_obs::recent_events();
    let root = events
        .iter()
        .rfind(|e| {
            e.name == "hacsh_command" && e.fields.iter().any(|(k, v)| k == "cmd" && v == "smkdir")
        })
        .expect("smkdir command span recorded");
    let trace_id = root.trace_id.expect("command span carries a trace id");
    let hex = format!("{trace_id:016x}");

    coord.exec("obs-serve 127.0.0.1:0").unwrap();
    let obs = coord.obs_addr().expect("obs server running");

    // --- stitched trace: spans from two REMOTE processes, node-tagged.
    let (status, body) = http_get(obs, &format!("/trace/{hex}"));
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"partial\":false,"), "{body}");
    let spans_a = peer_meta(&body, &node_a, true).expect("shard a answered");
    let spans_b = peer_meta(&body, &node_b, true).expect("shard b answered");
    assert!(spans_a >= 1, "shard a contributed no spans: {body}");
    assert!(spans_b >= 1, "shard b contributed no spans: {body}");
    // The remote spans are in the tree itself, labeled with their node.
    assert!(body.contains(&format!("\"node\":\"{node_a}\"")), "{body}");
    assert!(body.contains("net_server_request"), "{body}");
    assert!(body.contains("hacsh_command"), "{body}");

    // --- federated metrics: ≥ 2 peer registries merged, node-labeled.
    let (status, metrics) = http_get(obs, "/fleet/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains(&format!("node=\"{node_a}\"")), "{metrics}");
    assert!(metrics.contains(&format!("node=\"{node_b}\"")), "{metrics}");
    assert!(
        metrics.contains(&format!("hac_fleet_peer_up{{node=\"{node_a}\"}} 1")),
        "{metrics}"
    );
    // Mirrored peer series feed the local sampler/SLO machinery.
    assert!(metrics.contains("hac_fleet_"), "{metrics}");

    let (status, health) = http_get(obs, "/fleet/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"logical\":\"lib\""), "{health}");
    assert!(health.contains("\"health\":\"up\""), "{health}");

    // The shell front-ends agree with the HTTP ones.
    let stats = coord.exec("fleet stats").unwrap();
    assert!(
        stats.contains("fleet scrape: 2 peers (2 up, 0 down), result complete"),
        "{stats}"
    );
    let fed_status = coord.exec("fed status").unwrap();
    assert!(fed_status.contains("[up]"), "{fed_status}");

    // --- kill one shard: everything degrades to flagged-partial,
    // nothing errors.
    shard_b.child.kill().unwrap();
    let _ = shard_b.child.wait();

    let (status, body) = http_get(obs, &format!("/trace/{hex}"));
    assert_eq!(status, 200, "partial stitch must not be an error: {body}");
    assert!(body.starts_with("{\"partial\":true,"), "{body}");
    assert_eq!(peer_meta(&body, &node_b, false), Some(0), "{body}");
    let spans_a = peer_meta(&body, &node_a, true).expect("surviving shard still answers");
    assert!(spans_a >= 1, "{body}");

    let (status, metrics) = http_get(obs, "/fleet/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("hac_fleet_peer_up{{node=\"{node_b}\"}} 0")),
        "{metrics}"
    );
    assert!(
        metrics.contains("hac_fleet_scrape_partial{node=\"coordinator\"} 1"),
        "{metrics}"
    );

    let stats = coord.exec("fleet stats").unwrap();
    assert!(stats.contains("result PARTIAL"), "{stats}");
    assert!(stats.contains("DOWN"), "{stats}");

    // A federated query against the half-dead fleet stays a partial
    // answer (PR-9 contract), and `fed status` reports the failure run.
    let resync = coord.exec("ssync").unwrap();
    assert!(resync.contains("dirs re-evaluated"), "{resync}");
    let fed_status = coord.exec("fed status").unwrap();
    assert!(fed_status.contains("last result PARTIAL"), "{fed_status}");
    assert!(
        fed_status.contains("[degraded]") || fed_status.contains("[down]"),
        "{fed_status}"
    );

    coord.exec("obs-serve stop").unwrap();
}
