//! Acceptance for the `stats` command: after a scripted smkdir+ssync
//! session over a file system with a semantic mount, `stats` prints live
//! counters, and `stats --prom` emits parseable `name{label="…"} value`
//! exposition covering reindex passes (ok and failed), the query-eval
//! latency histogram, the dependency-cascade re-eval count, and the
//! per-mount request/error counters.

use std::sync::Arc;
use std::time::Duration;

use hac_core::{HacError, HacFs, ReindexDaemon, RemoteError};
use hac_remote::{FailurePolicy, WebSearchSim};
use hac_shell::Shell;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn stats_shows_live_counters_and_prom_exposition() {
    let fs = Arc::new(HacFs::new());
    let web = Arc::new(WebSearchSim::new("web_stats"));
    web.publish("w1", "Fingerprint page", b"fingerprint verification online");
    fs.mkdir_p(&p("/lib")).unwrap();
    fs.smount(&p("/lib"), Arc::clone(&web) as _).unwrap();

    let mut sh = Shell::over(Arc::clone(&fs));
    sh.exec_script(
        "mkdir /docs; \
         write /docs/a.txt fingerprint ridge patterns; \
         write /docs/b.txt grocery list; \
         smkdir /lib/fp fingerprint; \
         ssync",
    )
    .unwrap();

    // One daemon pass that succeeds, one configuration whose passes fail:
    // the prom output must carry both outcomes.
    let ok_daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(2));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while ok_daemon.status().ok_passes < 1 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    ok_daemon.stop();
    let failing = ReindexDaemon::spawn_with(Arc::clone(&fs), Duration::from_millis(2), |_| {
        Err(HacError::Remote(RemoteError::Unavailable("down".into())))
    });
    while failing.status().failed_passes < 1 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    failing.stop();

    // A failing remote gives the per-mount error counter a sample.
    web.set_failure_policy(FailurePolicy::AlwaysDown);
    sh.exec("ssync").unwrap();

    // Human-readable table: index line plus live counter sections.
    let human = sh.exec("stats").unwrap();
    assert!(human.starts_with("docs "), "{human}");
    assert!(human.contains("counters:"), "{human}");
    assert!(human.contains("hac_ssync_passes_total"), "{human}");
    assert!(human.contains("hac_events_dropped_total"), "{human}");
    assert!(human.contains("histograms:"), "{human}");
    assert!(human.contains("hac_query_eval_duration_us"), "{human}");

    // Prometheus exposition: every sample line parses, each metric is
    // announced by a `# HELP` + `# TYPE` pair, required series present.
    let prom = sh.exec("stats --prom").unwrap();
    let lines: Vec<&str> = prom.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("TYPE ") || comment.starts_with("HELP "),
                "unexpected comment {line:?}"
            );
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {name} ")),
                    "TYPE without preceding HELP for {name}"
                );
            }
            continue;
        }
        let (id, value) = line.rsplit_once(' ').expect("line has `id value` shape");
        assert!(!id.is_empty());
        assert!(
            value.parse::<i64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }
    assert!(
        prom.contains("# TYPE hac_query_eval_duration_us histogram"),
        "{prom}"
    );
    assert!(
        prom.contains("# HELP hac_query_eval_duration_us "),
        "{prom}"
    );
    for needle in [
        "hac_reindex_passes_total{outcome=\"ok\"}",
        "hac_reindex_passes_total{outcome=\"failed\"}",
        "hac_query_eval_duration_us_bucket",
        "hac_query_eval_duration_us_count",
        "hac_cascade_reevals_total",
        "hac_remote_requests_total{ns=\"web_stats\",op=\"search\"}",
        "hac_remote_errors_total{ns=\"web_stats\",op=\"search\"}",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    // The event ring saw the ssync spans.
    let events = sh.exec("stats --events").unwrap();
    assert!(events.contains("ssync"), "{events}");

    // The remote import actually happened before the failure was injected.
    assert!(
        fs.readdir(&p("/lib/fp")).unwrap().iter().any(|e| {
            e.name.to_ascii_lowercase().contains("fingerprint")
                || e.name.to_ascii_lowercase().contains("page")
        }),
        "remote result was not imported"
    );
}
