//! # hac-shell — `hacsh`
//!
//! An interactive shell over a [`HacFs`], exposing the paper's §4 command
//! suite: "well-known file system commands, such as `cd`, `ls`, `mkdir`,
//! `mv`, `rm` etc. … HAC also provides additional commands that manipulate
//! queries and semantic directories" — `smkdir`, `chquery`/`query`,
//! `sact`, `ssync`, plus the footnote API (`links`, `prohibited`, `pin`,
//! `forgive`).
//!
//! The [`Shell`] is a pure function from command lines to output strings,
//! so every command is unit-testable; `hacsh` (the binary) wraps it in a
//! stdin REPL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;

use std::fmt;
use std::sync::Arc;

use hac_core::{HacError, HacFs, LinkKind, LinkTarget, RemoteQuerySystem};
use hac_vfs::{NodeKind, VPath};

/// Shell-level errors (wrapping HAC errors with usage problems).
#[derive(Debug)]
pub enum ShellError {
    /// The command does not exist.
    UnknownCommand(String),
    /// Wrong number / shape of arguments.
    Usage(&'static str),
    /// The underlying file system refused.
    Hac(HacError),
}

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShellError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?} (try `help`)")
            }
            ShellError::Usage(u) => write!(f, "usage: {u}"),
            ShellError::Hac(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShellError {}

impl From<HacError> for ShellError {
    fn from(e: HacError) -> Self {
        ShellError::Hac(e)
    }
}

impl From<hac_vfs::VfsError> for ShellError {
    fn from(e: hac_vfs::VfsError) -> Self {
        ShellError::Hac(HacError::Vfs(e))
    }
}

/// Flattens a federation error into the remote-error taxonomy the shell's
/// error type already carries.
fn fed_to_remote(e: hac_fed::FedError) -> hac_core::RemoteError {
    match e {
        hac_fed::FedError::Remote(r) => r,
        hac_fed::FedError::Store(s) => hac_core::RemoteError::Unavailable(s.to_string()),
    }
}

/// A shell session: a file system plus a working directory, and (after
/// `serve` / `obs-serve`) the network and observability servers exporting
/// it.
pub struct Shell {
    fs: Arc<HacFs>,
    cwd: VPath,
    server: Option<hac_net::HacServer>,
    obs_server: Option<hac_obs::ObsServer>,
    /// Shared with the `/statusz` closure so it sees serve/stop live.
    net_addr: Arc<std::sync::Mutex<Option<std::net::SocketAddr>>>,
    /// Shard servers started by `fed serve` (one per shard).
    fed_servers: Vec<hac_net::HacServer>,
    /// Coordinator behind the most recent `mount … fed://` (for
    /// `fed status`, `fleet stats`, and the obs server's fleet hooks —
    /// shared so a mount after `obs-serve` is picked up live).
    fed_remote: Arc<std::sync::Mutex<Option<Arc<hac_fed::FedRemote>>>>,
    /// Background sync loops for replicas attached with `fed follow`,
    /// joined on `fed stop`.
    followers: Vec<hac_fed::Follower>,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// Fresh shell over a fresh file system.
    pub fn new() -> Self {
        Self::over(Arc::new(HacFs::new()))
    }

    /// Shell over an existing file system (shared with other components).
    /// If no durable index store is attached yet, one is attached over the
    /// namespace's own reserved metadata area, so `ssync` passes commit
    /// crash-atomic segments and snapshots warm-start through recovery.
    pub fn over(fs: Arc<HacFs>) -> Self {
        if fs.store().is_none() {
            let backend = Arc::new(hac_core::VfsStore::new(Arc::clone(fs.vfs())));
            // Only fails on backend I/O; the in-VFS backend has none.
            let _ = fs.attach_store(backend);
        }
        Shell {
            fs,
            cwd: VPath::root(),
            server: None,
            obs_server: None,
            net_addr: Arc::new(std::sync::Mutex::new(None)),
            fed_servers: Vec::new(),
            fed_remote: Arc::new(std::sync::Mutex::new(None)),
            followers: Vec::new(),
        }
    }

    /// Address of the running `serve` instance, if any.
    pub fn server_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(hac_net::HacServer::local_addr)
    }

    /// Address of the running `obs-serve` instance, if any.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(hac_obs::ObsServer::local_addr)
    }

    /// The wrapped file system.
    pub fn fs(&self) -> &Arc<HacFs> {
        &self.fs
    }

    /// Current working directory.
    pub fn cwd(&self) -> &VPath {
        &self.cwd
    }

    /// Resolves a possibly-relative path argument against the cwd.
    pub fn resolve_arg(&self, arg: &str) -> Result<VPath, ShellError> {
        let combined = if arg.starts_with('/') {
            arg.to_string()
        } else if self.cwd.is_root() {
            format!("/{arg}")
        } else {
            format!("{}/{arg}", self.cwd)
        };
        Ok(VPath::parse(&combined).map_err(HacError::Vfs)?)
    }

    /// Executes one command line, returning its output text.
    ///
    /// # Errors
    ///
    /// [`ShellError`] for unknown commands, usage mistakes, and file-system
    /// refusals; the session stays usable after any error.
    pub fn exec(&mut self, line: &str) -> Result<String, ShellError> {
        let words = parse::split(line);
        let Some((cmd, args)) = words.split_first() else {
            return Ok(String::new());
        };
        // Operation root: every command mints (or continues) a trace, so
        // child spans in query eval / resync / remote fetches nest under it.
        let _root = hac_obs::span!("hacsh_command", cmd = cmd);
        match cmd.as_str() {
            "help" => Ok(HELP.to_string()),
            "pwd" => Ok(self.cwd.to_string()),
            "cd" => {
                let target = match args {
                    [] => VPath::root(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("cd [dir]")),
                };
                let attr = self.fs.stat(&target)?;
                if !attr.is_dir() {
                    return Err(ShellError::Hac(HacError::NotADirectory(target)));
                }
                self.cwd = target;
                Ok(String::new())
            }
            "ls" => {
                let (long, rest) = match args {
                    [flag, rest @ ..] if flag == "-l" => (true, rest),
                    rest => (false, rest),
                };
                let dir = match rest {
                    [] => self.cwd.clone(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("ls [-l] [dir]")),
                };
                let mut out = String::new();
                for entry in self.fs.readdir(&dir)? {
                    if long {
                        let child = dir.join(&entry.name).map_err(HacError::Vfs)?;
                        let attr = self.fs.vfs().lstat(&child)?;
                        let suffix = match entry.kind {
                            NodeKind::Symlink => {
                                format!(" -> {}", self.fs.readlink(&child)?)
                            }
                            _ => String::new(),
                        };
                        let sem = if entry.kind == NodeKind::Dir && self.fs.is_semantic(&child) {
                            " [semantic]"
                        } else {
                            ""
                        };
                        out.push_str(&format!(
                            "{} {:>8} {}{}{}\n",
                            attr.kind.tag(),
                            attr.size,
                            entry.name,
                            suffix,
                            sem
                        ));
                    } else {
                        out.push_str(&entry.name);
                        out.push('\n');
                    }
                }
                Ok(out)
            }
            "cat" => match args {
                [p] => {
                    let path = self.resolve_arg(p)?;
                    // Semdir links can point at remote documents that only
                    // exist behind a mount; fetch_link resolves both those
                    // and ordinary local symlink targets.
                    let data = if self.fs.vfs().lstat(&path)?.kind == NodeKind::Symlink {
                        self.fs.fetch_link(&path)?
                    } else {
                        self.fs.read_file(&path)?.to_vec()
                    };
                    Ok(String::from_utf8_lossy(&data).to_string())
                }
                _ => Err(ShellError::Usage("cat <file>")),
            },
            "mkdir" => match args {
                [flag, p] if flag == "-p" => {
                    self.fs.mkdir_p(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                [p] => {
                    self.fs.mkdir(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("mkdir [-p] <dir>")),
            },
            "write" => match args {
                [p, rest @ ..] => {
                    let text = rest.join(" ");
                    self.fs.save(&self.resolve_arg(p)?, text.as_bytes())?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("write <file> <text…>")),
            },
            "append" => match args {
                [p, rest @ ..] => {
                    let text = rest.join(" ");
                    self.fs.append(&self.resolve_arg(p)?, text.as_bytes())?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("append <file> <text…>")),
            },
            "rm" => match args {
                [flag, p] if flag == "-r" => {
                    self.fs.remove_recursive(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                [p] => {
                    self.fs.unlink(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("rm [-r] <path>")),
            },
            "rmdir" => match args {
                [p] => {
                    self.fs.rmdir(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("rmdir <dir>")),
            },
            "mv" => match args {
                [from, to] => {
                    self.fs
                        .rename(&self.resolve_arg(from)?, &self.resolve_arg(to)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("mv <from> <to>")),
            },
            "ln" => match args {
                [target, link] => {
                    self.fs
                        .symlink(&self.resolve_arg(link)?, &self.resolve_arg(target)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("ln <target> <link>")),
            },
            "readlink" => match args {
                [p] => Ok(format!("{}\n", self.fs.readlink(&self.resolve_arg(p)?)?)),
                _ => Err(ShellError::Usage("readlink <link>")),
            },
            // --- semantic commands -------------------------------------
            "smkdir" => match args {
                [p, query @ ..] if !query.is_empty() => {
                    let dir = self.resolve_arg(p)?;
                    self.fs.smkdir(&dir, &query.join(" "))?;
                    let n = self.fs.readdir(&dir)?.len();
                    Ok(format!("created semantic directory {dir} ({n} links)\n"))
                }
                _ => Err(ShellError::Usage("smkdir <dir> <query…>")),
            },
            "query" | "sreadq" => match args {
                [p] => Ok(format!("{}\n", self.fs.get_query(&self.resolve_arg(p)?)?)),
                _ => Err(ShellError::Usage("query <dir>")),
            },
            "chquery" | "schquery" => match args {
                [p, query @ ..] if !query.is_empty() => {
                    self.fs.set_query(&self.resolve_arg(p)?, &query.join(" "))?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("chquery <dir> <query…>")),
            },
            "sact" => match args {
                [p] => {
                    let lines = self.fs.sact(&self.resolve_arg(p)?)?;
                    Ok(lines.join("\n") + if lines.is_empty() { "" } else { "\n" })
                }
                _ => Err(ShellError::Usage("sact <link>")),
            },
            "ssync" => {
                let path = match args {
                    [] => VPath::root(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("ssync [path]")),
                };
                let r = self.fs.ssync(&path)?;
                Ok(format!(
                    "indexed +{} ~{} -{}; {} dirs re-evaluated; {} links repaired\n",
                    r.added, r.updated, r.removed, r.dirs_synced, r.links_repaired
                ))
            }
            "explain" => match args {
                query if !query.is_empty() => {
                    let (hits, stats) = self.fs.search_explained(&self.cwd, &query.join(" "))?;
                    Ok(format!(
                        "{} hits; {} candidates, {} verified, {} false positives\n",
                        hits.len(),
                        stats.candidates,
                        stats.verified,
                        stats.false_positives
                    ))
                }
                _ => Err(ShellError::Usage("explain <query…>")),
            },
            "find" => match args {
                query if !query.is_empty() => {
                    let hits = self.fs.search(&self.cwd, &query.join(" "))?;
                    let mut out = String::new();
                    for h in hits {
                        out.push_str(&h.to_string());
                        out.push('\n');
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("find <query…>")),
            },
            // --- the footnote API ---------------------------------------
            "links" => match args {
                [p] => {
                    let mut out = String::new();
                    for link in self.fs.list_links(&self.resolve_arg(p)?)? {
                        let kind = match link.kind {
                            LinkKind::Transient => "transient",
                            LinkKind::Permanent => "permanent",
                        };
                        out.push_str(&format!(
                            "{:<9} {} -> {}\n",
                            kind,
                            link.name,
                            target_str(&link.target)
                        ));
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("links <dir>")),
            },
            "prohibited" => match args {
                [p] => {
                    let mut out = String::new();
                    for (i, t) in self
                        .fs
                        .list_prohibited(&self.resolve_arg(p)?)?
                        .iter()
                        .enumerate()
                    {
                        out.push_str(&format!("[{i}] {}\n", target_str(t)));
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("prohibited <dir>")),
            },
            "forgive" => match args {
                [p, idx] => {
                    let dir = self.resolve_arg(p)?;
                    let list = self.fs.list_prohibited(&dir)?;
                    let i: usize = idx
                        .parse()
                        .map_err(|_| ShellError::Usage("forgive <dir> <index>"))?;
                    let Some(target) = list.get(i) else {
                        return Err(ShellError::Usage("forgive <dir> <index>"));
                    };
                    self.fs.forgive(&dir, target)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("forgive <dir> <index>")),
            },
            "pin" => match args {
                [p] => {
                    self.fs.make_permanent(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("pin <link>")),
            },
            // --- the network layer ---------------------------------------
            "serve" => match args {
                [word] if word == "stop" => match self.server.take() {
                    Some(server) => {
                        let addr = server.local_addr();
                        server.shutdown();
                        *self.net_addr.lock().unwrap() = None;
                        Ok(format!("stopped server on {addr}\n"))
                    }
                    None => Ok("no server running\n".to_string()),
                },
                [word] if word == "status" => Ok(match &self.server {
                    Some(s) => {
                        let st = s.loop_stats();
                        format!(
                            "serving on {}\nloop: {} active conns \
                             ({} accepted, {} rejected), {} wakeups, \
                             {} inline / {} offloaded, {} workers\n",
                            s.local_addr(),
                            st.active_connections,
                            st.connections_total,
                            st.rejected_total,
                            st.wakeups_total,
                            st.inline_total,
                            st.offloaded_total,
                            st.workers,
                        )
                    }
                    None => "no server running\n".to_string(),
                }),
                [addr, ns, rest @ ..] if rest.len() <= 1 => {
                    if self.server.is_some() {
                        return Err(ShellError::Usage(
                            "serve: already running (use `serve stop` first)",
                        ));
                    }
                    let export = match rest {
                        [dir] => self.resolve_arg(dir)?,
                        _ => VPath::root(),
                    };
                    let backend =
                        Arc::new(hac_remote::RemoteHac::new(ns, Arc::clone(&self.fs), export));
                    let server = hac_net::HacServer::serve(
                        addr.as_str(),
                        vec![backend],
                        hac_net::ServerConfig::default(),
                    )
                    .map_err(|e| {
                        ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                            e.to_string(),
                        )))
                    })?;
                    let bound = server.local_addr();
                    self.server = Some(server);
                    *self.net_addr.lock().unwrap() = Some(bound);
                    Ok(format!("serving {ns} on tcp://{bound}/{ns}\n"))
                }
                _ => Err(ShellError::Usage(
                    "serve <addr> <namespace> [dir] | serve stop | serve status",
                )),
            },
            "mount" => match args {
                [p, url] if url.starts_with("tcp://") => {
                    let dir = self.resolve_arg(p)?;
                    let remote =
                        hac_net::NetRemote::from_url(url, hac_net::ClientConfig::default())
                            .map_err(HacError::Remote)?;
                    let ns = remote.namespace();
                    self.fs.smount(&dir, Arc::new(remote))?;
                    Ok(format!("mounted {ns} at {dir}\n"))
                }
                [p, url] if url.starts_with("fed://") => {
                    // fed://host:port/logical — bootstrap the whole
                    // federation from any one shard's address: fetch the
                    // shard map, connect to every shard it names.
                    let dir = self.resolve_arg(p)?;
                    let rest = url.strip_prefix("fed://").unwrap_or_default();
                    let (addr, logical) = rest.split_once('/').ok_or(ShellError::Usage(
                        "mount <dir> fed://host:port/logical-namespace",
                    ))?;
                    let fed =
                        hac_fed::FedRemote::discover(logical, addr, hac_fed::FedConfig::default())
                            .map_err(|e| HacError::Remote(fed_to_remote(e)))?;
                    let shards = fed.map().shard_count();
                    let generation = fed.map().generation;
                    let fed = Arc::new(fed);
                    self.fs
                        .smount(&dir, Arc::clone(&fed) as Arc<dyn RemoteQuerySystem>)?;
                    *self.fed_remote.lock().unwrap() = Some(fed);
                    Ok(format!(
                        "mounted federated {logical} at {dir} \
                         ({shards} shards, placement generation {generation})\n"
                    ))
                }
                _ => Err(ShellError::Usage(
                    "mount <dir> tcp://host:port/ns | mount <dir> fed://host:port/logical",
                )),
            },
            "fed" => self.cmd_fed(args),
            "fleet" => self.cmd_fleet(args),
            "mounts" => match args {
                [p] => {
                    let namespaces = self.fs.mounts_at(&self.resolve_arg(p)?)?;
                    Ok(namespaces
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join("\n")
                        + "\n")
                }
                _ => Err(ShellError::Usage("mounts <dir>")),
            },
            // --- observability --------------------------------------------
            "obs-serve" => match args {
                [word] if word == "stop" => match self.obs_server.take() {
                    Some(mut server) => {
                        let addr = server.local_addr();
                        server.shutdown();
                        Ok(format!("stopped observability server on {addr}\n"))
                    }
                    None => Ok("no observability server running\n".to_string()),
                },
                [word] if word == "status" => Ok(match &self.obs_server {
                    Some(s) => format!("observability on http://{}/\n", s.local_addr()),
                    None => "no observability server running\n".to_string(),
                }),
                [addr] => {
                    if self.obs_server.is_some() {
                        return Err(ShellError::Usage(
                            "obs-serve: already running (use `obs-serve stop` first)",
                        ));
                    }
                    // Always fleet-aware: with no federation mounted the
                    // hooks return empty peer sets, so the fleet
                    // endpoints degenerate to the local view, and a
                    // later `mount … fed://` is picked up live.
                    let server = hac_obs::ObsServer::serve_fleet(
                        addr.as_str(),
                        self.status_fn(),
                        hac_obs::http::ObsServerConfig::default(),
                        self.fleet_hooks(),
                    )
                    .map_err(|e| {
                        ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                            e.to_string(),
                        )))
                    })?;
                    let bound = server.local_addr();
                    self.obs_server = Some(server);
                    Ok(format!(
                        "observability on http://{bound}/ \
                         (/metrics /healthz /statusz /events /slow /trace/<id> \
                         /timeseries /alerts /fleet/metrics /fleet/health)\n"
                    ))
                }
                _ => Err(ShellError::Usage(
                    "obs-serve <addr> | obs-serve stop | obs-serve status",
                )),
            },
            "trace" => match args {
                [id] => {
                    let Some(tid) = hac_obs::trace::parse_id(id) else {
                        return Err(ShellError::Usage("trace <trace-id (hex)>"));
                    };
                    let mut events = hac_obs::recent_events();
                    events.extend(hac_obs::slow_ops());
                    let tree = hac_obs::assemble(&events, tid);
                    if tree.roots.is_empty() {
                        Ok(format!("trace {id}: no spans buffered\n"))
                    } else {
                        Ok(tree.render())
                    }
                }
                _ => Err(ShellError::Usage("trace <id>")),
            },
            "stats" => match args {
                [] => Ok(self.render_stats()),
                [flag] if flag == "--prom" => Ok(hac_obs::prometheus()),
                [flag] if flag == "--events" => {
                    let mut out = String::new();
                    out.push_str("recent events (oldest first):\n");
                    for e in hac_obs::recent_events() {
                        out.push_str(&format!("  {}\n", e.render()));
                    }
                    let slow = hac_obs::slow_ops();
                    if !slow.is_empty() {
                        out.push_str("slow ops:\n");
                        for e in slow {
                            out.push_str(&format!("  {}\n", e.render()));
                        }
                    }
                    Ok(out)
                }
                flags if flags.iter().all(|f| is_refresh_flag(f)) && !flags.is_empty() => {
                    let (interval, frames) = parse_refresh_flags(flags)
                        .ok_or(ShellError::Usage("stats [--watch[=secs]] [--frames=n]"))?;
                    let fs = Arc::clone(&self.fs);
                    Ok(watch_loop(interval, frames, move || render_stats_for(&fs)))
                }
                _ => Err(ShellError::Usage(
                    "stats [--prom|--events|--watch[=secs] [--frames=n]]",
                )),
            },
            "top" => {
                if !args.iter().all(|f| is_refresh_flag(f)) {
                    return Err(ShellError::Usage("top [--watch[=secs]] [--frames=n]"));
                }
                let cfg = self.fs.config();
                // `top` is often the first observability consumer in a
                // session: make sure objectives are installed and the
                // sampler is feeding the windows it renders.
                if hac_obs::slo::engine().is_empty() && !cfg.slos.is_empty() {
                    hac_obs::slo::install(&cfg.slos);
                }
                hac_obs::start_sampler(std::time::Duration::from_millis(cfg.sample_interval_ms));
                hac_obs::sample_if_due();
                match args {
                    [] => Ok(render_top(
                        &self.fs,
                        self.fed_remote.lock().unwrap().as_deref(),
                    )),
                    flags => {
                        let (interval, frames) = parse_refresh_flags(flags)
                            .ok_or(ShellError::Usage("top [--watch[=secs]] [--frames=n]"))?;
                        let fs = Arc::clone(&self.fs);
                        let fed = Arc::clone(&self.fed_remote);
                        Ok(watch_loop(interval, frames, move || {
                            hac_obs::sample_if_due();
                            render_top(&fs, fed.lock().unwrap().as_deref())
                        }))
                    }
                }
            }
            "slo" => match args {
                [word] if word == "status" => {
                    let cfg = self.fs.config();
                    if hac_obs::slo::engine().is_empty() && !cfg.slos.is_empty() {
                        hac_obs::slo::install(&cfg.slos);
                    }
                    hac_obs::sample_if_due();
                    Ok(render_slo_status())
                }
                _ => Err(ShellError::Usage("slo status")),
            },
            "store" => match args {
                [word] if word == "status" => {
                    let s = self.fs.store_status()?;
                    Ok(format!(
                        "manifest seq {}  base {}  segments {} ({} docs, {} B)\n\
                         wal {} B  objects {} ({} B)\n",
                        s.manifest_seq,
                        if s.base_present { "yes" } else { "no" },
                        s.segments_live,
                        s.segment_docs,
                        s.segment_bytes,
                        s.wal_bytes,
                        s.objects,
                        s.object_bytes,
                    ))
                }
                [word, rest @ ..] if word == "gc" && rest.len() <= 1 => {
                    let grace = match rest {
                        [g] => g
                            .parse::<u64>()
                            .map_err(|_| ShellError::Usage("store gc [grace]"))?,
                        _ => 0,
                    };
                    let report = self.fs.store_gc(grace)?;
                    Ok(format!(
                        "removed {} unreferenced objects ({} B)\n",
                        report.removed, report.bytes
                    ))
                }
                [word] if word == "checkpoint" => {
                    self.fs.persist_index()?;
                    let s = self.fs.store_status()?;
                    Ok(format!(
                        "checkpointed: manifest seq {}, {} segments live\n",
                        s.manifest_seq, s.segments_live
                    ))
                }
                _ => Err(ShellError::Usage(
                    "store status | store gc [grace] | store checkpoint",
                )),
            },
            other => Err(ShellError::UnknownCommand(other.to_string())),
        }
    }

    /// The plain `stats` snapshot (index shape plus every raw metric).
    fn render_stats(&self) -> String {
        render_stats_for(&self.fs)
    }

    /// The `fed` command family: shard the shell's export across N
    /// servers (`fed serve`), serve exactly one shard of a pre-agreed
    /// multi-process placement (`fed shard`), attach an in-process read
    /// replica to a mounted federation (`fed follow`), tear everything
    /// down (`fed stop`), and inspect both sides of a federation
    /// (`fed status`).
    fn cmd_fed(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "fed serve <addr> <ns> <shards> [dir] | \
                             fed shard <i> <ns> <addr0,addr1,…> [dir] | \
                             fed follow <shard> | fed stop | fed status";
        match args {
            [word] if word == "stop" => {
                let followers = self.followers.len();
                for follower in self.followers.drain(..) {
                    follower.stop();
                }
                if self.fed_servers.is_empty() {
                    return Ok(if followers > 0 {
                        format!("stopped {followers} replica followers\n")
                    } else {
                        "no federation serving\n".to_string()
                    });
                }
                let n = self.fed_servers.len();
                for server in self.fed_servers.drain(..) {
                    server.shutdown();
                }
                let mut out = format!("stopped {n} shard servers\n");
                if followers > 0 {
                    out.push_str(&format!("stopped {followers} replica followers\n"));
                }
                Ok(out)
            }
            [word] if word == "status" => {
                let mut out = String::new();
                if !self.fed_servers.is_empty() {
                    out.push_str(&format!("serving {} shards:\n", self.fed_servers.len()));
                    for server in &self.fed_servers {
                        out.push_str(&format!("  tcp://{}/\n", server.local_addr()));
                    }
                }
                if let Some(fed) = self.fed_remote.lock().unwrap().clone() {
                    let st = fed.status();
                    out.push_str(&format!(
                        "federation {} (generation {}, last result {}):\n",
                        st.logical,
                        st.generation,
                        if st.last_partial {
                            "PARTIAL"
                        } else {
                            "complete"
                        },
                    ));
                    for shard in &st.shards {
                        out.push_str(&format!(
                            "  {} @ {} [{}]: ok {}, errors {}, failovers {}, \
                             timeouts {}, replicas {}",
                            shard.ns,
                            shard.addr,
                            shard.health(),
                            shard.ok,
                            shard.errors,
                            shard.failovers,
                            shard.timeouts,
                            shard.replicas,
                        ));
                        if shard.consecutive_failures > 0 {
                            out.push_str(&format!(
                                " ({} consecutive failures)",
                                shard.consecutive_failures
                            ));
                        }
                        out.push('\n');
                    }
                }
                if out.is_empty() {
                    out.push_str("no federation running\n");
                }
                Ok(out)
            }
            [word, addr, ns, shards, rest @ ..] if word == "serve" && rest.len() <= 1 => {
                if !self.fed_servers.is_empty() {
                    return Err(ShellError::Usage(
                        "fed serve: already running (use `fed stop` first)",
                    ));
                }
                let count: usize = shards
                    .parse()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or(ShellError::Usage("fed serve: <shards> must be 1..=64"))?;
                let export = match rest {
                    [dir] => self.resolve_arg(dir)?,
                    _ => VPath::root(),
                };
                let (host, port) = addr
                    .rsplit_once(':')
                    .ok_or(ShellError::Usage("fed serve: <addr> must be host:port"))?;
                let base_port: u16 = port
                    .parse()
                    .map_err(|_| ShellError::Usage("fed serve: bad port"))?;

                // Bootstrap in two generations: serve behind a map with
                // unknown addresses, then publish the real ones (placement
                // hashes paths, so the upgrade is placement-neutral).
                let provisional = Arc::new(hac_fed::ShardMap::new(ns, &vec![String::new(); count]));
                let mut servers: Vec<hac_net::HacServer> = Vec::new();
                let mut backends = Vec::new();
                let mut addrs = Vec::new();
                for shard in 0..count {
                    let inner = Arc::new(hac_remote::RemoteHac::new(
                        &provisional.shards[shard].ns,
                        Arc::clone(&self.fs),
                        export.clone(),
                    ));
                    let backend = Arc::new(hac_fed::ShardBackend::new(
                        inner,
                        Arc::clone(&provisional),
                        shard,
                    ));
                    let bind = if base_port == 0 {
                        format!("{host}:0")
                    } else {
                        format!("{host}:{}", base_port + shard as u16)
                    };
                    let server = hac_net::HacServer::serve(
                        &bind,
                        vec![backend.clone() as Arc<dyn RemoteQuerySystem>],
                        hac_net::ServerConfig::default(),
                    )
                    .map_err(|e| {
                        // Don't leave a half-started federation behind.
                        for started in servers.drain(..) {
                            started.shutdown();
                        }
                        ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                            e.to_string(),
                        )))
                    })?;
                    addrs.push(server.local_addr().to_string());
                    servers.push(server);
                    backends.push(backend);
                }
                let mut map = hac_fed::ShardMap::new(ns, &addrs);
                map.generation = 2;
                let map = Arc::new(map);
                for backend in &backends {
                    backend.set_map(Arc::clone(&map));
                }

                let mut out = format!("serving {ns} across {count} shards:\n");
                for entry in &map.shards {
                    out.push_str(&format!(
                        "  {} on tcp://{}/{}\n",
                        entry.ns, entry.addr, entry.ns
                    ));
                }
                out.push_str(&format!(
                    "mount with: mount <dir> fed://{}/{ns}\n",
                    map.shards[0].addr
                ));
                self.fed_servers = servers;
                Ok(out)
            }
            // One shard of a multi-process federation: every process is
            // handed the same full peer list (so every copy of the map
            // agrees on placement) and binds only its own entry. The
            // map is final from the start — no provisional generation —
            // because the addresses were agreed before any bind.
            [word, idx, ns, addrs, rest @ ..] if word == "shard" && rest.len() <= 1 => {
                if !self.fed_servers.is_empty() {
                    return Err(ShellError::Usage(
                        "fed shard: already serving (use `fed stop` first)",
                    ));
                }
                let peers: Vec<String> = addrs.split(',').map(str::to_string).collect();
                let shard: usize = idx
                    .parse()
                    .ok()
                    .filter(|&i| i < peers.len())
                    .ok_or(ShellError::Usage("fed shard: <i> must index the peer list"))?;
                let export = match rest {
                    [dir] => self.resolve_arg(dir)?,
                    _ => VPath::root(),
                };
                let mut map = hac_fed::ShardMap::new(ns, &peers);
                map.generation = 2;
                let map = Arc::new(map);
                let inner = Arc::new(hac_remote::RemoteHac::new(
                    &map.shards[shard].ns,
                    Arc::clone(&self.fs),
                    export,
                ));
                let backend = Arc::new(hac_fed::ShardBackend::new(inner, Arc::clone(&map), shard));
                let server = hac_net::HacServer::serve(
                    &peers[shard],
                    vec![backend as Arc<dyn RemoteQuerySystem>],
                    hac_net::ServerConfig::default(),
                )
                .map_err(|e| {
                    ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                        e.to_string(),
                    )))
                })?;
                let bound = server.local_addr();
                let shard_ns = map.shards[shard].ns.clone();
                self.fed_servers.push(server);
                Ok(format!(
                    "serving shard {shard} ({shard_ns}) of {ns} on tcp://{bound}/ \
                     ({} shards, placement generation {})\n\
                     mount with: mount <dir> fed://{}/{ns}\n",
                    map.shard_count(),
                    map.generation,
                    map.shards[0].addr,
                ))
            }
            // An in-process read replica of one shard of the MOUNTED
            // federation: dial the primary, catch up once (so the first
            // failover read is warm), register as a failover target,
            // then keep following in the background. The replica speaks
            // the v5 obs ops too, so fleet scrapes stay complete with
            // it in the peer set.
            [word, idx] if word == "follow" => {
                let fed = self
                    .fed_remote
                    .lock()
                    .unwrap()
                    .clone()
                    .ok_or(ShellError::Usage(
                        "fed follow: mount a federation first (`mount <dir> fed://host:port/ns`)",
                    ))?;
                let map = fed.map().clone();
                let shard: usize =
                    idx.parse()
                        .ok()
                        .filter(|&i| i < map.shards.len())
                        .ok_or(ShellError::Usage(
                            "fed follow: <shard> must index the mounted shard list",
                        ))?;
                let entry = &map.shards[shard];
                let source = Arc::new(hac_net::NetRemote::connect(
                    &entry.ns,
                    &entry.addr,
                    hac_net::ClientConfig::default(),
                ));
                let replica = Arc::new(hac_fed::Replica::new(source));
                let report = replica.sync_once().map_err(|e| {
                    ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                        format!("fed follow: initial sync failed: {e}"),
                    )))
                })?;
                fed.add_replica(shard, Arc::clone(&replica) as Arc<dyn RemoteQuerySystem>);
                self.followers
                    .push(replica.follow(hac_core::remote::RetryPolicy::daemon(
                        std::time::Duration::from_millis(200),
                    )));
                Ok(format!(
                    "following {} @ {}: caught up to manifest seq {} \
                     ({} segments applied), registered for failover\n",
                    entry.ns, entry.addr, report.manifest_seq, report.segments_applied,
                ))
            }
            _ => Err(ShellError::Usage(USAGE)),
        }
    }

    /// The `fleet` command family: scatter-scrape every peer of the
    /// mounted federation (primaries and replicas) and merge the result
    /// the same way `/fleet/metrics` does — one scrape path, two
    /// front-ends.
    fn cmd_fleet(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "fleet stats [--prom]";
        let prom = match args {
            [word] if word == "stats" => false,
            [word, flag] if word == "stats" && flag == "--prom" => true,
            _ => return Err(ShellError::Usage(USAGE)),
        };
        if self.fed_remote.lock().unwrap().is_none() {
            return Ok(
                "no federation mounted (fleet stats scrapes the peers behind \
                 `mount … fed://`)\n"
                    .to_string(),
            );
        }
        let text = hac_obs::http::fleet_metrics_text(&self.fleet_hooks());
        if prom {
            return Ok(text);
        }
        // Compact summary: the scrape above refreshed the per-peer
        // up/down markers in the local registry; series counts come from
        // the merged exposition itself.
        let snap = hac_obs::snapshot();
        let mut peers: Vec<(String, i128)> = snap
            .gauges
            .iter()
            .filter(|g| g.id.name == "hac_fleet_peer_up")
            .filter_map(|g| {
                let node = g.id.labels.iter().find(|(k, _)| k == "node")?;
                Some((node.1.clone(), g.value))
            })
            .collect();
        peers.sort();
        let up = peers.iter().filter(|(_, v)| *v == 1).count();
        let partial = snap
            .gauge_value("hac_fleet_scrape_partial", &[])
            .unwrap_or(0)
            != 0;
        let mut out = format!(
            "fleet scrape: {} peers ({} up, {} down), result {}\n",
            peers.len(),
            up,
            peers.len() - up,
            if partial { "PARTIAL" } else { "complete" },
        );
        for (node, value) in &peers {
            if *value == 1 {
                let series = text
                    .lines()
                    .filter(|l| !l.starts_with('#') && l.contains(&format!("node=\"{node}\"")))
                    .count();
                out.push_str(&format!("  {node:<32} up    {series:>5} series\n"));
            } else {
                out.push_str(&format!("  {node:<32} DOWN\n"));
            }
        }
        out.push_str("merged exposition: `fleet stats --prom` or GET /fleet/metrics\n");
        Ok(out)
    }

    /// Builds the fleet hooks for [`hac_obs::ObsServer::serve_fleet`]
    /// and `fleet stats`: thin closures over the mounted federation's
    /// scatter helpers. With no federation mounted they return empty
    /// peer sets — the obs endpoints then serve the purely local view.
    fn fleet_hooks(&self) -> hac_obs::http::FleetHooks {
        let self_node = self
            .server_addr()
            .or_else(|| self.fed_servers.first().map(hac_net::HacServer::local_addr))
            .map(|a| a.to_string())
            .unwrap_or_else(|| "coordinator".to_string());
        let fed = |slot: &Arc<std::sync::Mutex<Option<Arc<hac_fed::FedRemote>>>>| {
            // Clone the handle out so the scatter runs without the lock.
            slot.lock().unwrap().clone()
        };
        let traces = Arc::clone(&self.fed_remote);
        let metrics = Arc::clone(&self.fed_remote);
        let health = Arc::clone(&self.fed_remote);
        hac_obs::http::FleetHooks {
            self_node,
            trace_spans: Arc::new(move |id| {
                fed(&traces).map(|f| f.fleet_trace(id)).unwrap_or_default()
            }),
            metrics: Arc::new(move || fed(&metrics).map(|f| f.fleet_metrics()).unwrap_or_default()),
            health: Arc::new(move || match fed(&health) {
                Some(f) => format!("{}\n", f.status().to_json()),
                None => "{\"federation\":null}\n".to_string(),
            }),
        }
    }

    /// Builds the `/statusz` closure for the observability server: a JSON
    /// snapshot of index shape, metadata footprint, the exporting
    /// `HacServer` (if any), buffered telemetry, and the tracing toggle.
    fn status_fn(&self) -> hac_obs::http::StatusFn {
        let fs = Arc::clone(&self.fs);
        let net_addr = Arc::clone(&self.net_addr);
        Arc::new(move || {
            let s = fs.index_stats();
            let server = match *net_addr.lock().unwrap() {
                Some(addr) => format!("\"tcp://{addr}/\""),
                None => "null".to_string(),
            };
            format!(
                "{{\"index\":{{\"docs\":{},\"terms\":{},\"blocks\":{},\"bytes\":{}}},\
                 \"metadata_bytes\":{},\"hac_server\":{},\
                 \"events_buffered\":{},\"slow_ops_buffered\":{},\
                 \"tracing_enabled\":{}}}\n",
                s.docs,
                s.terms,
                s.blocks,
                s.total_bytes(),
                fs.metadata_bytes(),
                server,
                hac_obs::recent_events().len(),
                hac_obs::slow_ops().len(),
                hac_obs::tracing_enabled(),
            )
        })
    }

    /// Executes a `;`-separated script, collecting output; stops at the
    /// first error.
    pub fn exec_script(&mut self, script: &str) -> Result<String, ShellError> {
        let mut out = String::new();
        for part in script.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push_str(&self.exec(part)?);
        }
        Ok(out)
    }
}

/// True for the flags shared by `top` and `stats --watch`.
fn is_refresh_flag(f: &str) -> bool {
    f == "--watch" || f.starts_with("--watch=") || f.starts_with("--frames=")
}

/// Parses `--watch[=secs]` / `--frames=n` into (interval, frame count).
/// `--watch` alone refreshes every 2s until interrupted; `--frames` bounds
/// the loop (tests and scripts use it). Returns `None` on malformed values.
fn parse_refresh_flags(flags: &[String]) -> Option<(std::time::Duration, u64)> {
    let mut interval = std::time::Duration::from_secs(2);
    let mut frames = u64::MAX;
    for f in flags {
        if let Some(v) = f.strip_prefix("--watch=") {
            let secs: f64 = v.parse().ok().filter(|s| *s > 0.0)?;
            interval = std::time::Duration::from_secs_f64(secs);
        } else if let Some(v) = f.strip_prefix("--frames=") {
            frames = v.parse().ok().filter(|n| *n > 0)?;
        } else if f != "--watch" {
            return None;
        }
    }
    Some((interval, frames))
}

/// Shared refresh loop of `top --watch` and `stats --watch`: renders a
/// frame, prints it behind an ANSI clear-screen, sleeps, repeats. The last
/// frame is also *returned* so scripted callers (and tests) get output
/// through the normal command path.
fn watch_loop(interval: std::time::Duration, frames: u64, render: impl Fn() -> String) -> String {
    let mut last = String::new();
    for i in 0..frames {
        last = render();
        // \x1b[2J clears the screen, \x1b[H homes the cursor.
        print!("\x1b[2J\x1b[H{last}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if i + 1 < frames {
            std::thread::sleep(interval);
        }
    }
    last
}

fn render_stats_for(fs: &HacFs) -> String {
    let s = fs.index_stats();
    let mut out = format!(
        "docs {}  terms {}  blocks {}  index {} B  hac-metadata {} B\n",
        s.docs,
        s.terms,
        s.blocks,
        s.total_bytes(),
        fs.metadata_bytes()
    );
    let snap = hac_obs::snapshot();
    if !snap.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for c in &snap.counters {
            out.push_str(&format!("  {:<56} {}\n", c.id.render(), c.value));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for g in &snap.gauges {
            out.push_str(&format!("  {:<56} {}\n", g.id.render(), g.value));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        for h in &snap.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "  {:<56} count {}  sum {}  mean {}\n",
                h.id.render(),
                h.count,
                h.sum,
                mean
            ));
        }
    }
    out
}

/// Formats a rate for the dashboard (`-` until two samples exist).
fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{r:.1}"),
        None => "-".to_string(),
    }
}

/// Formats a windowed percentile in µs.
fn fmt_pct(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "-".to_string(),
    }
}

/// One frame of the `top` dashboard: windowed rates, percentiles, daemon
/// and store health, the federation panel (when one is mounted), and the
/// active-alert list, all from the global time-series layer.
fn render_top(fs: &HacFs, fed: Option<&hac_fed::FedRemote>) -> String {
    let ts = hac_obs::timeseries::global();
    let snap = hac_obs::snapshot();
    let s = fs.index_stats();
    let mut out = String::new();
    out.push_str(&format!(
        "hac top — sampler {} @ {}ms, {} samples\n",
        if hac_obs::sampler_running() {
            "running"
        } else {
            "on-demand"
        },
        ts.interval_ms(),
        ts.sample_count()
    ));
    out.push_str(&format!(
        "index      docs {}  terms {}  index {} B  metadata {} B\n",
        s.docs,
        s.terms,
        s.total_bytes(),
        fs.metadata_bytes()
    ));
    out.push_str(&format!(
        "server rps 1s {:>8}  10s {:>8}  60s {:>8}   err {} (10s)\n",
        fmt_rate(ts.rate("hac_net_server_requests_total", 1)),
        fmt_rate(ts.rate("hac_net_server_requests_total", 10)),
        fmt_rate(ts.rate("hac_net_server_requests_total", 60)),
        match ts.ratio(
            "hac_net_server_errors_total",
            "hac_net_server_requests_total",
            10
        ) {
            Some(r) => format!("{:.2}%", r * 100.0),
            None => "-".to_string(),
        },
    ));
    out.push_str(&format!(
        "server lat p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  (60s)\n",
        fmt_pct(ts.percentile_us("hac_net_server_request_duration_us", 60, 50.0)),
        fmt_pct(ts.percentile_us("hac_net_server_request_duration_us", 60, 95.0)),
        fmt_pct(ts.percentile_us("hac_net_server_request_duration_us", 60, 99.0)),
    ));
    out.push_str(&format!(
        "query eval p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  {}/s (10s)\n",
        fmt_pct(ts.percentile_us("hac_query_eval_duration_us", 60, 50.0)),
        fmt_pct(ts.percentile_us("hac_query_eval_duration_us", 60, 95.0)),
        fmt_pct(ts.percentile_us("hac_query_eval_duration_us", 60, 99.0)),
        fmt_rate(ts.rate("hac_query_evals_total", 10)),
    ));
    let passes_ok = snap
        .counter_value("hac_reindex_passes_total", &[("outcome", "ok")])
        .unwrap_or(0);
    let passes_failed = snap
        .counter_value("hac_reindex_passes_total", &[("outcome", "failed")])
        .unwrap_or(0);
    out.push_str(&format!(
        "reindex    passes ok {passes_ok}  failed {passes_failed}  backoff {} ms  dirty {}\n",
        snap.gauge_value("hac_reindex_backoff_ms", &[]).unwrap_or(0),
        snap.gauge_value("hac_reindex_dirty_docs", &[]).unwrap_or(0),
    ));
    out.push_str(&format!(
        "store      commit p99 {:>7}us (60s)  segments live {}\n",
        fmt_pct(ts.percentile_us("hac_store_commit_us", 60, 99.0)),
        snap.gauge_value("hac_store_segments_live", &[])
            .unwrap_or(0),
    ));
    if let Some(fed) = fed {
        let st = fed.status();
        let count = |h: hac_fed::ShardHealth| st.shards.iter().filter(|s| s.health() == h).count();
        out.push_str(&format!(
            "federation {}: {} shards ({} up, {} degraded, {} down)  last result {}\n",
            st.logical,
            st.shards.len(),
            count(hac_fed::ShardHealth::Up),
            count(hac_fed::ShardHealth::Degraded),
            count(hac_fed::ShardHealth::Down),
            if st.last_partial {
                "PARTIAL"
            } else {
                "complete"
            },
        ));
        // Replica lag, worst case across followed namespaces (the
        // gauges are per-ns; a caught-up fleet reads 0/0).
        let worst = |name: &str| {
            snap.gauges
                .iter()
                .filter(|g| g.id.name == name)
                .map(|g| g.value)
                .max()
        };
        if let (Some(segs), Some(us)) = (
            worst("hac_fed_replica_lag_segments"),
            worst("hac_fed_replica_lag_us"),
        ) {
            out.push_str(&format!(
                "           replica lag max {segs} segments, {us} us\n"
            ));
        }
    }
    let status = hac_obs::slo::engine().status();
    let active: Vec<&hac_obs::slo::SloStatus> = status
        .iter()
        .filter(|s| s.state != hac_obs::SloState::Ok)
        .collect();
    if status.is_empty() {
        out.push_str("alerts     (no objectives installed)\n");
    } else if active.is_empty() {
        out.push_str(&format!(
            "alerts     none ({} objectives ok)\n",
            status.len()
        ));
    } else {
        for a in active {
            out.push_str(&format!(
                "alerts     [{}] {}  value {}  threshold {:.3}\n",
                a.state.as_str().to_uppercase(),
                a.spec.name,
                a.value
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
                a.spec.threshold(),
            ));
        }
    }
    out
}

/// `slo status`: every installed objective with its state and last value.
fn render_slo_status() -> String {
    let status = hac_obs::slo::engine().status();
    if status.is_empty() {
        return "no objectives installed\n".to_string();
    }
    let mut out = String::new();
    for s in &status {
        out.push_str(&format!(
            "{:<7} {:<60} value {}\n",
            s.state.as_str(),
            s.spec.render(),
            s.value
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".to_string()),
        ));
    }
    let recent = hac_obs::slo::engine().recent_alerts();
    if !recent.is_empty() {
        out.push_str("recent transitions:\n");
        for a in recent.iter().rev().take(8) {
            out.push_str(&format!("  {}\n", a.message));
        }
    }
    out
}

fn target_str(t: &LinkTarget) -> String {
    match t {
        LinkTarget::Local(fid) => format!("local {fid}"),
        LinkTarget::Remote(ns, id) => format!("remote {ns}:{id}"),
    }
}

/// `help` text.
pub const HELP: &str = "\
file system : pwd cd ls [-l] cat mkdir [-p] write append rm [-r] rmdir mv \
ln readlink
semantic    : smkdir <dir> <query> | query <dir> | chquery <dir> <query> | \
sact <link> | ssync [path] | find <query> | explain <query>
curation    : links <dir> | prohibited <dir> | forgive <dir> <i> | pin <link>
network     : serve <addr> <ns> [dir] | serve stop | serve status | \
mount <dir> tcp://host:port/ns
federation  : fed serve <addr> <ns> <shards> [dir] | \
fed shard <i> <ns> <addr0,addr1,…> [dir] | fed follow <shard> | \
fed stop | fed status | fleet stats [--prom] | mount <dir> fed://host:port/ns
observe     : obs-serve <addr>|stop|status | trace <id> | \
stats [--prom|--events|--watch[=secs]] | top [--watch[=secs]] | slo status
durability  : store status | store gc [grace] | store checkpoint
other       : mounts <dir> | help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn sh() -> Shell {
        let mut sh = Shell::new();
        sh.exec("mkdir /docs").unwrap();
        sh.exec("write /docs/a.txt fingerprint ridge patterns")
            .unwrap();
        sh.exec("write /docs/b.txt grocery list").unwrap();
        sh.exec("ssync").unwrap();
        sh
    }

    #[test]
    fn basic_file_commands() {
        let mut sh = sh();
        assert_eq!(sh.exec("pwd").unwrap(), "/");
        sh.exec("cd /docs").unwrap();
        assert_eq!(sh.exec("pwd").unwrap(), "/docs");
        assert_eq!(sh.exec("ls").unwrap(), "a.txt\nb.txt\n");
        assert_eq!(sh.exec("cat a.txt").unwrap(), "fingerprint ridge patterns");
        // Relative paths resolve against cwd.
        sh.exec("write c.txt more words").unwrap();
        assert!(sh.exec("ls").unwrap().contains("c.txt"));
        sh.exec("mv c.txt d.txt").unwrap();
        sh.exec("rm d.txt").unwrap();
        assert!(!sh.exec("ls").unwrap().contains("d.txt"));
    }

    #[test]
    fn semantic_workflow() {
        let mut sh = sh();
        let out = sh.exec("smkdir /fp fingerprint").unwrap();
        assert!(out.contains("1 links"), "{out}");
        assert_eq!(sh.exec("ls /fp").unwrap(), "a.txt\n");
        assert_eq!(sh.exec("query /fp").unwrap(), "fingerprint\n");
        assert_eq!(
            sh.exec("sact /fp/a.txt").unwrap(),
            "fingerprint ridge patterns\n"
        );
        sh.exec("chquery /fp grocery").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "b.txt\n");
        // ls -l marks semantic directories and link targets.
        let long = sh.exec("ls -l /").unwrap();
        assert!(long.contains("[semantic]"), "{long}");
        let long = sh.exec("ls -l /fp").unwrap();
        assert!(long.contains("-> /docs/b.txt"), "{long}");
    }

    #[test]
    fn curation_commands() {
        let mut sh = sh();
        sh.exec("smkdir /fp fingerprint").unwrap();
        sh.exec("rm /fp/a.txt").unwrap();
        let prohibited = sh.exec("prohibited /fp").unwrap();
        assert!(prohibited.contains("[0] local"), "{prohibited}");
        sh.exec("ssync").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "");
        sh.exec("forgive /fp 0").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "a.txt\n");
        sh.exec("ln /docs/b.txt /fp/extra").unwrap();
        sh.exec("pin /fp/a.txt").unwrap();
        let links = sh.exec("links /fp").unwrap();
        assert!(links.contains("permanent a.txt"), "{links}");
        assert!(links.contains("permanent extra"), "{links}");
    }

    #[test]
    fn quoted_queries_and_scripts() {
        let mut sh = Shell::new();
        let out = sh
            .exec_script(
                "mkdir /d; write /d/x.txt ridge endings here; ssync; \
                 smkdir /q \"ridge endings\"; ls /q",
            )
            .unwrap();
        assert!(out.contains("x.txt"), "{out}");
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut sh = sh();
        assert!(matches!(
            sh.exec("frobnicate"),
            Err(ShellError::UnknownCommand(_))
        ));
        assert!(sh.exec("cd").is_ok());
        assert!(matches!(sh.exec("cd /docs/a.txt"), Err(ShellError::Hac(_))));
        assert!(matches!(sh.exec("cat"), Err(ShellError::Usage(_))));
        assert!(matches!(sh.exec("cat /nope"), Err(ShellError::Hac(_))));
        // Still alive.
        assert_eq!(sh.exec("pwd").unwrap(), "/");
    }

    #[test]
    fn find_is_cwd_scoped() {
        let mut sh = sh();
        sh.exec("mkdir /other").unwrap();
        sh.exec("write /other/z.txt fingerprint elsewhere").unwrap();
        sh.exec("ssync").unwrap();
        sh.exec("cd /docs").unwrap();
        let out = sh.exec("find fingerprint").unwrap();
        assert!(out.contains("/docs/a.txt"));
        assert!(!out.contains("/other/z.txt"));
        let empty = sh.exec("find nosuchword").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn serve_and_mount_over_loopback() {
        // One shell exports its fs; a second mounts it over real TCP.
        let mut exporter = Shell::new();
        exporter
            .exec_script(
                "mkdir /pub; write /pub/notes.txt shared semantic notes; \
                 write /pub/misc.txt grocery list; ssync",
            )
            .unwrap();
        let out = exporter.exec("serve 127.0.0.1:0 team /pub").unwrap();
        assert!(out.contains("serving team on tcp://"), "{out}");
        let addr = exporter.server_addr().expect("server running");
        let status = exporter.exec("serve status").unwrap();
        assert!(status.contains(&addr.to_string()), "{status}");
        assert!(status.contains("loop:"), "{status}");
        assert!(status.contains("workers"), "{status}");
        assert!(matches!(
            exporter.exec("serve 127.0.0.1:0 again"),
            Err(ShellError::Usage(_))
        ));

        let mut importer = Shell::new();
        importer.exec("mkdir /lib").unwrap();
        let out = importer
            .exec(&format!("mount /lib tcp://{addr}/team"))
            .unwrap();
        assert!(out.contains("mounted team at /lib"), "{out}");
        assert_eq!(importer.exec("mounts /lib").unwrap(), "team\n");
        let out = importer.exec("smkdir /sem semantic").unwrap();
        assert!(out.contains("1 links"), "{out}");
        assert!(importer.exec("ls /sem").unwrap().contains("notes.txt"));
        // cat follows the remote link and fetches the bytes over the wire.
        let body = importer.exec("cat /sem/notes.txt").unwrap();
        assert!(body.contains("shared semantic notes"), "{body}");

        assert!(matches!(
            importer.exec("mount /lib http://nope/x"),
            Err(ShellError::Usage(_))
        ));
        let stopped = exporter.exec("serve stop").unwrap();
        assert!(stopped.contains("stopped server"), "{stopped}");
        assert_eq!(exporter.exec("serve stop").unwrap(), "no server running\n");
    }

    #[test]
    fn stats_and_help() {
        let mut sh = sh();
        assert!(sh.exec("stats").unwrap().contains("docs 2"));
        assert!(sh.exec("help").unwrap().contains("smkdir"));
        assert_eq!(sh.exec("").unwrap(), "");
    }

    #[test]
    fn top_slo_and_watch_render() {
        let mut sh = sh();
        let top = sh.exec("top").unwrap();
        assert!(top.contains("hac top —"), "{top}");
        assert!(top.contains("server rps"), "{top}");
        assert!(top.contains("query eval"), "{top}");
        // Default objectives were installed by the first `top`.
        let slo = sh.exec("slo status").unwrap();
        assert!(slo.contains("query-latency"), "{slo}");
        assert!(slo.starts_with("ok"), "fresh objectives are ok: {slo}");
        // Bounded watch loops return their last frame.
        let watched = sh.exec("stats --watch=0.01 --frames=2").unwrap();
        assert!(watched.contains("docs 2"), "{watched}");
        let watched = sh.exec("top --watch=0.01 --frames=2").unwrap();
        assert!(watched.contains("hac top —"), "{watched}");
        assert!(matches!(sh.exec("top --bogus"), Err(ShellError::Usage(_))));
        assert!(matches!(
            sh.exec("top --watch=nope"),
            Err(ShellError::Usage(_))
        ));
        assert!(matches!(sh.exec("slo bogus"), Err(ShellError::Usage(_))));
    }

    #[test]
    fn store_commands() {
        let mut sh = sh(); // sh() ran one ssync over two docs
        let status = sh.exec("store status").unwrap();
        assert!(status.contains("segments 1 (2 docs"), "{status}");
        // Checkpoint folds the run into a base snapshot...
        let checkpointed = sh.exec("store checkpoint").unwrap();
        assert!(checkpointed.contains("0 segments live"), "{checkpointed}");
        assert!(sh.exec("store status").unwrap().contains("base yes"));
        // ...leaving the superseded segment + manifests for gc.
        let swept = sh.exec("store gc 0").unwrap();
        assert!(!swept.starts_with("removed 0"), "{swept}");
        assert!(sh.exec("store gc 0").unwrap().starts_with("removed 0"));
        assert!(matches!(sh.exec("store bogus"), Err(ShellError::Usage(_))));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_reports_verification_work() {
        let mut sh = Shell::new();
        sh.exec_script("mkdir /d; write /d/a.txt ridge valley; write /d/b.txt valley only; ssync")
            .unwrap();
        let out = sh.exec("explain ridge").unwrap();
        assert!(out.starts_with("1 hits;"), "{out}");
        assert!(out.contains("candidates"), "{out}");
        assert!(matches!(sh.exec("explain"), Err(ShellError::Usage(_))));
    }
}
