//! # hac-shell — `hacsh`
//!
//! An interactive shell over a [`HacFs`], exposing the paper's §4 command
//! suite: "well-known file system commands, such as `cd`, `ls`, `mkdir`,
//! `mv`, `rm` etc. … HAC also provides additional commands that manipulate
//! queries and semantic directories" — `smkdir`, `chquery`/`query`,
//! `sact`, `ssync`, plus the footnote API (`links`, `prohibited`, `pin`,
//! `forgive`).
//!
//! The [`Shell`] is a pure function from command lines to output strings,
//! so every command is unit-testable; `hacsh` (the binary) wraps it in a
//! stdin REPL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;

use std::fmt;
use std::sync::Arc;

use hac_core::{HacError, HacFs, LinkKind, LinkTarget, RemoteQuerySystem};
use hac_vfs::{NodeKind, VPath};

/// Shell-level errors (wrapping HAC errors with usage problems).
#[derive(Debug)]
pub enum ShellError {
    /// The command does not exist.
    UnknownCommand(String),
    /// Wrong number / shape of arguments.
    Usage(&'static str),
    /// The underlying file system refused.
    Hac(HacError),
}

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShellError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?} (try `help`)")
            }
            ShellError::Usage(u) => write!(f, "usage: {u}"),
            ShellError::Hac(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShellError {}

impl From<HacError> for ShellError {
    fn from(e: HacError) -> Self {
        ShellError::Hac(e)
    }
}

impl From<hac_vfs::VfsError> for ShellError {
    fn from(e: hac_vfs::VfsError) -> Self {
        ShellError::Hac(HacError::Vfs(e))
    }
}

/// A shell session: a file system plus a working directory, and (after
/// `serve` / `obs-serve`) the network and observability servers exporting
/// it.
pub struct Shell {
    fs: Arc<HacFs>,
    cwd: VPath,
    server: Option<hac_net::HacServer>,
    obs_server: Option<hac_obs::ObsServer>,
    /// Shared with the `/statusz` closure so it sees serve/stop live.
    net_addr: Arc<std::sync::Mutex<Option<std::net::SocketAddr>>>,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// Fresh shell over a fresh file system.
    pub fn new() -> Self {
        Self::over(Arc::new(HacFs::new()))
    }

    /// Shell over an existing file system (shared with other components).
    /// If no durable index store is attached yet, one is attached over the
    /// namespace's own reserved metadata area, so `ssync` passes commit
    /// crash-atomic segments and snapshots warm-start through recovery.
    pub fn over(fs: Arc<HacFs>) -> Self {
        if fs.store().is_none() {
            let backend = Arc::new(hac_core::VfsStore::new(Arc::clone(fs.vfs())));
            // Only fails on backend I/O; the in-VFS backend has none.
            let _ = fs.attach_store(backend);
        }
        Shell {
            fs,
            cwd: VPath::root(),
            server: None,
            obs_server: None,
            net_addr: Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Address of the running `serve` instance, if any.
    pub fn server_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(hac_net::HacServer::local_addr)
    }

    /// Address of the running `obs-serve` instance, if any.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(hac_obs::ObsServer::local_addr)
    }

    /// The wrapped file system.
    pub fn fs(&self) -> &Arc<HacFs> {
        &self.fs
    }

    /// Current working directory.
    pub fn cwd(&self) -> &VPath {
        &self.cwd
    }

    /// Resolves a possibly-relative path argument against the cwd.
    pub fn resolve_arg(&self, arg: &str) -> Result<VPath, ShellError> {
        let combined = if arg.starts_with('/') {
            arg.to_string()
        } else if self.cwd.is_root() {
            format!("/{arg}")
        } else {
            format!("{}/{arg}", self.cwd)
        };
        Ok(VPath::parse(&combined).map_err(HacError::Vfs)?)
    }

    /// Executes one command line, returning its output text.
    ///
    /// # Errors
    ///
    /// [`ShellError`] for unknown commands, usage mistakes, and file-system
    /// refusals; the session stays usable after any error.
    pub fn exec(&mut self, line: &str) -> Result<String, ShellError> {
        let words = parse::split(line);
        let Some((cmd, args)) = words.split_first() else {
            return Ok(String::new());
        };
        // Operation root: every command mints (or continues) a trace, so
        // child spans in query eval / resync / remote fetches nest under it.
        let _root = hac_obs::span!("hacsh_command", cmd = cmd);
        match cmd.as_str() {
            "help" => Ok(HELP.to_string()),
            "pwd" => Ok(self.cwd.to_string()),
            "cd" => {
                let target = match args {
                    [] => VPath::root(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("cd [dir]")),
                };
                let attr = self.fs.stat(&target)?;
                if !attr.is_dir() {
                    return Err(ShellError::Hac(HacError::NotADirectory(target)));
                }
                self.cwd = target;
                Ok(String::new())
            }
            "ls" => {
                let (long, rest) = match args {
                    [flag, rest @ ..] if flag == "-l" => (true, rest),
                    rest => (false, rest),
                };
                let dir = match rest {
                    [] => self.cwd.clone(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("ls [-l] [dir]")),
                };
                let mut out = String::new();
                for entry in self.fs.readdir(&dir)? {
                    if long {
                        let child = dir.join(&entry.name).map_err(HacError::Vfs)?;
                        let attr = self.fs.vfs().lstat(&child)?;
                        let suffix = match entry.kind {
                            NodeKind::Symlink => {
                                format!(" -> {}", self.fs.readlink(&child)?)
                            }
                            _ => String::new(),
                        };
                        let sem = if entry.kind == NodeKind::Dir && self.fs.is_semantic(&child) {
                            " [semantic]"
                        } else {
                            ""
                        };
                        out.push_str(&format!(
                            "{} {:>8} {}{}{}\n",
                            attr.kind.tag(),
                            attr.size,
                            entry.name,
                            suffix,
                            sem
                        ));
                    } else {
                        out.push_str(&entry.name);
                        out.push('\n');
                    }
                }
                Ok(out)
            }
            "cat" => match args {
                [p] => {
                    let path = self.resolve_arg(p)?;
                    // Semdir links can point at remote documents that only
                    // exist behind a mount; fetch_link resolves both those
                    // and ordinary local symlink targets.
                    let data = if self.fs.vfs().lstat(&path)?.kind == NodeKind::Symlink {
                        self.fs.fetch_link(&path)?
                    } else {
                        self.fs.read_file(&path)?.to_vec()
                    };
                    Ok(String::from_utf8_lossy(&data).to_string())
                }
                _ => Err(ShellError::Usage("cat <file>")),
            },
            "mkdir" => match args {
                [flag, p] if flag == "-p" => {
                    self.fs.mkdir_p(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                [p] => {
                    self.fs.mkdir(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("mkdir [-p] <dir>")),
            },
            "write" => match args {
                [p, rest @ ..] => {
                    let text = rest.join(" ");
                    self.fs.save(&self.resolve_arg(p)?, text.as_bytes())?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("write <file> <text…>")),
            },
            "append" => match args {
                [p, rest @ ..] => {
                    let text = rest.join(" ");
                    self.fs.append(&self.resolve_arg(p)?, text.as_bytes())?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("append <file> <text…>")),
            },
            "rm" => match args {
                [flag, p] if flag == "-r" => {
                    self.fs.remove_recursive(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                [p] => {
                    self.fs.unlink(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("rm [-r] <path>")),
            },
            "rmdir" => match args {
                [p] => {
                    self.fs.rmdir(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("rmdir <dir>")),
            },
            "mv" => match args {
                [from, to] => {
                    self.fs
                        .rename(&self.resolve_arg(from)?, &self.resolve_arg(to)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("mv <from> <to>")),
            },
            "ln" => match args {
                [target, link] => {
                    self.fs
                        .symlink(&self.resolve_arg(link)?, &self.resolve_arg(target)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("ln <target> <link>")),
            },
            "readlink" => match args {
                [p] => Ok(format!("{}\n", self.fs.readlink(&self.resolve_arg(p)?)?)),
                _ => Err(ShellError::Usage("readlink <link>")),
            },
            // --- semantic commands -------------------------------------
            "smkdir" => match args {
                [p, query @ ..] if !query.is_empty() => {
                    let dir = self.resolve_arg(p)?;
                    self.fs.smkdir(&dir, &query.join(" "))?;
                    let n = self.fs.readdir(&dir)?.len();
                    Ok(format!("created semantic directory {dir} ({n} links)\n"))
                }
                _ => Err(ShellError::Usage("smkdir <dir> <query…>")),
            },
            "query" | "sreadq" => match args {
                [p] => Ok(format!("{}\n", self.fs.get_query(&self.resolve_arg(p)?)?)),
                _ => Err(ShellError::Usage("query <dir>")),
            },
            "chquery" | "schquery" => match args {
                [p, query @ ..] if !query.is_empty() => {
                    self.fs.set_query(&self.resolve_arg(p)?, &query.join(" "))?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("chquery <dir> <query…>")),
            },
            "sact" => match args {
                [p] => {
                    let lines = self.fs.sact(&self.resolve_arg(p)?)?;
                    Ok(lines.join("\n") + if lines.is_empty() { "" } else { "\n" })
                }
                _ => Err(ShellError::Usage("sact <link>")),
            },
            "ssync" => {
                let path = match args {
                    [] => VPath::root(),
                    [p] => self.resolve_arg(p)?,
                    _ => return Err(ShellError::Usage("ssync [path]")),
                };
                let r = self.fs.ssync(&path)?;
                Ok(format!(
                    "indexed +{} ~{} -{}; {} dirs re-evaluated; {} links repaired\n",
                    r.added, r.updated, r.removed, r.dirs_synced, r.links_repaired
                ))
            }
            "explain" => match args {
                query if !query.is_empty() => {
                    let (hits, stats) = self.fs.search_explained(&self.cwd, &query.join(" "))?;
                    Ok(format!(
                        "{} hits; {} candidates, {} verified, {} false positives\n",
                        hits.len(),
                        stats.candidates,
                        stats.verified,
                        stats.false_positives
                    ))
                }
                _ => Err(ShellError::Usage("explain <query…>")),
            },
            "find" => match args {
                query if !query.is_empty() => {
                    let hits = self.fs.search(&self.cwd, &query.join(" "))?;
                    let mut out = String::new();
                    for h in hits {
                        out.push_str(&h.to_string());
                        out.push('\n');
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("find <query…>")),
            },
            // --- the footnote API ---------------------------------------
            "links" => match args {
                [p] => {
                    let mut out = String::new();
                    for link in self.fs.list_links(&self.resolve_arg(p)?)? {
                        let kind = match link.kind {
                            LinkKind::Transient => "transient",
                            LinkKind::Permanent => "permanent",
                        };
                        out.push_str(&format!(
                            "{:<9} {} -> {}\n",
                            kind,
                            link.name,
                            target_str(&link.target)
                        ));
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("links <dir>")),
            },
            "prohibited" => match args {
                [p] => {
                    let mut out = String::new();
                    for (i, t) in self
                        .fs
                        .list_prohibited(&self.resolve_arg(p)?)?
                        .iter()
                        .enumerate()
                    {
                        out.push_str(&format!("[{i}] {}\n", target_str(t)));
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("prohibited <dir>")),
            },
            "forgive" => match args {
                [p, idx] => {
                    let dir = self.resolve_arg(p)?;
                    let list = self.fs.list_prohibited(&dir)?;
                    let i: usize = idx
                        .parse()
                        .map_err(|_| ShellError::Usage("forgive <dir> <index>"))?;
                    let Some(target) = list.get(i) else {
                        return Err(ShellError::Usage("forgive <dir> <index>"));
                    };
                    self.fs.forgive(&dir, target)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("forgive <dir> <index>")),
            },
            "pin" => match args {
                [p] => {
                    self.fs.make_permanent(&self.resolve_arg(p)?)?;
                    Ok(String::new())
                }
                _ => Err(ShellError::Usage("pin <link>")),
            },
            // --- the network layer ---------------------------------------
            "serve" => match args {
                [word] if word == "stop" => match self.server.take() {
                    Some(server) => {
                        let addr = server.local_addr();
                        server.shutdown();
                        *self.net_addr.lock().unwrap() = None;
                        Ok(format!("stopped server on {addr}\n"))
                    }
                    None => Ok("no server running\n".to_string()),
                },
                [word] if word == "status" => Ok(match &self.server {
                    Some(s) => format!("serving on {}\n", s.local_addr()),
                    None => "no server running\n".to_string(),
                }),
                [addr, ns, rest @ ..] if rest.len() <= 1 => {
                    if self.server.is_some() {
                        return Err(ShellError::Usage(
                            "serve: already running (use `serve stop` first)",
                        ));
                    }
                    let export = match rest {
                        [dir] => self.resolve_arg(dir)?,
                        _ => VPath::root(),
                    };
                    let backend =
                        Arc::new(hac_remote::RemoteHac::new(ns, Arc::clone(&self.fs), export));
                    let server = hac_net::HacServer::serve(
                        addr.as_str(),
                        vec![backend],
                        hac_net::ServerConfig::default(),
                    )
                    .map_err(|e| {
                        ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                            e.to_string(),
                        )))
                    })?;
                    let bound = server.local_addr();
                    self.server = Some(server);
                    *self.net_addr.lock().unwrap() = Some(bound);
                    Ok(format!("serving {ns} on tcp://{bound}/{ns}\n"))
                }
                _ => Err(ShellError::Usage(
                    "serve <addr> <namespace> [dir] | serve stop | serve status",
                )),
            },
            "mount" => match args {
                [p, url] if url.starts_with("tcp://") => {
                    let dir = self.resolve_arg(p)?;
                    let remote =
                        hac_net::NetRemote::from_url(url, hac_net::ClientConfig::default())
                            .map_err(HacError::Remote)?;
                    let ns = remote.namespace();
                    self.fs.smount(&dir, Arc::new(remote))?;
                    Ok(format!("mounted {ns} at {dir}\n"))
                }
                _ => Err(ShellError::Usage("mount <dir> tcp://host:port/namespace")),
            },
            "mounts" => match args {
                [p] => {
                    let namespaces = self.fs.mounts_at(&self.resolve_arg(p)?)?;
                    Ok(namespaces
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join("\n")
                        + "\n")
                }
                _ => Err(ShellError::Usage("mounts <dir>")),
            },
            // --- observability --------------------------------------------
            "obs-serve" => match args {
                [word] if word == "stop" => match self.obs_server.take() {
                    Some(mut server) => {
                        let addr = server.local_addr();
                        server.shutdown();
                        Ok(format!("stopped observability server on {addr}\n"))
                    }
                    None => Ok("no observability server running\n".to_string()),
                },
                [word] if word == "status" => Ok(match &self.obs_server {
                    Some(s) => format!("observability on http://{}/\n", s.local_addr()),
                    None => "no observability server running\n".to_string(),
                }),
                [addr] => {
                    if self.obs_server.is_some() {
                        return Err(ShellError::Usage(
                            "obs-serve: already running (use `obs-serve stop` first)",
                        ));
                    }
                    let server = hac_obs::ObsServer::serve(addr.as_str(), self.status_fn())
                        .map_err(|e| {
                            ShellError::Hac(HacError::Remote(hac_core::RemoteError::Unavailable(
                                e.to_string(),
                            )))
                        })?;
                    let bound = server.local_addr();
                    self.obs_server = Some(server);
                    Ok(format!(
                        "observability on http://{bound}/ \
                         (/metrics /healthz /statusz /events /slow /trace/<id>)\n"
                    ))
                }
                _ => Err(ShellError::Usage(
                    "obs-serve <addr> | obs-serve stop | obs-serve status",
                )),
            },
            "trace" => match args {
                [id] => {
                    let Some(tid) = hac_obs::trace::parse_id(id) else {
                        return Err(ShellError::Usage("trace <trace-id (hex)>"));
                    };
                    let mut events = hac_obs::recent_events();
                    events.extend(hac_obs::slow_ops());
                    let tree = hac_obs::assemble(&events, tid);
                    if tree.roots.is_empty() {
                        Ok(format!("trace {id}: no spans buffered\n"))
                    } else {
                        Ok(tree.render())
                    }
                }
                _ => Err(ShellError::Usage("trace <id>")),
            },
            "stats" => match args {
                [] => {
                    let s = self.fs.index_stats();
                    let mut out = format!(
                        "docs {}  terms {}  blocks {}  index {} B  hac-metadata {} B\n",
                        s.docs,
                        s.terms,
                        s.blocks,
                        s.total_bytes(),
                        self.fs.metadata_bytes()
                    );
                    let snap = hac_obs::snapshot();
                    if !snap.counters.is_empty() {
                        out.push_str("\ncounters:\n");
                        for c in &snap.counters {
                            out.push_str(&format!("  {:<56} {}\n", c.id.render(), c.value));
                        }
                    }
                    if !snap.gauges.is_empty() {
                        out.push_str("\ngauges:\n");
                        for g in &snap.gauges {
                            out.push_str(&format!("  {:<56} {}\n", g.id.render(), g.value));
                        }
                    }
                    if !snap.histograms.is_empty() {
                        out.push_str("\nhistograms:\n");
                        for h in &snap.histograms {
                            let mean = h.sum.checked_div(h.count).unwrap_or(0);
                            out.push_str(&format!(
                                "  {:<56} count {}  sum {}  mean {}\n",
                                h.id.render(),
                                h.count,
                                h.sum,
                                mean
                            ));
                        }
                    }
                    Ok(out)
                }
                [flag] if flag == "--prom" => Ok(hac_obs::prometheus()),
                [flag] if flag == "--events" => {
                    let mut out = String::new();
                    out.push_str("recent events (oldest first):\n");
                    for e in hac_obs::recent_events() {
                        out.push_str(&format!("  {}\n", e.render()));
                    }
                    let slow = hac_obs::slow_ops();
                    if !slow.is_empty() {
                        out.push_str("slow ops:\n");
                        for e in slow {
                            out.push_str(&format!("  {}\n", e.render()));
                        }
                    }
                    Ok(out)
                }
                _ => Err(ShellError::Usage("stats [--prom|--events]")),
            },
            "store" => match args {
                [word] if word == "status" => {
                    let s = self.fs.store_status()?;
                    Ok(format!(
                        "manifest seq {}  base {}  segments {} ({} docs, {} B)\n\
                         wal {} B  objects {} ({} B)\n",
                        s.manifest_seq,
                        if s.base_present { "yes" } else { "no" },
                        s.segments_live,
                        s.segment_docs,
                        s.segment_bytes,
                        s.wal_bytes,
                        s.objects,
                        s.object_bytes,
                    ))
                }
                [word, rest @ ..] if word == "gc" && rest.len() <= 1 => {
                    let grace = match rest {
                        [g] => g
                            .parse::<u64>()
                            .map_err(|_| ShellError::Usage("store gc [grace]"))?,
                        _ => 0,
                    };
                    let report = self.fs.store_gc(grace)?;
                    Ok(format!(
                        "removed {} unreferenced objects ({} B)\n",
                        report.removed, report.bytes
                    ))
                }
                [word] if word == "checkpoint" => {
                    self.fs.persist_index()?;
                    let s = self.fs.store_status()?;
                    Ok(format!(
                        "checkpointed: manifest seq {}, {} segments live\n",
                        s.manifest_seq, s.segments_live
                    ))
                }
                _ => Err(ShellError::Usage(
                    "store status | store gc [grace] | store checkpoint",
                )),
            },
            other => Err(ShellError::UnknownCommand(other.to_string())),
        }
    }

    /// Builds the `/statusz` closure for the observability server: a JSON
    /// snapshot of index shape, metadata footprint, the exporting
    /// `HacServer` (if any), buffered telemetry, and the tracing toggle.
    fn status_fn(&self) -> hac_obs::http::StatusFn {
        let fs = Arc::clone(&self.fs);
        let net_addr = Arc::clone(&self.net_addr);
        Arc::new(move || {
            let s = fs.index_stats();
            let server = match *net_addr.lock().unwrap() {
                Some(addr) => format!("\"tcp://{addr}/\""),
                None => "null".to_string(),
            };
            format!(
                "{{\"index\":{{\"docs\":{},\"terms\":{},\"blocks\":{},\"bytes\":{}}},\
                 \"metadata_bytes\":{},\"hac_server\":{},\
                 \"events_buffered\":{},\"slow_ops_buffered\":{},\
                 \"tracing_enabled\":{}}}\n",
                s.docs,
                s.terms,
                s.blocks,
                s.total_bytes(),
                fs.metadata_bytes(),
                server,
                hac_obs::recent_events().len(),
                hac_obs::slow_ops().len(),
                hac_obs::tracing_enabled(),
            )
        })
    }

    /// Executes a `;`-separated script, collecting output; stops at the
    /// first error.
    pub fn exec_script(&mut self, script: &str) -> Result<String, ShellError> {
        let mut out = String::new();
        for part in script.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push_str(&self.exec(part)?);
        }
        Ok(out)
    }
}

fn target_str(t: &LinkTarget) -> String {
    match t {
        LinkTarget::Local(fid) => format!("local {fid}"),
        LinkTarget::Remote(ns, id) => format!("remote {ns}:{id}"),
    }
}

/// `help` text.
pub const HELP: &str = "\
file system : pwd cd ls [-l] cat mkdir [-p] write append rm [-r] rmdir mv \
ln readlink
semantic    : smkdir <dir> <query> | query <dir> | chquery <dir> <query> | \
sact <link> | ssync [path] | find <query> | explain <query>
curation    : links <dir> | prohibited <dir> | forgive <dir> <i> | pin <link>
network     : serve <addr> <ns> [dir] | serve stop | serve status | \
mount <dir> tcp://host:port/ns
observe     : obs-serve <addr>|stop|status | trace <id> | \
stats [--prom|--events]
durability  : store status | store gc [grace] | store checkpoint
other       : mounts <dir> | help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn sh() -> Shell {
        let mut sh = Shell::new();
        sh.exec("mkdir /docs").unwrap();
        sh.exec("write /docs/a.txt fingerprint ridge patterns")
            .unwrap();
        sh.exec("write /docs/b.txt grocery list").unwrap();
        sh.exec("ssync").unwrap();
        sh
    }

    #[test]
    fn basic_file_commands() {
        let mut sh = sh();
        assert_eq!(sh.exec("pwd").unwrap(), "/");
        sh.exec("cd /docs").unwrap();
        assert_eq!(sh.exec("pwd").unwrap(), "/docs");
        assert_eq!(sh.exec("ls").unwrap(), "a.txt\nb.txt\n");
        assert_eq!(sh.exec("cat a.txt").unwrap(), "fingerprint ridge patterns");
        // Relative paths resolve against cwd.
        sh.exec("write c.txt more words").unwrap();
        assert!(sh.exec("ls").unwrap().contains("c.txt"));
        sh.exec("mv c.txt d.txt").unwrap();
        sh.exec("rm d.txt").unwrap();
        assert!(!sh.exec("ls").unwrap().contains("d.txt"));
    }

    #[test]
    fn semantic_workflow() {
        let mut sh = sh();
        let out = sh.exec("smkdir /fp fingerprint").unwrap();
        assert!(out.contains("1 links"), "{out}");
        assert_eq!(sh.exec("ls /fp").unwrap(), "a.txt\n");
        assert_eq!(sh.exec("query /fp").unwrap(), "fingerprint\n");
        assert_eq!(
            sh.exec("sact /fp/a.txt").unwrap(),
            "fingerprint ridge patterns\n"
        );
        sh.exec("chquery /fp grocery").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "b.txt\n");
        // ls -l marks semantic directories and link targets.
        let long = sh.exec("ls -l /").unwrap();
        assert!(long.contains("[semantic]"), "{long}");
        let long = sh.exec("ls -l /fp").unwrap();
        assert!(long.contains("-> /docs/b.txt"), "{long}");
    }

    #[test]
    fn curation_commands() {
        let mut sh = sh();
        sh.exec("smkdir /fp fingerprint").unwrap();
        sh.exec("rm /fp/a.txt").unwrap();
        let prohibited = sh.exec("prohibited /fp").unwrap();
        assert!(prohibited.contains("[0] local"), "{prohibited}");
        sh.exec("ssync").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "");
        sh.exec("forgive /fp 0").unwrap();
        assert_eq!(sh.exec("ls /fp").unwrap(), "a.txt\n");
        sh.exec("ln /docs/b.txt /fp/extra").unwrap();
        sh.exec("pin /fp/a.txt").unwrap();
        let links = sh.exec("links /fp").unwrap();
        assert!(links.contains("permanent a.txt"), "{links}");
        assert!(links.contains("permanent extra"), "{links}");
    }

    #[test]
    fn quoted_queries_and_scripts() {
        let mut sh = Shell::new();
        let out = sh
            .exec_script(
                "mkdir /d; write /d/x.txt ridge endings here; ssync; \
                 smkdir /q \"ridge endings\"; ls /q",
            )
            .unwrap();
        assert!(out.contains("x.txt"), "{out}");
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut sh = sh();
        assert!(matches!(
            sh.exec("frobnicate"),
            Err(ShellError::UnknownCommand(_))
        ));
        assert!(sh.exec("cd").is_ok());
        assert!(matches!(sh.exec("cd /docs/a.txt"), Err(ShellError::Hac(_))));
        assert!(matches!(sh.exec("cat"), Err(ShellError::Usage(_))));
        assert!(matches!(sh.exec("cat /nope"), Err(ShellError::Hac(_))));
        // Still alive.
        assert_eq!(sh.exec("pwd").unwrap(), "/");
    }

    #[test]
    fn find_is_cwd_scoped() {
        let mut sh = sh();
        sh.exec("mkdir /other").unwrap();
        sh.exec("write /other/z.txt fingerprint elsewhere").unwrap();
        sh.exec("ssync").unwrap();
        sh.exec("cd /docs").unwrap();
        let out = sh.exec("find fingerprint").unwrap();
        assert!(out.contains("/docs/a.txt"));
        assert!(!out.contains("/other/z.txt"));
        let empty = sh.exec("find nosuchword").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn serve_and_mount_over_loopback() {
        // One shell exports its fs; a second mounts it over real TCP.
        let mut exporter = Shell::new();
        exporter
            .exec_script(
                "mkdir /pub; write /pub/notes.txt shared semantic notes; \
                 write /pub/misc.txt grocery list; ssync",
            )
            .unwrap();
        let out = exporter.exec("serve 127.0.0.1:0 team /pub").unwrap();
        assert!(out.contains("serving team on tcp://"), "{out}");
        let addr = exporter.server_addr().expect("server running");
        assert!(exporter
            .exec("serve status")
            .unwrap()
            .contains(&addr.to_string()));
        assert!(matches!(
            exporter.exec("serve 127.0.0.1:0 again"),
            Err(ShellError::Usage(_))
        ));

        let mut importer = Shell::new();
        importer.exec("mkdir /lib").unwrap();
        let out = importer
            .exec(&format!("mount /lib tcp://{addr}/team"))
            .unwrap();
        assert!(out.contains("mounted team at /lib"), "{out}");
        assert_eq!(importer.exec("mounts /lib").unwrap(), "team\n");
        let out = importer.exec("smkdir /sem semantic").unwrap();
        assert!(out.contains("1 links"), "{out}");
        assert!(importer.exec("ls /sem").unwrap().contains("notes.txt"));
        // cat follows the remote link and fetches the bytes over the wire.
        let body = importer.exec("cat /sem/notes.txt").unwrap();
        assert!(body.contains("shared semantic notes"), "{body}");

        assert!(matches!(
            importer.exec("mount /lib http://nope/x"),
            Err(ShellError::Usage(_))
        ));
        let stopped = exporter.exec("serve stop").unwrap();
        assert!(stopped.contains("stopped server"), "{stopped}");
        assert_eq!(exporter.exec("serve stop").unwrap(), "no server running\n");
    }

    #[test]
    fn stats_and_help() {
        let mut sh = sh();
        assert!(sh.exec("stats").unwrap().contains("docs 2"));
        assert!(sh.exec("help").unwrap().contains("smkdir"));
        assert_eq!(sh.exec("").unwrap(), "");
    }

    #[test]
    fn store_commands() {
        let mut sh = sh(); // sh() ran one ssync over two docs
        let status = sh.exec("store status").unwrap();
        assert!(status.contains("segments 1 (2 docs"), "{status}");
        // Checkpoint folds the run into a base snapshot...
        let checkpointed = sh.exec("store checkpoint").unwrap();
        assert!(checkpointed.contains("0 segments live"), "{checkpointed}");
        assert!(sh.exec("store status").unwrap().contains("base yes"));
        // ...leaving the superseded segment + manifests for gc.
        let swept = sh.exec("store gc 0").unwrap();
        assert!(!swept.starts_with("removed 0"), "{swept}");
        assert!(sh.exec("store gc 0").unwrap().starts_with("removed 0"));
        assert!(matches!(sh.exec("store bogus"), Err(ShellError::Usage(_))));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_reports_verification_work() {
        let mut sh = Shell::new();
        sh.exec_script("mkdir /d; write /d/a.txt ridge valley; write /d/b.txt valley only; ssync")
            .unwrap();
        let out = sh.exec("explain ridge").unwrap();
        assert!(out.starts_with("1 hits;"), "{out}");
        assert!(out.contains("candidates"), "{out}");
        assert!(matches!(sh.exec("explain"), Err(ShellError::Usage(_))));
    }
}
