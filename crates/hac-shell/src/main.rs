//! `hacsh` — interactive shell over a HAC file system.
//!
//! ```text
//! hacsh                 # empty file system, REPL on stdin
//! hacsh --demo          # pre-populated with the fingerprint example
//! hacsh -c "cmd; cmd"   # batch mode
//! ```

use std::io::{BufRead, Write as _};
use std::sync::Arc;

use hac_core::HacFs;
use hac_corpus::{generate_mailbox, MailboxSpec};
use hac_shell::Shell;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn demo_fs() -> Arc<HacFs> {
    let fs = Arc::new(HacFs::new());
    let seed = |path: &str, text: &str| {
        fs.save(&p(path), text.as_bytes()).expect("seed file");
    };
    fs.mkdir_p(&p("/home/user/notes")).expect("seed dirs");
    seed(
        "/home/user/notes/ideas.txt",
        "fingerprint indexing by ridge features",
    );
    seed("/home/user/notes/todo.txt", "call dentist, buy coffee");
    seed(
        "/home/user/notes/paper.txt",
        "semantic file system draft with fingerprint example",
    );
    generate_mailbox(fs.vfs(), &p("/home/user/mail"), &MailboxSpec::default()).expect("seed mail");
    fs.ssync(&p("/")).expect("initial index");
    fs.smkdir(&p("/home/user/fingerprint"), "fingerprint")
        .expect("seed semantic dir");
    fs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let demo = args.iter().any(|a| a == "--demo");
    let mut shell = if demo {
        Shell::over(demo_fs())
    } else {
        Shell::new()
    };

    // Batch mode: -c "script".
    if let Some(pos) = args.iter().position(|a| a == "-c") {
        let script = args.get(pos + 1).cloned().unwrap_or_default();
        match shell.exec_script(&script) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("hacsh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("hacsh — HAC file system shell (type `help`, ctrl-d to exit)");
    if demo {
        println!("demo namespace loaded: try `ls /home/user/fingerprint` or `find from:alice`");
    }
    let stdin = std::io::stdin();
    loop {
        print!("{} $ ", shell.cwd());
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match shell.exec(line.trim()) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("hacsh: {e}"),
        }
    }
}
