//! Command-line tokenization: whitespace splitting with single/double
//! quotes, so queries with phrases survive (`smkdir /fp "ridge endings"`).

/// Splits a command line into words, honouring quotes.
///
/// # Examples
///
/// ```
/// use hac_shell::parse::split;
///
/// assert_eq!(split(r#"smkdir /fp "a b" c"#), vec!["smkdir", "/fp", "a b", "c"]);
/// ```
pub fn split(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut had_any = false;
    for c in line.chars() {
        match quote {
            Some(q) if c == q => {
                quote = None;
            }
            Some(_) => cur.push(c),
            None if c == '\'' || c == '"' => {
                quote = Some(c);
                had_any = true;
            }
            None if c.is_whitespace() => {
                if had_any || !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                    had_any = false;
                }
            }
            None => {
                cur.push(c);
                had_any = true;
            }
        }
    }
    if had_any || !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_words() {
        assert_eq!(split("ls -l /a"), vec!["ls", "-l", "/a"]);
        assert_eq!(split("   spaced    out  "), vec!["spaced", "out"]);
        assert!(split("").is_empty());
        assert!(split("   ").is_empty());
    }

    #[test]
    fn quotes_preserve_spaces() {
        assert_eq!(split(r#"a "b c" d"#), vec!["a", "b c", "d"]);
        assert_eq!(split("a 'b  c'"), vec!["a", "b  c"]);
    }

    #[test]
    fn empty_quoted_token_survives() {
        assert_eq!(split(r#"write /f """#), vec!["write", "/f", ""]);
    }

    #[test]
    fn adjacent_quotes_concatenate() {
        assert_eq!(split(r#"a"b"'c'"#), vec!["abc"]);
    }
}
