//! `hac-obs`: dependency-light observability for the HAC workspace.
//!
//! Three pieces, all in-memory and allocation-frugal:
//!
//! * a metrics [`Registry`] of named counters, gauges, and log₂-bucketed
//!   latency histograms, with [`Snapshot`]s renderable as Prometheus text
//!   exposition or JSON ([`metrics`]);
//! * a structured event/span API — [`span!`] guards that record their
//!   duration on drop into a bounded ring of recent [`Event`]s
//!   ([`events`]);
//! * a slow-op log: spans exceeding a configurable threshold are copied
//!   to a dedicated ring and counted.
//!
//! Most callers use the process-wide instance via [`global()`] and the
//! top-level convenience functions; tests construct private [`Obs`] or
//! [`Registry`] values to avoid cross-test interference.

pub mod events;
pub mod http;
pub mod metrics;
pub mod slo;
pub mod timeseries;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use events::{Event, EventRing, SpanGuard};
pub use http::{ObsServer, ObsServerConfig};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSample, MetricId,
    Registry, Sample, Snapshot, HISTOGRAM_BUCKETS,
};
pub use slo::{Alert, Objective, SloEngine, SloSpec, SloState};
pub use timeseries::{
    sample_if_due, sample_now, sampler_running, start_sampler, GaugeWindow, TimeSeries,
    DEFAULT_SAMPLE_INTERVAL_MS,
};
pub use trace::{
    assemble, continue_trace, current as current_trace, set_tracing_enabled, tracing_enabled,
    ContextGuard, SpanNode, TraceContext, TraceTree,
};

/// Default capacity of the recent-events ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;
/// Default capacity of the slow-op log.
pub const DEFAULT_SLOW_OP_CAPACITY: usize = 128;
/// Default slow-op threshold in microseconds (100 ms).
pub const DEFAULT_SLOW_OP_THRESHOLD_US: u64 = 100_000;

/// One observability domain: a metrics registry, the recent-events ring,
/// and the slow-op log, sharing a common epoch for event timestamps.
pub struct Obs {
    registry: Registry,
    events: EventRing,
    slow_ops: EventRing,
    slow_op_threshold_us: AtomicU64,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// Creates an empty domain with default ring capacities and threshold.
    pub fn new() -> Self {
        let registry = Registry::new();
        // Register the overflow counters eagerly so they appear (at 0) in
        // every snapshot, not only after the first drop.
        let events_dropped = registry.counter("hac_events_dropped_total", &[("ring", "events")]);
        let slow_dropped = registry.counter("hac_events_dropped_total", &[("ring", "slow")]);
        Obs {
            registry,
            events: EventRing::with_drop_counter(DEFAULT_EVENT_CAPACITY, events_dropped),
            slow_ops: EventRing::with_drop_counter(DEFAULT_SLOW_OP_CAPACITY, slow_dropped),
            slow_op_threshold_us: AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_US),
            epoch: Instant::now(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The recent-events ring.
    pub fn events_ring(&self) -> &EventRing {
        &self.events
    }

    /// The slow-op log.
    pub fn slow_ops_ring(&self) -> &EventRing {
        &self.slow_ops
    }

    /// Microseconds since this domain was created.
    pub fn uptime_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Current slow-op threshold in microseconds.
    pub fn slow_op_threshold_micros(&self) -> u64 {
        self.slow_op_threshold_us.load(Ordering::Relaxed)
    }

    /// Sets the slow-op threshold; spans at least this slow are logged.
    pub fn set_slow_op_threshold_micros(&self, micros: u64) {
        self.slow_op_threshold_us.store(micros, Ordering::Relaxed);
    }

    /// Opens a span in this domain (most callers use the [`span!`] macro).
    pub fn span(&self, name: &'static str, fields: Vec<(String, String)>) -> SpanGuard<'_> {
        SpanGuard::enter(self, name, fields)
    }

    /// Records an instant (duration-less) event. When the thread carries a
    /// trace context the event joins that trace as a child of the current
    /// span.
    pub fn event(&self, name: &str, fields: Vec<(String, String)>) {
        let ctx = trace::current();
        self.events.push(Event {
            name: name.to_string(),
            fields,
            at_micros: self.uptime_micros(),
            duration_micros: None,
            trace_id: ctx.map(|c| c.trace_id),
            span_id: None,
            parent_span_id: ctx.map(|c| c.span_id),
        });
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide observability domain.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

/// Counter handle from the global registry.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().registry().counter(name, labels)
}

/// Gauge handle from the global registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().registry().gauge(name, labels)
}

/// Histogram handle from the global registry.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Histogram {
    global().registry().histogram(name, labels)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().registry().snapshot()
}

/// Prometheus text exposition of the global registry.
pub fn prometheus() -> String {
    snapshot().to_prometheus()
}

/// Recent events from the global ring, oldest first.
pub fn recent_events() -> Vec<Event> {
    global().events_ring().snapshot()
}

/// Slow operations from the global log, oldest first.
pub fn slow_ops() -> Vec<Event> {
    global().slow_ops_ring().snapshot()
}

/// Sets the global slow-op threshold in microseconds.
pub fn set_slow_op_threshold_micros(micros: u64) {
    global().set_slow_op_threshold_micros(micros)
}

/// Last-seen totals per mirrored fleet counter, so repeated scrapes add
/// only the delta (mirrored counters stay monotonic).
static FLEET_LAST: OnceLock<parking_lot::Mutex<std::collections::HashMap<MetricId, u64>>> =
    OnceLock::new();

/// Mirrors a peer's scraped metric snapshot into the *global* registry
/// under fleet names, feeding the sampler/SLO machinery with fleet-level
/// series:
///
/// * every counter `hac_x_total{…}` becomes
///   `hac_fleet_hac_x_total{…,node="<node>"}`, advanced by the delta
///   since the previous scrape of the same peer (absolute peer totals
///   would double-count on every scrape);
/// * every gauge becomes `hac_fleet_<name>{…,node}` set to the peer's
///   value;
/// * histograms are not mirrored (percentiles do not merge across
///   processes; fleet latency objectives read per-node series instead).
///
/// Because the mirrors live in the ordinary global registry, the PR-7
/// sampler windows them like any local metric, so burn-rate SLOs can be
/// declared over fleet-level rates (`hac_fleet_hac_net_errors_total
/// rate < 10/s over 60s`). Peer metrics already carrying the
/// `hac_fleet_` prefix are skipped: a peer that scrapes its own fleet
/// must not cascade mirrors of mirrors.
pub fn absorb_fleet(node: &str, snap: &Snapshot) {
    let last = FLEET_LAST.get_or_init(Default::default);
    let reg = global().registry();
    for s in &snap.counters {
        if s.id.name.starts_with("hac_fleet_") {
            continue;
        }
        let mut id = s.id.clone();
        id.name = format!("hac_fleet_{}", id.name);
        id.labels.push(("node".to_string(), node.to_string()));
        id.labels.sort();
        let value = s.value.max(0) as u64;
        let mut seen = last.lock();
        let prev = seen.insert(id.clone(), value).unwrap_or(0);
        drop(seen);
        let labels: Vec<(&str, &str)> = id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        // A peer restart resets its totals; treat a shrinking counter as
        // a fresh baseline instead of a negative delta.
        reg.counter(&id.name, &labels)
            .add(value.saturating_sub(prev));
    }
    for s in &snap.gauges {
        if s.id.name.starts_with("hac_fleet_") {
            continue;
        }
        let mut id = s.id.clone();
        id.name = format!("hac_fleet_{}", id.name);
        id.labels.push(("node".to_string(), node.to_string()));
        id.labels.sort();
        let labels: Vec<(&str, &str)> = id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        reg.gauge(&id.name, &labels).set(s.value as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn concurrent_counter_and_histogram_updates_land_exactly() {
        let reg = Arc::new(Registry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let c = reg.counter("t_ops_total", &[]);
                    let h = reg.histogram("t_latency_us", &[]);
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((t as u64) * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.counter_value("t_ops_total", &[]), Some(total));
        assert_eq!(snap.histogram_count("t_latency_us", &[]), Some(total));
        // Sum of 0..total recorded exactly once each.
        let h = &snap.histograms[0];
        assert_eq!(h.sum, total * (total - 1) / 2);
        assert_eq!(h.buckets.iter().sum::<u64>(), total);
    }

    #[test]
    fn histogram_bucket_boundaries_at_powers_of_two() {
        // Bucket 0 holds {0, 1}; bucket k holds (2^(k-1), 2^k].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        for k in 1..63usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k, "2^{k} must land in bucket {k}");
            assert_eq!(
                bucket_index(p + 1),
                k + 1,
                "2^{k}+1 spills to bucket {}",
                k + 1
            );
            // 2^k - 1 stays inside (2^(k-1), 2^k] — still bucket k.
            assert_eq!(bucket_index(p - 1), if k == 1 { 0 } else { k });
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(3), Some(8));
        assert_eq!(bucket_upper_bound(64), None);

        let reg = Registry::new();
        let h = reg.histogram("t_pow2", &[]);
        h.record(8);
        h.record(9);
        let b = h.buckets();
        assert_eq!(b[3], 1); // 8 ∈ (4, 8]
        assert_eq!(b[4], 1); // 9 ∈ (8, 16]
    }

    fn instant(name: &str, at: u64) -> Event {
        Event {
            name: name.to_string(),
            fields: vec![],
            at_micros: at,
            duration_micros: None,
            trace_id: None,
            span_id: None,
            parent_span_id: None,
        }
    }

    #[test]
    fn event_ring_drops_oldest_first_and_counts_drops() {
        let reg = Registry::new();
        let dropped = reg.counter("t_dropped_total", &[("ring", "events")]);
        let ring = EventRing::with_drop_counter(3, dropped.clone());
        for i in 0..5 {
            ring.push(instant(&format!("e{i}"), i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(dropped.get(), 2);
    }

    #[test]
    fn obs_surfaces_drop_counters_in_snapshot() {
        let obs = Obs::new();
        let snap = obs.registry().snapshot();
        // Registered eagerly: present at zero before any overflow.
        assert_eq!(
            snap.counter_value("hac_events_dropped_total", &[("ring", "events")]),
            Some(0)
        );
        assert_eq!(
            snap.counter_value("hac_events_dropped_total", &[("ring", "slow")]),
            Some(0)
        );
        for i in 0..(DEFAULT_EVENT_CAPACITY as u64 + 7) {
            obs.event("flood", vec![("i".into(), i.to_string())]);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counter_value("hac_events_dropped_total", &[("ring", "events")]),
            Some(7)
        );
    }

    #[test]
    fn span_records_duration_and_slow_ops() {
        let obs = Obs::new();
        obs.set_slow_op_threshold_micros(0); // everything is "slow"
        {
            let mut span = obs.span("t_span", vec![("k".into(), "v".into())]);
            span.field("extra", 7);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.histogram_count("hac_span_duration_us", &[("span", "t_span")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("hac_slow_ops_total", &[("span", "t_span")]),
            Some(1)
        );
        let slow = obs.slow_ops_ring().snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "t_span");
        assert!(slow[0].duration_micros.is_some());
        assert!(slow[0].render().contains("extra=7"));
        assert_eq!(obs.events_ring().len(), 1);

        // Raise the threshold: fast spans stay out of the slow-op log.
        obs.set_slow_op_threshold_micros(u64::MAX);
        drop(obs.span("t_fast", vec![]));
        assert_eq!(obs.slow_ops_ring().len(), 1);
        assert_eq!(obs.events_ring().len(), 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("t_reqs_total", &[("ns", "web")]).add(3);
        reg.gauge("t_depth", &[]).set(-2);
        let h = reg.histogram("t_lat_us", &[]);
        h.record(1);
        h.record(5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("t_reqs_total{ns=\"web\"} 3"));
        assert!(text.contains("t_depth -2"));
        assert!(text.contains("t_lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_lat_us_bucket{le=\"8\"} 2"));
        assert!(text.contains("t_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("t_lat_us_sum 6"));
        assert!(text.contains("t_lat_us_count 2"));
        // Every TYPE line is preceded by a HELP line for the same name.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {name} ")),
                    "TYPE without preceding HELP for {name}: {:?}",
                    lines.get(i.saturating_sub(1))
                );
            }
        }
        // One TYPE line per metric name, preceding its samples.
        assert!(text.contains("# TYPE t_reqs_total counter"));
        assert!(text.contains("# TYPE t_depth gauge"));
        assert!(text.contains("# TYPE t_lat_us histogram"));
        assert_eq!(text.matches("# TYPE t_lat_us histogram").count(), 1);
        // Every sample line parses as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (id, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(value.parse::<i64>().is_ok(), "bad value in {line:?}");
            assert!(!id.is_empty());
        }
    }

    #[test]
    fn prometheus_escapes_pathological_label_values() {
        let reg = Registry::new();
        // A semdir path an adversarial user could create: backslashes,
        // quotes, and an embedded newline.
        let path = "/sem/a\\b\"c\nd";
        reg.counter("t_semdir_total", &[("dir", path)]).inc();
        let text = reg.snapshot().to_prometheus();
        assert!(
            text.contains("t_semdir_total{dir=\"/sem/a\\\\b\\\"c\\nd\"} 1"),
            "escaped label missing in {text:?}"
        );
        // No raw newline may survive inside a sample line.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.rsplit_once(' ').is_some(), "split line: {line:?}");
            let (id, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<i64>().is_ok(), "bad value in {line:?}");
            assert!(!id.is_empty());
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("t_c", &[("a", "b")]).inc();
        reg.histogram("t_h", &[]).record(4);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(
            json.contains("\"counters\":[{\"name\":\"t_c\",\"labels\":{\"a\":\"b\"},\"value\":1}]")
        );
        assert!(json.contains("\"histograms\":[{\"name\":\"t_h\",\"labels\":{},\"count\":1,\"sum\":4,\"buckets\":[{\"le\":4,\"count\":1}]}]"));
    }

    #[test]
    fn spans_inherit_trace_context_and_leave_exemplars() {
        let obs = Obs::new();
        obs.set_slow_op_threshold_micros(u64::MAX);
        let root_ctx;
        {
            let root = obs.span("t_troot", vec![]);
            root_ctx = root.context().expect("tracing on by default");
            assert_eq!(current_trace(), Some(root_ctx));
            {
                let child = obs.span("t_tchild", vec![]);
                let child_ctx = child.context().unwrap();
                assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
                assert_ne!(child_ctx.span_id, root_ctx.span_id);
                assert_eq!(current_trace(), Some(child_ctx));
            }
            assert_eq!(current_trace(), Some(root_ctx), "child restored parent");
        }
        assert_eq!(current_trace(), None, "root restored empty context");

        let events = obs.events_ring().snapshot();
        assert_eq!(events.len(), 2, "child recorded before root");
        let (child_ev, root_ev) = (&events[0], &events[1]);
        assert_eq!(root_ev.name, "t_troot");
        assert_eq!(root_ev.trace_id, Some(root_ctx.trace_id));
        assert_eq!(root_ev.parent_span_id, None);
        assert_eq!(child_ev.trace_id, Some(root_ctx.trace_id));
        assert_eq!(child_ev.parent_span_id, root_ev.span_id);

        // The ring assembles back into a nested tree.
        let tree = assemble(&events, root_ctx.trace_id);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].event.name, "t_troot");
        assert_eq!(tree.roots[0].children[0].event.name, "t_tchild");

        // The duration histograms kept the trace id as a bucket exemplar.
        let snap = obs.registry().snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.id.render().contains("t_tchild"))
            .expect("child duration histogram");
        assert!(
            h.exemplars.contains(&root_ctx.trace_id),
            "exemplar links histogram to trace"
        );
        assert!(snap.to_json().contains(&format!(
            "\"trace\":\"{}\"",
            trace::format_id(root_ctx.trace_id)
        )));
    }

    #[test]
    fn global_registry_is_shared() {
        counter("t_global_shared_total", &[]).add(2);
        let snap = snapshot();
        assert!(snap.counter_value("t_global_shared_total", &[]).unwrap() >= 2);
        let _ = prometheus();
    }

    #[test]
    fn snapshot_codec_roundtrips_and_rejects_corruption() {
        let reg = Registry::new();
        reg.counter("t_codec_total", &[("ns", "lib"), ("shard", "0")])
            .add(42);
        reg.gauge("t_codec_depth", &[]).set(-7);
        let h = reg.histogram("t_codec_us", &[("op", "search")]);
        h.record(3);
        h.record(900);
        reg.set_help("t_codec_total", "codec test counter");
        let snap = reg.snapshot();

        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("roundtrip");
        assert_eq!(back.to_prometheus(), snap.to_prometheus());
        assert_eq!(
            back.counter_value("t_codec_total", &[("ns", "lib"), ("shard", "0")]),
            Some(42)
        );
        assert_eq!(back.gauge_value("t_codec_depth", &[]), Some(-7));
        assert_eq!(
            back.histogram_count("t_codec_us", &[("op", "search")]),
            Some(2)
        );
        assert_eq!(
            back.help.get("t_codec_total").map(String::as_str),
            Some("codec test counter")
        );

        // An empty snapshot also roundtrips.
        let empty = Snapshot::decode(&Snapshot::default().encode()).unwrap();
        assert!(empty.counters.is_empty() && empty.gauges.is_empty());

        // Every truncation is rejected, as are bad magic/version/trailing.
        for n in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..n]).is_err(), "truncated at {n}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(Snapshot::decode(&bad).unwrap_err().contains("magic"));
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(Snapshot::decode(&bad).unwrap_err().contains("version"));
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(Snapshot::decode(&bad).unwrap_err().contains("trailing"));
    }

    #[test]
    fn relabeled_absorb_merge_keeps_exposition_invariants() {
        let a = Registry::new();
        a.counter("t_merge_total", &[("ns", "lib")]).add(1);
        a.histogram("t_merge_us", &[]).record(5);
        let b = Registry::new();
        b.counter("t_merge_total", &[("ns", "lib")]).add(2);
        b.gauge("t_merge_depth", &[]).set(9);

        let mut merged = a.snapshot().relabeled("node", "a:1");
        merged.absorb(b.snapshot().relabeled("node", "b:2"));
        let text = merged.to_prometheus();
        assert!(
            text.contains("t_merge_total{node=\"a:1\",ns=\"lib\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("t_merge_total{node=\"b:2\",ns=\"lib\"} 2"),
            "{text}"
        );
        assert!(text.contains("t_merge_depth{node=\"b:2\"} 9"), "{text}");
        assert!(text.contains("t_merge_us_count{node=\"a:1\"} 1"), "{text}");
        // The sorted-by-id invariant holds after absorb: one TYPE line
        // per metric name even with samples from two nodes.
        assert_eq!(text.matches("# TYPE t_merge_total counter").count(), 1);
    }

    #[test]
    fn absorb_fleet_mirrors_deltas_and_skips_fleet_prefixed_series() {
        let peer = Registry::new();
        peer.counter("t_absorb_src_total", &[("ns", "lib")]).add(5);
        peer.gauge("t_absorb_lag", &[]).set(3);
        peer.counter("hac_fleet_t_no_cascade_total", &[]).inc();
        absorb_fleet("n1:70", &peer.snapshot());
        let snap = snapshot();
        assert_eq!(
            snap.counter_value(
                "hac_fleet_t_absorb_src_total",
                &[("node", "n1:70"), ("ns", "lib")]
            ),
            Some(5)
        );
        assert_eq!(
            snap.gauge_value("hac_fleet_t_absorb_lag", &[("node", "n1:70")]),
            Some(3)
        );
        assert_eq!(
            snap.counter_value(
                "hac_fleet_hac_fleet_t_no_cascade_total",
                &[("node", "n1:70")]
            ),
            None,
            "fleet mirrors must not cascade"
        );

        // A second scrape adds only the delta; a shrinking total (peer
        // restart) is a fresh baseline, not a negative delta.
        peer.counter("t_absorb_src_total", &[("ns", "lib")]).add(2);
        absorb_fleet("n1:70", &peer.snapshot());
        let grown = Registry::new();
        grown.counter("t_absorb_src_total", &[("ns", "lib")]).add(1); // "restarted" peer
        absorb_fleet("n1:70", &grown.snapshot());
        assert_eq!(
            snapshot().counter_value(
                "hac_fleet_t_absorb_src_total",
                &[("node", "n1:70"), ("ns", "lib")]
            ),
            Some(7)
        );
    }
}
