//! `hac-obs`: dependency-light observability for the HAC workspace.
//!
//! Three pieces, all in-memory and allocation-frugal:
//!
//! * a metrics [`Registry`] of named counters, gauges, and log₂-bucketed
//!   latency histograms, with [`Snapshot`]s renderable as Prometheus text
//!   exposition or JSON ([`metrics`]);
//! * a structured event/span API — [`span!`] guards that record their
//!   duration on drop into a bounded ring of recent [`Event`]s
//!   ([`events`]);
//! * a slow-op log: spans exceeding a configurable threshold are copied
//!   to a dedicated ring and counted.
//!
//! Most callers use the process-wide instance via [`global()`] and the
//! top-level convenience functions; tests construct private [`Obs`] or
//! [`Registry`] values to avoid cross-test interference.

pub mod events;
pub mod metrics;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use events::{Event, EventRing, SpanGuard};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSample, MetricId,
    Registry, Sample, Snapshot, HISTOGRAM_BUCKETS,
};

/// Default capacity of the recent-events ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;
/// Default capacity of the slow-op log.
pub const DEFAULT_SLOW_OP_CAPACITY: usize = 128;
/// Default slow-op threshold in microseconds (100 ms).
pub const DEFAULT_SLOW_OP_THRESHOLD_US: u64 = 100_000;

/// One observability domain: a metrics registry, the recent-events ring,
/// and the slow-op log, sharing a common epoch for event timestamps.
pub struct Obs {
    registry: Registry,
    events: EventRing,
    slow_ops: EventRing,
    slow_op_threshold_us: AtomicU64,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// Creates an empty domain with default ring capacities and threshold.
    pub fn new() -> Self {
        Obs {
            registry: Registry::new(),
            events: EventRing::new(DEFAULT_EVENT_CAPACITY),
            slow_ops: EventRing::new(DEFAULT_SLOW_OP_CAPACITY),
            slow_op_threshold_us: AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_US),
            epoch: Instant::now(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The recent-events ring.
    pub fn events_ring(&self) -> &EventRing {
        &self.events
    }

    /// The slow-op log.
    pub fn slow_ops_ring(&self) -> &EventRing {
        &self.slow_ops
    }

    /// Microseconds since this domain was created.
    pub fn uptime_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Current slow-op threshold in microseconds.
    pub fn slow_op_threshold_micros(&self) -> u64 {
        self.slow_op_threshold_us.load(Ordering::Relaxed)
    }

    /// Sets the slow-op threshold; spans at least this slow are logged.
    pub fn set_slow_op_threshold_micros(&self, micros: u64) {
        self.slow_op_threshold_us.store(micros, Ordering::Relaxed);
    }

    /// Opens a span in this domain (most callers use the [`span!`] macro).
    pub fn span(&self, name: &'static str, fields: Vec<(String, String)>) -> SpanGuard<'_> {
        SpanGuard::enter(self, name, fields)
    }

    /// Records an instant (duration-less) event.
    pub fn event(&self, name: &str, fields: Vec<(String, String)>) {
        self.events.push(Event {
            name: name.to_string(),
            fields,
            at_micros: self.uptime_micros(),
            duration_micros: None,
        });
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide observability domain.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

/// Counter handle from the global registry.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().registry().counter(name, labels)
}

/// Gauge handle from the global registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().registry().gauge(name, labels)
}

/// Histogram handle from the global registry.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Histogram {
    global().registry().histogram(name, labels)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().registry().snapshot()
}

/// Prometheus text exposition of the global registry.
pub fn prometheus() -> String {
    snapshot().to_prometheus()
}

/// Recent events from the global ring, oldest first.
pub fn recent_events() -> Vec<Event> {
    global().events_ring().snapshot()
}

/// Slow operations from the global log, oldest first.
pub fn slow_ops() -> Vec<Event> {
    global().slow_ops_ring().snapshot()
}

/// Sets the global slow-op threshold in microseconds.
pub fn set_slow_op_threshold_micros(micros: u64) {
    global().set_slow_op_threshold_micros(micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn concurrent_counter_and_histogram_updates_land_exactly() {
        let reg = Arc::new(Registry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let c = reg.counter("t_ops_total", &[]);
                    let h = reg.histogram("t_latency_us", &[]);
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((t as u64) * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.counter_value("t_ops_total", &[]), Some(total));
        assert_eq!(snap.histogram_count("t_latency_us", &[]), Some(total));
        // Sum of 0..total recorded exactly once each.
        let h = &snap.histograms[0];
        assert_eq!(h.sum, total * (total - 1) / 2);
        assert_eq!(h.buckets.iter().sum::<u64>(), total);
    }

    #[test]
    fn histogram_bucket_boundaries_at_powers_of_two() {
        // Bucket 0 holds {0, 1}; bucket k holds (2^(k-1), 2^k].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        for k in 1..63usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k, "2^{k} must land in bucket {k}");
            assert_eq!(
                bucket_index(p + 1),
                k + 1,
                "2^{k}+1 spills to bucket {}",
                k + 1
            );
            // 2^k - 1 stays inside (2^(k-1), 2^k] — still bucket k.
            assert_eq!(bucket_index(p - 1), if k == 1 { 0 } else { k });
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(3), Some(8));
        assert_eq!(bucket_upper_bound(64), None);

        let reg = Registry::new();
        let h = reg.histogram("t_pow2", &[]);
        h.record(8);
        h.record(9);
        let b = h.buckets();
        assert_eq!(b[3], 1); // 8 ∈ (4, 8]
        assert_eq!(b[4], 1); // 9 ∈ (8, 16]
    }

    #[test]
    fn event_ring_drops_oldest_first() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(Event {
                name: format!("e{i}"),
                fields: vec![],
                at_micros: i,
                duration_micros: None,
            });
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
    }

    #[test]
    fn span_records_duration_and_slow_ops() {
        let obs = Obs::new();
        obs.set_slow_op_threshold_micros(0); // everything is "slow"
        {
            let mut span = obs.span("t_span", vec![("k".into(), "v".into())]);
            span.field("extra", 7);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.histogram_count("hac_span_duration_us", &[("span", "t_span")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("hac_slow_ops_total", &[("span", "t_span")]),
            Some(1)
        );
        let slow = obs.slow_ops_ring().snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "t_span");
        assert!(slow[0].duration_micros.is_some());
        assert!(slow[0].render().contains("extra=7"));
        assert_eq!(obs.events_ring().len(), 1);

        // Raise the threshold: fast spans stay out of the slow-op log.
        obs.set_slow_op_threshold_micros(u64::MAX);
        drop(obs.span("t_fast", vec![]));
        assert_eq!(obs.slow_ops_ring().len(), 1);
        assert_eq!(obs.events_ring().len(), 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("t_reqs_total", &[("ns", "web")]).add(3);
        reg.gauge("t_depth", &[]).set(-2);
        let h = reg.histogram("t_lat_us", &[]);
        h.record(1);
        h.record(5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("t_reqs_total{ns=\"web\"} 3"));
        assert!(text.contains("t_depth -2"));
        assert!(text.contains("t_lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_lat_us_bucket{le=\"8\"} 2"));
        assert!(text.contains("t_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("t_lat_us_sum 6"));
        assert!(text.contains("t_lat_us_count 2"));
        // Every line parses as `name{labels} value`.
        for line in text.lines() {
            let (id, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(value.parse::<i64>().is_ok(), "bad value in {line:?}");
            assert!(!id.is_empty());
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("t_c", &[("a", "b")]).inc();
        reg.histogram("t_h", &[]).record(4);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(
            json.contains("\"counters\":[{\"name\":\"t_c\",\"labels\":{\"a\":\"b\"},\"value\":1}]")
        );
        assert!(json.contains("\"histograms\":[{\"name\":\"t_h\",\"labels\":{},\"count\":1,\"sum\":4,\"buckets\":[{\"le\":4,\"count\":1}]}]"));
    }

    #[test]
    fn global_registry_is_shared() {
        counter("t_global_shared_total", &[]).add(2);
        let snap = snapshot();
        assert!(snap.counter_value("t_global_shared_total", &[]).unwrap() >= 2);
        let _ = prometheus();
    }
}
