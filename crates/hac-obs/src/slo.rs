//! Declarative service-level objectives evaluated against the
//! [`timeseries`](crate::timeseries) layer.
//!
//! An objective is a compact one-line spec (carried in `HacConfig`):
//!
//! ```text
//! query-latency: hac_query_eval_duration_us p99 < 5ms over 60s
//! net-errors:    hac_net_errors_total/hac_net_requests_total ratio < 0.1% over 60s
//! shed-rate:     hac_obs_http_shed_total rate < 10/s over 60s
//! ```
//!
//! Each sampler tick re-evaluates every objective over **two** burn-rate
//! windows: the *fast* window (the one declared in the spec) and a *slow*
//! window [`SLOW_WINDOW_FACTOR`]× longer. The classic multi-window rule
//! keeps alerts both quick and unflappable:
//!
//! * fast **and** slow window violated → **BREACH** (the budget is
//!   burning and has been for a while — page);
//! * fast only → **WARN** (a blip; the slow window absorbs it);
//! * neither → **OK**.
//!
//! State transitions are pushed into a bounded alert ring and surfaced as
//! `hac_slo_breaches_total{slo=…}` / `hac_slo_state{slo=…}`; `/alerts` on
//! the [`ObsServer`](crate::ObsServer) and `hacsh slo status` read both.

use std::collections::VecDeque;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::events::jstr;
use crate::timeseries::TimeSeries;

/// The slow burn-rate window, as a multiple of the spec's window.
pub const SLOW_WINDOW_FACTOR: u64 = 5;
/// Alerts retained in the ring.
pub const ALERT_RING_CAPACITY: usize = 64;

/// What an objective measures.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// `metric pNN < threshold` — a windowed histogram percentile must
    /// stay under `threshold_us` (in the histogram's unit, µs by
    /// convention).
    LatencyP {
        /// Histogram metric name.
        metric: String,
        /// Percentile (e.g. `99.0`).
        pct: f64,
        /// Inclusive ceiling.
        threshold_us: u64,
    },
    /// `errors/total ratio < X%` — the windowed delta ratio of two
    /// counters must stay under `max_ratio` (a fraction, `0.001` = 0.1%).
    ErrorRatio {
        /// Numerator counter name.
        errors: String,
        /// Denominator counter name.
        total: String,
        /// Inclusive ceiling as a fraction.
        max_ratio: f64,
    },
    /// `metric rate < N/s` — a counter's windowed per-second rate must
    /// stay under `max_per_sec`.
    RateBelow {
        /// Counter metric name.
        metric: String,
        /// Inclusive ceiling in events per second.
        max_per_sec: f64,
    },
}

/// One declared objective: a name, what it measures, and its fast window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (the `slo` label on its metrics and alerts).
    pub name: String,
    /// The measurement and threshold.
    pub objective: Objective,
    /// Fast burn-rate window in seconds (the slow window is
    /// [`SLOW_WINDOW_FACTOR`]× this).
    pub window_secs: u64,
}

impl SloSpec {
    /// Parses the one-line spec grammar (see module docs). An optional
    /// `name:` prefix names the objective; otherwise the metric name is
    /// used.
    ///
    /// # Errors
    ///
    /// A human-readable description of what failed to parse.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut rest = spec.trim();
        let mut name = None;
        if let Some((n, r)) = rest.split_once(':') {
            if !n.contains(char::is_whitespace) {
                name = Some(n.trim().to_string());
                rest = r.trim();
            }
        }
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let [metric, kind, lt, threshold, over, window] = tokens.as_slice() else {
            return Err(format!(
                "expected `<metric> <p99|ratio|rate> < <threshold> over <window>`, got {spec:?}"
            ));
        };
        if *lt != "<" {
            return Err(format!("expected `<` before the threshold, got {lt:?}"));
        }
        if *over != "over" {
            return Err(format!("expected `over <window>`, got {over:?}"));
        }
        let window_secs = parse_duration_secs(window)?;
        let objective = if let Some(pct) = kind.strip_prefix('p') {
            let pct: f64 = pct
                .parse()
                .map_err(|_| format!("bad percentile {kind:?}"))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("percentile out of range: {pct}"));
            }
            Objective::LatencyP {
                metric: metric.to_string(),
                pct,
                threshold_us: parse_duration_us(threshold)?,
            }
        } else if *kind == "ratio" {
            let (errors, total) = metric.split_once('/').ok_or_else(|| {
                format!("ratio objectives need `errors/total` metrics, got {metric:?}")
            })?;
            Objective::ErrorRatio {
                errors: errors.to_string(),
                total: total.to_string(),
                max_ratio: parse_percent(threshold)?,
            }
        } else if *kind == "rate" {
            if threshold.ends_with('%') {
                return Err(format!(
                    "a percent threshold needs a denominator — use `errors/total ratio < {threshold}`"
                ));
            }
            let per_sec = threshold
                .strip_suffix("/s")
                .ok_or_else(|| format!("rate threshold must end in `/s`, got {threshold:?}"))?;
            Objective::RateBelow {
                metric: metric.to_string(),
                max_per_sec: per_sec
                    .parse()
                    .map_err(|_| format!("bad rate {threshold:?}"))?,
            }
        } else {
            return Err(format!(
                "unknown objective kind {kind:?} (p<NN>|ratio|rate)"
            ));
        };
        let name = name.unwrap_or_else(|| match &objective {
            Objective::LatencyP { metric, .. } | Objective::RateBelow { metric, .. } => {
                metric.clone()
            }
            Objective::ErrorRatio { errors, .. } => errors.clone(),
        });
        Ok(SloSpec {
            name,
            objective,
            window_secs,
        })
    }

    /// The default objective set wired into `HacConfig::default()`:
    /// generous thresholds that only fire on genuine distress.
    pub fn default_set() -> Vec<SloSpec> {
        [
            "query-latency: hac_query_eval_duration_us p99 < 250ms over 10s",
            "net-errors: hac_net_errors_total/hac_net_requests_total ratio < 5% over 10s",
            "server-latency: hac_net_server_request_duration_us p99 < 250ms over 10s",
            "store-commit: hac_store_commit_us p99 < 500ms over 10s",
        ]
        .iter()
        .map(|s| SloSpec::parse(s).expect("default SLO specs parse"))
        .collect()
    }

    /// Renders the spec back into its one-line grammar.
    pub fn render(&self) -> String {
        match &self.objective {
            Objective::LatencyP {
                metric,
                pct,
                threshold_us,
            } => format!(
                "{}: {metric} p{pct:.0} < {threshold_us}us over {}s",
                self.name, self.window_secs
            ),
            Objective::ErrorRatio {
                errors,
                total,
                max_ratio,
            } => format!(
                "{}: {errors}/{total} ratio < {}% over {}s",
                self.name,
                max_ratio * 100.0,
                self.window_secs
            ),
            Objective::RateBelow {
                metric,
                max_per_sec,
            } => format!(
                "{}: {metric} rate < {max_per_sec}/s over {}s",
                self.name, self.window_secs
            ),
        }
    }

    /// The numeric threshold this objective compares against.
    pub fn threshold(&self) -> f64 {
        match &self.objective {
            Objective::LatencyP { threshold_us, .. } => *threshold_us as f64,
            Objective::ErrorRatio { max_ratio, .. } => *max_ratio,
            Objective::RateBelow { max_per_sec, .. } => *max_per_sec,
        }
    }
}

fn parse_duration_secs(s: &str) -> Result<u64, String> {
    if let Some(v) = s.strip_suffix("ms") {
        let ms: u64 = v.parse().map_err(|_| format!("bad window {s:?}"))?;
        return Ok((ms / 1000).max(1));
    }
    if let Some(v) = s.strip_suffix('m') {
        let m: u64 = v.parse().map_err(|_| format!("bad window {s:?}"))?;
        return Ok(m * 60);
    }
    if let Some(v) = s.strip_suffix('s') {
        return v.parse().map_err(|_| format!("bad window {s:?}"));
    }
    Err(format!("window needs a unit (s|m), got {s:?}"))
}

fn parse_duration_us(s: &str) -> Result<u64, String> {
    if let Some(v) = s.strip_suffix("us") {
        return v.parse().map_err(|_| format!("bad duration {s:?}"));
    }
    if let Some(v) = s.strip_suffix("ms") {
        let ms: u64 = v.parse().map_err(|_| format!("bad duration {s:?}"))?;
        return Ok(ms * 1000);
    }
    if let Some(v) = s.strip_suffix('s') {
        let secs: u64 = v.parse().map_err(|_| format!("bad duration {s:?}"))?;
        return Ok(secs * 1_000_000);
    }
    Err(format!("duration needs a unit (us|ms|s), got {s:?}"))
}

fn parse_percent(s: &str) -> Result<f64, String> {
    let v = s
        .strip_suffix('%')
        .ok_or_else(|| format!("ratio threshold must end in `%`, got {s:?}"))?;
    let pct: f64 = v.parse().map_err(|_| format!("bad percentage {s:?}"))?;
    Ok(pct / 100.0)
}

/// Health of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Within budget in both windows.
    Ok,
    /// Fast window violated; slow window still inside budget.
    Warn,
    /// Both burn-rate windows violated.
    Breach,
}

impl SloState {
    /// Lowercase label for rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Breach => "breach",
        }
    }
}

/// One state transition of an objective.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Objective name.
    pub slo: String,
    /// State entered.
    pub state: SloState,
    /// Series time of the transition (µs on the time-series axis).
    pub at_us: u64,
    /// Measured value in the fast window at transition time.
    pub value: f64,
    /// The objective's threshold.
    pub threshold: f64,
    /// Human-readable summary.
    pub message: String,
}

impl Alert {
    /// JSON object for `/alerts`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"slo\":{},\"state\":{},\"at_us\":{},\"value\":{:.6},\
             \"threshold\":{:.6},\"message\":{}}}",
            jstr(&self.slo),
            jstr(self.state.as_str()),
            self.at_us,
            self.value,
            self.threshold,
            jstr(&self.message)
        )
    }
}

struct SloRuntime {
    spec: SloSpec,
    state: SloState,
    /// Last measured fast-window value, if any data existed.
    last_value: Option<f64>,
}

/// Current health of one objective (a snapshot of engine state).
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The declared objective.
    pub spec: SloSpec,
    /// Current state.
    pub state: SloState,
    /// Most recent fast-window measurement (`None` = no data yet).
    pub value: Option<f64>,
}

/// Evaluates installed objectives on every sampler tick.
#[derive(Default)]
pub struct SloEngine {
    slos: Mutex<Vec<SloRuntime>>,
    alerts: Mutex<VecDeque<Alert>>,
}

impl SloEngine {
    /// Replaces the installed objectives. States restart at OK; the alert
    /// ring is preserved (history survives reconfiguration).
    pub fn install(&self, specs: &[SloSpec]) {
        let mut slos = self.slos.lock();
        *slos = specs
            .iter()
            .map(|spec| {
                crate::gauge("hac_slo_state", &[("slo", &spec.name)]).set(0);
                SloRuntime {
                    spec: spec.clone(),
                    state: SloState::Ok,
                    last_value: None,
                }
            })
            .collect();
    }

    /// Number of installed objectives.
    pub fn len(&self) -> usize {
        self.slos.lock().len()
    }

    /// True when no objectives are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-measures every objective against `ts` and records state
    /// transitions (called once per sampler tick).
    pub fn evaluate(&self, ts: &TimeSeries) {
        let now = ts.now_us();
        let mut slos = self.slos.lock();
        for rt in slos.iter_mut() {
            crate::counter("hac_slo_evals_total", &[("slo", &rt.spec.name)]).inc();
            let fast = measure(ts, &rt.spec.objective, rt.spec.window_secs);
            let slow = measure(
                ts,
                &rt.spec.objective,
                rt.spec.window_secs * SLOW_WINDOW_FACTOR,
            );
            rt.last_value = fast;
            let threshold = rt.spec.threshold();
            let violated = |v: Option<f64>| v.is_some_and(|v| v > threshold);
            let next = match (violated(fast), violated(slow)) {
                (true, true) => SloState::Breach,
                (true, false) => SloState::Warn,
                // No fast-window data or back inside budget: recovered.
                _ => SloState::Ok,
            };
            if next != rt.state {
                let value = fast.unwrap_or(0.0);
                let message = format!(
                    "{} {} (fast-window value {:.3} vs threshold {:.3})",
                    rt.spec.name,
                    next.as_str(),
                    value,
                    threshold
                );
                if next == SloState::Breach {
                    crate::counter("hac_slo_breaches_total", &[("slo", &rt.spec.name)]).inc();
                }
                crate::gauge("hac_slo_state", &[("slo", &rt.spec.name)]).set(match next {
                    SloState::Ok => 0,
                    SloState::Warn => 1,
                    SloState::Breach => 2,
                });
                crate::global().event(
                    "slo_transition",
                    vec![
                        ("slo".to_string(), rt.spec.name.clone()),
                        ("state".to_string(), next.as_str().to_string()),
                    ],
                );
                let mut alerts = self.alerts.lock();
                if alerts.len() >= ALERT_RING_CAPACITY {
                    alerts.pop_front();
                }
                alerts.push_back(Alert {
                    slo: rt.spec.name.clone(),
                    state: next,
                    at_us: now,
                    value,
                    threshold,
                    message,
                });
                rt.state = next;
            }
        }
    }

    /// Current status of every installed objective.
    pub fn status(&self) -> Vec<SloStatus> {
        self.slos
            .lock()
            .iter()
            .map(|rt| SloStatus {
                spec: rt.spec.clone(),
                state: rt.state,
                value: rt.last_value,
            })
            .collect()
    }

    /// Recent state transitions, oldest first.
    pub fn recent_alerts(&self) -> Vec<Alert> {
        self.alerts.lock().iter().cloned().collect()
    }

    /// JSON for `/alerts`: objectives currently not-OK plus the
    /// transition history ring.
    pub fn to_json(&self) -> String {
        let status = self.status();
        let active: Vec<String> = status
            .iter()
            .filter(|s| s.state != SloState::Ok)
            .map(|s| {
                format!(
                    "{{\"slo\":{},\"state\":{},\"value\":{},\"threshold\":{:.6},\
                     \"window_secs\":{}}}",
                    jstr(&s.spec.name),
                    jstr(s.state.as_str()),
                    s.value
                        .map(|v| format!("{v:.6}"))
                        .unwrap_or_else(|| "null".to_string()),
                    s.spec.threshold(),
                    s.spec.window_secs
                )
            })
            .collect();
        let objectives: Vec<String> = status
            .iter()
            .map(|s| {
                format!(
                    "{{\"slo\":{},\"spec\":{},\"state\":{}}}",
                    jstr(&s.spec.name),
                    jstr(&s.spec.render()),
                    jstr(s.state.as_str())
                )
            })
            .collect();
        let recent: Vec<String> = self.recent_alerts().iter().map(Alert::to_json).collect();
        format!(
            "{{\"active\":[{}],\"objectives\":[{}],\"recent\":[{}]}}",
            active.join(","),
            objectives.join(","),
            recent.join(",")
        )
    }
}

fn measure(ts: &TimeSeries, objective: &Objective, window_secs: u64) -> Option<f64> {
    match objective {
        Objective::LatencyP { metric, pct, .. } => ts
            .percentile_us(metric, window_secs, *pct)
            .map(|v| v as f64),
        Objective::ErrorRatio { errors, total, .. } => ts.ratio(errors, total, window_secs),
        Objective::RateBelow { metric, .. } => ts.rate(metric, window_secs),
    }
}

static ENGINE: OnceLock<SloEngine> = OnceLock::new();

/// The process-wide SLO engine (evaluated by the global sampler).
pub fn engine() -> &'static SloEngine {
    ENGINE.get_or_init(SloEngine::default)
}

/// Installs objectives into the global engine.
pub fn install(specs: &[SloSpec]) {
    engine().install(specs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn parse_grammar_round_trips() {
        let s = SloSpec::parse("query: hac_query_eval_duration_us p99 < 5ms over 60s").unwrap();
        assert_eq!(s.name, "query");
        assert_eq!(s.window_secs, 60);
        assert_eq!(
            s.objective,
            Objective::LatencyP {
                metric: "hac_query_eval_duration_us".to_string(),
                pct: 99.0,
                threshold_us: 5000,
            }
        );
        let s = SloSpec::parse("hac_net_errors_total/hac_net_requests_total ratio < 0.1% over 60s")
            .unwrap();
        assert_eq!(s.name, "hac_net_errors_total");
        assert_eq!(
            s.objective,
            Objective::ErrorRatio {
                errors: "hac_net_errors_total".to_string(),
                total: "hac_net_requests_total".to_string(),
                max_ratio: 0.001,
            }
        );
        let s = SloSpec::parse("shed: hac_obs_http_shed_total rate < 10/s over 5m").unwrap();
        assert_eq!(s.window_secs, 300);
        assert_eq!(
            s.objective,
            Objective::RateBelow {
                metric: "hac_obs_http_shed_total".to_string(),
                max_per_sec: 10.0,
            }
        );
        // The spec renders back into parseable form.
        let again = SloSpec::parse(&s.render()).unwrap();
        assert_eq!(again, s);

        assert!(SloSpec::parse("x p99 5ms over 60s").is_err());
        assert!(SloSpec::parse("x rate < 0.1% over 60s")
            .unwrap_err()
            .contains("denominator"));
        assert!(
            SloSpec::parse("x ratio < 1% over 60s").is_err(),
            "no denominator"
        );
        assert!(SloSpec::parse("x p200 < 1ms over 60s").is_err());
        assert!(SloSpec::parse("").is_err());
        for spec in SloSpec::default_set() {
            assert!(!spec.name.is_empty());
        }
    }

    /// Drives a private engine + timeseries through OK → WARN/BREACH → OK.
    #[test]
    fn burn_rate_state_machine_and_alert_ring() {
        let reg = Registry::new();
        let h = reg.histogram("t_slo_lat_us", &[]);
        let ts = TimeSeries::new(256);
        let engine = SloEngine::default();
        engine.install(&[SloSpec::parse("lat: t_slo_lat_us p99 < 1ms over 60s").unwrap()]);

        // Healthy traffic: everything under 1ms.
        for _ in 0..50 {
            h.record(100);
        }
        ts.sample(&reg.snapshot());
        ts.sample(&reg.snapshot());
        engine.evaluate(&ts);
        assert_eq!(engine.status()[0].state, SloState::Ok);
        assert!(engine.recent_alerts().is_empty(), "no transition yet");

        // Distress: p99 blows through the ceiling. Both burn windows see
        // the same (bad) data, so the state goes straight to BREACH.
        for _ in 0..200 {
            h.record(50_000);
        }
        ts.sample(&reg.snapshot());
        engine.evaluate(&ts);
        let status = &engine.status()[0];
        assert_eq!(status.state, SloState::Breach);
        assert!(status.value.unwrap() > 1000.0);
        let alerts = engine.recent_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].state, SloState::Breach);
        assert!(
            alerts[0].message.contains("lat breach"),
            "{}",
            alerts[0].message
        );

        // Evaluating again without new distress keeps the state (no
        // duplicate alerts while breached).
        engine.evaluate(&ts);
        assert_eq!(engine.recent_alerts().len(), 1);

        let json = engine.to_json();
        assert!(json.contains("\"active\":[{\"slo\":\"lat\""), "{json}");
        assert!(json.contains("\"state\":\"breach\""), "{json}");
    }

    #[test]
    fn error_ratio_objective_recovers() {
        let reg = Registry::new();
        let errs = reg.counter("t_slo_errs_total", &[]);
        let total = reg.counter("t_slo_reqs_total", &[]);
        let ts = TimeSeries::new(256);
        let engine = SloEngine::default();
        engine.install(&[SloSpec::parse(
            "errs: t_slo_errs_total/t_slo_reqs_total ratio < 10% over 60s",
        )
        .unwrap()]);

        total.add(100);
        ts.sample(&reg.snapshot());
        // Half the traffic errors: 50% ≫ 10%.
        errs.add(50);
        total.add(100);
        ts.sample(&reg.snapshot());
        engine.evaluate(&ts);
        assert_eq!(engine.status()[0].state, SloState::Breach);

        // A long clean stretch dilutes the windowed ratio below budget.
        for _ in 0..20 {
            total.add(1000);
            ts.sample(&reg.snapshot());
        }
        engine.evaluate(&ts);
        assert_eq!(
            engine.status()[0].state,
            SloState::Ok,
            "recovery transitions back"
        );
        let alerts = engine.recent_alerts();
        assert_eq!(alerts.last().unwrap().state, SloState::Ok);
    }
}
