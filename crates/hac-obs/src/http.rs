//! Embedded pull-based observability endpoint.
//!
//! [`ObsServer`] is a deliberately tiny HTTP/1.1 server — std `TcpListener`,
//! an accept thread feeding a bounded queue, and a fixed worker pool (the
//! same shape as the `hac-net` request server) — that exposes the global
//! [`Obs`](crate::Obs) domain for scrapers and humans:
//!
//! | endpoint        | payload                                              |
//! |-----------------|------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (`# HELP`/`# TYPE` lines) |
//! | `/healthz`      | `ok` once the listener is up                         |
//! | `/statusz`      | caller-supplied status JSON (daemon/server/mounts)   |
//! | `/events`       | recent-events ring as a JSON array                   |
//! | `/slow`         | slow-op log as a JSON array                          |
//! | `/trace/<id>`   | assembled span tree for one trace id, JSON           |
//! | `/timeseries`   | windowed series (`?metric=<name>&window=<secs>`)     |
//! | `/alerts`       | SLO objective states + transition history, JSON      |
//! | `/fleet/metrics`| fleet-merged exposition, every sample `node`-labeled |
//! | `/fleet/health` | per-shard health + replica lag JSON                  |
//!
//! A server started with [`ObsServer::serve_fleet`] additionally follows
//! the federation: `/trace/<id>` scatter-fetches the span forest from
//! every peer (shards and their replicas) under a deadline budget and
//! stitches the union under the local request span — remote spans nest
//! automatically because the wire propagates `parent_span_id` — marking
//! the result `"partial":true` when a peer could not answer, never
//! erroring. The fetching itself lives behind [`FleetHooks`]: this crate
//! owns assembly and rendering, the caller (who has a `hac-net` client)
//! owns transport.
//!
//! Only `GET` is served; request paths are percent-decoded before
//! routing; every response closes the connection. When the bounded
//! accept queue overflows the request is *shed* with a best-effort
//! `503` (and counted) instead of queueing unboundedly. No external
//! dependencies, no TLS, no routing table — this binds to loopback (or
//! an operator-chosen address) next to a `hacsh` process.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace;

/// Read cap for the request head (we never need bodies).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Tuning for an [`ObsServer`] (defaults suit a loopback scrape target).
#[derive(Debug, Clone)]
pub struct ObsServerConfig {
    /// Worker threads serving scrape requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before shedding.
    pub queue_depth: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ObsServerConfig {
    fn default() -> Self {
        ObsServerConfig {
            workers: 2,
            queue_depth: 32,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// Caller-supplied `/statusz` payload producer (must return JSON).
pub type StatusFn = Arc<dyn Fn() -> String + Send + Sync>;

/// One peer's contribution to a stitched trace: its node label and the
/// span forest it returned (`None` when it was unreachable or timed out
/// inside the fetch budget).
pub struct PeerSpans {
    /// Node label (`<shard-ns>@<addr>` by convention).
    pub node: String,
    /// Decoded span events, or `None` for an unreachable peer.
    pub events: Option<Vec<crate::Event>>,
}

/// One peer's contribution to a fleet metrics scrape.
pub struct PeerSnapshot {
    /// Node label.
    pub node: String,
    /// The peer's registry snapshot, or `None` for an unreachable peer.
    pub snapshot: Option<crate::Snapshot>,
}

/// Transport callbacks a fleet-aware [`ObsServer`] stitches with. The
/// closures are expected to scatter to the current federation under
/// their own deadline budget and report unreachable peers as `None`
/// entries rather than failing — the PR-9 partial-result contract.
/// A shell with no federation mounted returns empty vectors.
#[derive(Clone)]
pub struct FleetHooks {
    /// This node's own label in merged output (e.g. `coordinator` or its
    /// serve address).
    pub self_node: String,
    /// Fetch the span forest for a trace id from every peer.
    pub trace_spans: Arc<dyn Fn(u64) -> Vec<PeerSpans> + Send + Sync>,
    /// Scrape every peer's metric registry.
    pub metrics: Arc<dyn Fn() -> Vec<PeerSnapshot> + Send + Sync>,
    /// Render the fleet health JSON (shard health, replica lag).
    pub health: Arc<dyn Fn() -> String + Send + Sync>,
}

struct HttpQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    depth: usize,
    io_timeout: Duration,
}

impl HttpQueue {
    fn push(&self, mut stream: TcpStream) {
        let mut conns = self.conns.lock().unwrap();
        if conns.len() >= self.depth {
            drop(conns);
            // Scrapers retry; shedding beats unbounded growth. Tell the
            // peer why (best effort — the write itself may fail) instead
            // of a bare reset.
            crate::counter("hac_obs_http_shed_total", &[]).inc();
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = stream.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
                  Content-Length: 9\r\nConnection: close\r\n\r\noverload\n",
            );
            return;
        }
        conns.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut conns = self.conns.lock().unwrap();
        loop {
            if let Some(stream) = conns.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            conns = self.ready.wait(conns).unwrap();
        }
    }
}

/// Handle to a running observability HTTP server; shuts down on
/// [`shutdown`](Self::shutdown) or drop.
pub struct ObsServer {
    local_addr: SocketAddr,
    queue: Arc<HttpQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the global
    /// observability domain. `status` produces the `/statusz` JSON body.
    pub fn serve(addr: &str, status: StatusFn) -> std::io::Result<ObsServer> {
        ObsServer::serve_with(addr, status, ObsServerConfig::default())
    }

    /// Like [`serve`](Self::serve) with explicit worker/queue/timeout
    /// tuning (tests use tiny queues to exercise the shed path).
    pub fn serve_with(
        addr: &str,
        status: StatusFn,
        config: ObsServerConfig,
    ) -> std::io::Result<ObsServer> {
        ObsServer::start(addr, status, config, None)
    }

    /// Like [`serve_with`](Self::serve_with), additionally following a
    /// federation: `/trace/<id>` stitches peer spans, `/fleet/metrics`
    /// merges peer registries, `/fleet/health` reports shard health.
    pub fn serve_fleet(
        addr: &str,
        status: StatusFn,
        config: ObsServerConfig,
        fleet: FleetHooks,
    ) -> std::io::Result<ObsServer> {
        ObsServer::start(addr, status, config, Some(Arc::new(fleet)))
    }

    fn start(
        addr: &str,
        status: StatusFn,
        config: ObsServerConfig,
        fleet: Option<Arc<FleetHooks>>,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(HttpQueue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth: config.queue_depth.max(1),
            io_timeout: config.io_timeout,
        });
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let status = Arc::clone(&status);
            let fleet = fleet.clone();
            threads.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    let io_timeout = queue.io_timeout;
                    let _ = serve_connection(stream, &status, fleet.as_deref(), io_timeout);
                }
            }));
        }
        {
            let queue = Arc::clone(&queue);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if queue.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => queue.push(stream),
                        Err(_) => continue,
                    }
                }
            }));
        }
        Ok(ObsServer {
            local_addr,
            queue,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(&mut self) {
        self.queue.shutdown.store(true, Ordering::Relaxed);
        self.queue.ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    status: &StatusFn,
    fleet: Option<&FleetHooks>,
    io_timeout: Duration,
) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the request head; we ignore bodies.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Split the query off before decoding so `%26` in a value cannot
    // smuggle in a separator, then percent-decode path and params.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = parse_query(raw_query);
    let endpoint = normalize_endpoint(&path);
    crate::counter("hac_obs_http_requests_total", &[("endpoint", endpoint)]).inc();
    match endpoint {
        "metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &crate::prometheus(),
        ),
        "healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "statusz" => respond(&mut stream, 200, "application/json", &status()),
        "events" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::recent_events()),
        ),
        "slow" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::slow_ops()),
        ),
        "timeseries" => {
            // Pull-style fallback: a scrape with no sampler thread still
            // gets fresh points (daemonless CI smoke relies on this).
            crate::timeseries::sample_if_due();
            let metric = match query.iter().find(|(k, _)| k == "metric") {
                Some((_, m)) if !m.is_empty() => m.as_str(),
                _ => {
                    return respond(
                        &mut stream,
                        400,
                        "text/plain",
                        "missing required query param: metric\n",
                    )
                }
            };
            let window = query
                .iter()
                .find(|(k, _)| k == "window")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .unwrap_or(60);
            match crate::timeseries::global().series_json(metric, window) {
                Some(json) => respond(&mut stream, 200, "application/json", &json),
                None => respond(&mut stream, 404, "text/plain", "unknown metric\n"),
            }
        }
        "alerts" => {
            crate::timeseries::sample_if_due();
            respond(
                &mut stream,
                200,
                "application/json",
                &crate::slo::engine().to_json(),
            )
        }
        "trace" => match trace::parse_id(path.trim_start_matches("/trace/")) {
            Some(id) => {
                // A span can sit in either (or both) rings; assembly dedups.
                let mut events = crate::recent_events();
                events.extend(crate::slow_ops());
                match fleet {
                    Some(hooks) => {
                        let body = stitched_trace_json(hooks, id, events);
                        match body {
                            Some(json) => respond(&mut stream, 200, "application/json", &json),
                            None => respond(&mut stream, 404, "text/plain", "unknown trace id\n"),
                        }
                    }
                    None => {
                        let tree = trace::assemble(&events, id);
                        if tree.roots.is_empty() {
                            respond(&mut stream, 404, "text/plain", "unknown trace id\n")
                        } else {
                            respond(&mut stream, 200, "application/json", &tree.to_json())
                        }
                    }
                }
            }
            // Malformed ids and unknown ids look the same to a client:
            // there is no such trace resource.
            None => respond(&mut stream, 404, "text/plain", "unknown trace id\n"),
        },
        "fleet_metrics" => match fleet {
            Some(hooks) => respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &fleet_metrics_text(hooks),
            ),
            None => respond(&mut stream, 404, "text/plain", "not a fleet node\n"),
        },
        "fleet_health" => match fleet {
            Some(hooks) => respond(&mut stream, 200, "application/json", &(hooks.health)()),
            None => respond(&mut stream, 404, "text/plain", "not a fleet node\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Stitches local + peer spans for one trace id into the `/trace/<id>`
/// JSON. Remote spans nest under local ones automatically: the wire
/// propagated the trace context, so a peer's `net_server_request` span
/// carries the local client span as `parent_span_id`, and [`trace::
/// assemble`] attaches it there (orphans — parent evicted or on a third
/// node — surface as extra roots, not losses). Every remote span is
/// tagged `node=<peer>`; unreachable peers mark the result partial
/// instead of failing it. Returns `None` only when no node knows the id.
fn stitched_trace_json(
    hooks: &FleetHooks,
    id: u64,
    mut events: Vec<crate::Event>,
) -> Option<String> {
    let started = std::time::Instant::now();
    crate::counter("hac_fleet_stitch_total", &[]).inc();
    let peers = (hooks.trace_spans)(id);
    let mut partial = false;
    let mut peer_meta: Vec<String> = Vec::with_capacity(peers.len());
    for peer in peers {
        match peer.events {
            Some(remote) => {
                let remote: Vec<crate::Event> = remote
                    .into_iter()
                    .filter(|e| e.trace_id == Some(id))
                    .map(|mut e| {
                        if !e.fields.iter().any(|(k, _)| k == "node") {
                            e.fields.push(("node".to_string(), peer.node.clone()));
                        }
                        e
                    })
                    .collect();
                peer_meta.push(format!(
                    "{{\"node\":{},\"ok\":true,\"spans\":{}}}",
                    crate::events::jstr(&peer.node),
                    remote.len()
                ));
                events.extend(remote);
            }
            None => {
                partial = true;
                peer_meta.push(format!(
                    "{{\"node\":{},\"ok\":false,\"spans\":0}}",
                    crate::events::jstr(&peer.node)
                ));
            }
        }
    }
    if partial {
        crate::counter("hac_fleet_stitch_partial_total", &[]).inc();
    }
    let tree = trace::assemble(&events, id);
    crate::histogram("hac_fleet_stitch_us", &[]).record(started.elapsed().as_micros() as u64);
    if tree.roots.is_empty() && !partial {
        return None;
    }
    // Splice the fleet fields into the tree's JSON object head; the
    // remainder (span_count, roots) is untouched.
    let base = tree.to_json();
    Some(format!(
        "{{\"partial\":{partial},\"node\":{},\"peers\":[{}],{}",
        crate::events::jstr(&hooks.self_node),
        peer_meta.join(","),
        &base[1..]
    ))
}

/// Merges the local registry with every peer's scraped snapshot into one
/// `node`-labeled exposition, mirroring peer series into the global
/// registry ([`crate::absorb_fleet`]) so the sampler/SLO machinery sees
/// fleet-level rates. Unreachable peers degrade the scrape to partial
/// (`hac_fleet_scrape_partial 1`, `hac_fleet_peer_up{node=…} 0`) —
/// never to an error. Public so `hacsh fleet stats` and `/fleet/metrics`
/// share one scrape path (same markers, same mirroring).
pub fn fleet_metrics_text(hooks: &FleetHooks) -> String {
    crate::counter("hac_fleet_scrape_total", &[]).inc();
    let peers = (hooks.metrics)();
    let mut partial = false;
    let mut scraped: Vec<(String, crate::Snapshot)> = Vec::with_capacity(peers.len());
    for peer in peers {
        match peer.snapshot {
            Some(snap) => {
                crate::gauge("hac_fleet_peer_up", &[("node", &peer.node)]).set(1);
                crate::absorb_fleet(&peer.node, &snap);
                scraped.push((peer.node, snap));
            }
            None => {
                partial = true;
                crate::counter("hac_fleet_scrape_errors_total", &[]).inc();
                crate::gauge("hac_fleet_peer_up", &[("node", &peer.node)]).set(0);
            }
        }
    }
    crate::gauge("hac_fleet_scrape_partial", &[]).set(partial as i64);
    // Snapshot the local registry *after* the bookkeeping above so the
    // partial/up markers and mirrored series are part of the output.
    let mut merged = crate::snapshot().relabeled("node", &hooks.self_node);
    for (node, snap) in scraped {
        merged.absorb(snap.relabeled("node", &node));
    }
    merged.to_prometheus()
}

fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/statusz" => "statusz",
        "/events" => "events",
        "/slow" => "slow",
        "/timeseries" => "timeseries",
        "/alerts" => "alerts",
        "/fleet/metrics" => "fleet_metrics",
        "/fleet/health" => "fleet_health",
        p if p.starts_with("/trace/") => "trace",
        _ => "other",
    }
}

/// Decodes `%XX` escapes (and `+` as space) in a URL path or query
/// component; malformed escapes pass through literally.
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded `(key, value)` pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

fn events_json(events: &[crate::Event]) -> String {
    let items: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    format!("[{}]", items.join(","))
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_status_events_and_traces() {
        crate::counter("t_http_seen_total", &[]).inc();
        let trace_id;
        {
            let root = crate::global().span("t_http_root", vec![]);
            trace_id = root.context().unwrap().trace_id;
            drop(crate::global().span("t_http_child", vec![]));
        }
        let status: StatusFn = Arc::new(|| "{\"state\":\"testing\"}".to_string());
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("t_http_seen_total 1"), "{body}");
        assert!(body.contains("# TYPE t_http_seen_total counter"));

        let (code, body) = get(addr, "/statusz");
        assert_eq!(code, 200);
        assert_eq!(body, "{\"state\":\"testing\"}");

        let (code, body) = get(addr, "/events");
        assert_eq!(code, 200);
        assert!(body.starts_with('[') && body.ends_with(']'));
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");

        let (code, _) = get(addr, "/slow");
        assert_eq!(code, 200);

        let (code, body) = get(addr, &format!("/trace/{}", trace::format_id(trace_id)));
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");
        assert!(body.contains("\"name\":\"t_http_child\""), "{body}");

        let (code, _) = get(addr, "/trace/ffffffffffffffff");
        assert_eq!(code, 404, "unknown trace id");
        let (code, _) = get(addr, "/trace/zz");
        assert_eq!(code, 404, "malformed trace id is just an unknown trace");
        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        server.shutdown();
    }

    #[test]
    fn percent_decoded_paths_route_and_unknowns_404() {
        let status: StatusFn = Arc::new(String::new);
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        // %6D%65trics → "metrics"
        let (code, body) = get(addr, "/%6D%65trics");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("# TYPE"), "{body}");

        // Encoded unknown path and encoded malformed trace id both 404.
        let (code, _) = get(addr, "/no%20such%20page");
        assert_eq!(code, 404);
        let (code, _) = get(addr, "/trace/%7A%7A");
        assert_eq!(code, 404);

        assert_eq!(percent_decode("a%2Fb+c%"), "a/b c%");
        assert_eq!(percent_decode("%zz"), "%zz");

        server.shutdown();
    }

    #[test]
    fn timeseries_and_alerts_endpoints() {
        crate::counter("t_http_ts_total", &[]).inc();
        crate::timeseries::sample_now();
        crate::counter("t_http_ts_total", &[]).inc();
        crate::timeseries::sample_now();

        let status: StatusFn = Arc::new(String::new);
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/timeseries?metric=t_http_ts_total&window=60");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"metric\":\"t_http_ts_total\""), "{body}");
        assert!(body.contains("\"points\":["), "{body}");

        let (code, _) = get(addr, "/timeseries?metric=t_http_no_such_metric");
        assert_eq!(code, 404);
        let (code, body) = get(addr, "/timeseries");
        assert_eq!(code, 400, "{body}");

        let (code, body) = get(addr, "/alerts");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"active\":["), "{body}");
        assert!(body.contains("\"objectives\":["), "{body}");

        server.shutdown();
    }

    #[test]
    fn fleet_endpoints_stitch_merge_and_degrade_to_partial() {
        use std::sync::atomic::AtomicBool;

        let trace_id;
        {
            let root = crate::global().span("t_fleet_root", vec![]);
            trace_id = root.context().unwrap().trace_id;
        }
        let remote_span = move |name: &str, span_id: u64| crate::Event {
            name: name.to_string(),
            fields: vec![],
            at_micros: 1,
            duration_micros: Some(5),
            trace_id: Some(trace_id),
            span_id: Some(span_id),
            parent_span_id: None,
        };

        // shard1 flips to unreachable when `down` is set; shard0 stays up.
        let down = Arc::new(AtomicBool::new(false));
        let peer_reg = Arc::new(crate::Registry::new());
        peer_reg.counter("t_fleet_peer_total", &[]).add(4);
        let hooks = FleetHooks {
            self_node: "coord".to_string(),
            trace_spans: {
                let down = Arc::clone(&down);
                Arc::new(move |id| {
                    vec![
                        PeerSpans {
                            node: "s0@a:1".to_string(),
                            events: Some(vec![remote_span("t_fleet_s0", 0xA0)]),
                        },
                        PeerSpans {
                            node: "s1@b:2".to_string(),
                            events: if down.load(Ordering::Relaxed) {
                                None
                            } else {
                                // A span from another trace must be filtered out.
                                let mut evs = vec![remote_span("t_fleet_s1", 0xA1)];
                                let mut stray = remote_span("t_fleet_stray", 0xA2);
                                stray.trace_id = Some(id.wrapping_add(1));
                                evs.push(stray);
                                Some(evs)
                            },
                        },
                    ]
                })
            },
            metrics: {
                let down = Arc::clone(&down);
                let peer_reg = Arc::clone(&peer_reg);
                Arc::new(move || {
                    vec![
                        PeerSnapshot {
                            node: "s0@a:1".to_string(),
                            snapshot: Some(peer_reg.snapshot()),
                        },
                        PeerSnapshot {
                            node: "s1@b:2".to_string(),
                            snapshot: if down.load(Ordering::Relaxed) {
                                None
                            } else {
                                Some(peer_reg.snapshot())
                            },
                        },
                    ]
                })
            },
            health: Arc::new(|| "{\"shards\":[{\"shard\":0,\"health\":\"up\"}]}".to_string()),
        };
        let status: StatusFn = Arc::new(String::new);
        let mut server =
            ObsServer::serve_fleet("127.0.0.1:0", status, ObsServerConfig::default(), hooks)
                .unwrap();
        let addr = server.local_addr();

        // Healthy fleet: spans from both peers, node-tagged, not partial.
        let (code, body) = get(addr, &format!("/trace/{}", trace::format_id(trace_id)));
        assert_eq!(code, 200, "{body}");
        assert!(
            body.starts_with("{\"partial\":false,\"node\":\"coord\","),
            "{body}"
        );
        assert!(body.contains("\"name\":\"t_fleet_root\""), "{body}");
        assert!(body.contains("\"name\":\"t_fleet_s0\""), "{body}");
        assert!(body.contains("\"name\":\"t_fleet_s1\""), "{body}");
        assert!(
            !body.contains("t_fleet_stray"),
            "other-trace span leaked: {body}"
        );
        assert!(
            body.contains("{\"node\":\"s0@a:1\",\"ok\":true,\"spans\":1}"),
            "{body}"
        );
        assert!(
            body.contains("\"fields\":{\"node\":\"s0@a:1\"}"),
            "remote span untagged: {body}"
        );

        let (code, body) = get(addr, "/fleet/metrics");
        assert_eq!(code, 200, "{body}");
        assert!(
            body.contains("t_fleet_peer_total{node=\"s0@a:1\"} 4"),
            "{body}"
        );
        assert!(
            body.contains("t_fleet_peer_total{node=\"s1@b:2\"} 4"),
            "{body}"
        );
        assert!(
            body.contains("hac_fleet_peer_up{node=\"s0@a:1\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("hac_fleet_scrape_partial{node=\"coord\"} 0"),
            "{body}"
        );
        // Peer counters were mirrored into the global registry for SLOs.
        assert!(
            body.contains("hac_fleet_t_fleet_peer_total{node=\"s0@a:1\"}"),
            "{body}"
        );

        let (code, body) = get(addr, "/fleet/health");
        assert_eq!(code, 200);
        assert!(body.contains("\"health\":\"up\""), "{body}");

        // Kill shard1: both endpoints degrade to explicitly-partial output.
        down.store(true, Ordering::Relaxed);
        let (code, body) = get(addr, &format!("/trace/{}", trace::format_id(trace_id)));
        assert_eq!(code, 200, "{body}");
        assert!(body.starts_with("{\"partial\":true,"), "{body}");
        assert!(
            body.contains("{\"node\":\"s1@b:2\",\"ok\":false,\"spans\":0}"),
            "{body}"
        );
        assert!(
            body.contains("\"name\":\"t_fleet_s0\""),
            "reachable peer still stitched: {body}"
        );
        let (code, body) = get(addr, "/fleet/metrics");
        assert_eq!(code, 200, "{body}");
        assert!(
            body.contains("hac_fleet_scrape_partial{node=\"coord\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("hac_fleet_peer_up{node=\"s1@b:2\"} 0"),
            "{body}"
        );
        assert!(
            body.contains("t_fleet_peer_total{node=\"s0@a:1\"} 4"),
            "{body}"
        );

        server.shutdown();

        // A non-fleet server 404s the fleet endpoints.
        let status: StatusFn = Arc::new(String::new);
        let mut plain = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let (code, body) = get(plain.local_addr(), "/fleet/metrics");
        assert_eq!((code, body.as_str()), (404, "not a fleet node\n"));
        let (code, _) = get(plain.local_addr(), "/fleet/health");
        assert_eq!(code, 404);
        plain.shutdown();
    }

    #[test]
    fn shed_queue_overflow_responds_503_and_counts() {
        let status: StatusFn = Arc::new(String::new);
        let config = ObsServerConfig {
            workers: 1,
            queue_depth: 1,
            io_timeout: Duration::from_secs(2),
        };
        let mut server = ObsServer::serve_with("127.0.0.1:0", status, config).unwrap();
        let addr = server.local_addr();
        let shed_before = crate::counter("hac_obs_http_shed_total", &[]).get();

        // Pin the single worker on a half-written request, then stuff
        // more idle connections in than the queue can hold.
        let mut blocker = TcpStream::connect(addr).unwrap();
        blocker.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));

        let mut held = Vec::new();
        let mut sheds = 0;
        for _ in 0..8 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut response = String::new();
            if stream.read_to_string(&mut response).is_ok() && response.starts_with("HTTP/1.1 503")
            {
                sheds += 1;
                continue;
            }
            held.push(stream);
        }
        assert!(sheds > 0, "expected at least one shed 503");
        let shed_after = crate::counter("hac_obs_http_shed_total", &[]).get();
        assert!(
            shed_after >= shed_before + sheds,
            "shed counter should cover every 503 ({shed_before} -> {shed_after}, saw {sheds})"
        );

        // Release the worker so shutdown can drain cleanly.
        blocker.write_all(b"Host: x\r\n\r\n").unwrap();
        drop(held);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let status: StatusFn = Arc::new(String::new);
        let server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
