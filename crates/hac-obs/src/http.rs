//! Embedded pull-based observability endpoint.
//!
//! [`ObsServer`] is a deliberately tiny HTTP/1.1 server — std `TcpListener`,
//! an accept thread feeding a bounded queue, and a fixed worker pool (the
//! same shape as the `hac-net` request server) — that exposes the global
//! [`Obs`](crate::Obs) domain for scrapers and humans:
//!
//! | endpoint        | payload                                              |
//! |-----------------|------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (`# HELP`/`# TYPE` lines) |
//! | `/healthz`      | `ok` once the listener is up                         |
//! | `/statusz`      | caller-supplied status JSON (daemon/server/mounts)   |
//! | `/events`       | recent-events ring as a JSON array                   |
//! | `/slow`         | slow-op log as a JSON array                          |
//! | `/trace/<id>`   | assembled span tree for one trace id, JSON           |
//! | `/timeseries`   | windowed series (`?metric=<name>&window=<secs>`)     |
//! | `/alerts`       | SLO objective states + transition history, JSON      |
//!
//! Only `GET` is served; request paths are percent-decoded before
//! routing; every response closes the connection. When the bounded
//! accept queue overflows the request is *shed* with a best-effort
//! `503` (and counted) instead of queueing unboundedly. No external
//! dependencies, no TLS, no routing table — this binds to loopback (or
//! an operator-chosen address) next to a `hacsh` process.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace;

/// Read cap for the request head (we never need bodies).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Tuning for an [`ObsServer`] (defaults suit a loopback scrape target).
#[derive(Debug, Clone)]
pub struct ObsServerConfig {
    /// Worker threads serving scrape requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before shedding.
    pub queue_depth: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ObsServerConfig {
    fn default() -> Self {
        ObsServerConfig {
            workers: 2,
            queue_depth: 32,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// Caller-supplied `/statusz` payload producer (must return JSON).
pub type StatusFn = Arc<dyn Fn() -> String + Send + Sync>;

struct HttpQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    depth: usize,
    io_timeout: Duration,
}

impl HttpQueue {
    fn push(&self, mut stream: TcpStream) {
        let mut conns = self.conns.lock().unwrap();
        if conns.len() >= self.depth {
            drop(conns);
            // Scrapers retry; shedding beats unbounded growth. Tell the
            // peer why (best effort — the write itself may fail) instead
            // of a bare reset.
            crate::counter("hac_obs_http_shed_total", &[]).inc();
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = stream.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
                  Content-Length: 9\r\nConnection: close\r\n\r\noverload\n",
            );
            return;
        }
        conns.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut conns = self.conns.lock().unwrap();
        loop {
            if let Some(stream) = conns.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            conns = self.ready.wait(conns).unwrap();
        }
    }
}

/// Handle to a running observability HTTP server; shuts down on
/// [`shutdown`](Self::shutdown) or drop.
pub struct ObsServer {
    local_addr: SocketAddr,
    queue: Arc<HttpQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the global
    /// observability domain. `status` produces the `/statusz` JSON body.
    pub fn serve(addr: &str, status: StatusFn) -> std::io::Result<ObsServer> {
        ObsServer::serve_with(addr, status, ObsServerConfig::default())
    }

    /// Like [`serve`](Self::serve) with explicit worker/queue/timeout
    /// tuning (tests use tiny queues to exercise the shed path).
    pub fn serve_with(
        addr: &str,
        status: StatusFn,
        config: ObsServerConfig,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(HttpQueue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth: config.queue_depth.max(1),
            io_timeout: config.io_timeout,
        });
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let status = Arc::clone(&status);
            threads.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    let io_timeout = queue.io_timeout;
                    let _ = serve_connection(stream, &status, io_timeout);
                }
            }));
        }
        {
            let queue = Arc::clone(&queue);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if queue.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => queue.push(stream),
                        Err(_) => continue,
                    }
                }
            }));
        }
        Ok(ObsServer {
            local_addr,
            queue,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(&mut self) {
        self.queue.shutdown.store(true, Ordering::Relaxed);
        self.queue.ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    status: &StatusFn,
    io_timeout: Duration,
) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the request head; we ignore bodies.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Split the query off before decoding so `%26` in a value cannot
    // smuggle in a separator, then percent-decode path and params.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = parse_query(raw_query);
    let endpoint = normalize_endpoint(&path);
    crate::counter("hac_obs_http_requests_total", &[("endpoint", endpoint)]).inc();
    match endpoint {
        "metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &crate::prometheus(),
        ),
        "healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "statusz" => respond(&mut stream, 200, "application/json", &status()),
        "events" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::recent_events()),
        ),
        "slow" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::slow_ops()),
        ),
        "timeseries" => {
            // Pull-style fallback: a scrape with no sampler thread still
            // gets fresh points (daemonless CI smoke relies on this).
            crate::timeseries::sample_if_due();
            let metric = match query.iter().find(|(k, _)| k == "metric") {
                Some((_, m)) if !m.is_empty() => m.as_str(),
                _ => {
                    return respond(
                        &mut stream,
                        400,
                        "text/plain",
                        "missing required query param: metric\n",
                    )
                }
            };
            let window = query
                .iter()
                .find(|(k, _)| k == "window")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .unwrap_or(60);
            match crate::timeseries::global().series_json(metric, window) {
                Some(json) => respond(&mut stream, 200, "application/json", &json),
                None => respond(&mut stream, 404, "text/plain", "unknown metric\n"),
            }
        }
        "alerts" => {
            crate::timeseries::sample_if_due();
            respond(
                &mut stream,
                200,
                "application/json",
                &crate::slo::engine().to_json(),
            )
        }
        "trace" => match trace::parse_id(path.trim_start_matches("/trace/")) {
            Some(id) => {
                // A span can sit in either (or both) rings; assembly dedups.
                let mut events = crate::recent_events();
                events.extend(crate::slow_ops());
                let tree = trace::assemble(&events, id);
                if tree.roots.is_empty() {
                    respond(&mut stream, 404, "text/plain", "unknown trace id\n")
                } else {
                    respond(&mut stream, 200, "application/json", &tree.to_json())
                }
            }
            // Malformed ids and unknown ids look the same to a client:
            // there is no such trace resource.
            None => respond(&mut stream, 404, "text/plain", "unknown trace id\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/statusz" => "statusz",
        "/events" => "events",
        "/slow" => "slow",
        "/timeseries" => "timeseries",
        "/alerts" => "alerts",
        p if p.starts_with("/trace/") => "trace",
        _ => "other",
    }
}

/// Decodes `%XX` escapes (and `+` as space) in a URL path or query
/// component; malformed escapes pass through literally.
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded `(key, value)` pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

fn events_json(events: &[crate::Event]) -> String {
    let items: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    format!("[{}]", items.join(","))
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_status_events_and_traces() {
        crate::counter("t_http_seen_total", &[]).inc();
        let trace_id;
        {
            let root = crate::global().span("t_http_root", vec![]);
            trace_id = root.context().unwrap().trace_id;
            drop(crate::global().span("t_http_child", vec![]));
        }
        let status: StatusFn = Arc::new(|| "{\"state\":\"testing\"}".to_string());
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("t_http_seen_total 1"), "{body}");
        assert!(body.contains("# TYPE t_http_seen_total counter"));

        let (code, body) = get(addr, "/statusz");
        assert_eq!(code, 200);
        assert_eq!(body, "{\"state\":\"testing\"}");

        let (code, body) = get(addr, "/events");
        assert_eq!(code, 200);
        assert!(body.starts_with('[') && body.ends_with(']'));
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");

        let (code, _) = get(addr, "/slow");
        assert_eq!(code, 200);

        let (code, body) = get(addr, &format!("/trace/{}", trace::format_id(trace_id)));
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");
        assert!(body.contains("\"name\":\"t_http_child\""), "{body}");

        let (code, _) = get(addr, "/trace/ffffffffffffffff");
        assert_eq!(code, 404, "unknown trace id");
        let (code, _) = get(addr, "/trace/zz");
        assert_eq!(code, 404, "malformed trace id is just an unknown trace");
        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        server.shutdown();
    }

    #[test]
    fn percent_decoded_paths_route_and_unknowns_404() {
        let status: StatusFn = Arc::new(String::new);
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        // %6D%65trics → "metrics"
        let (code, body) = get(addr, "/%6D%65trics");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("# TYPE"), "{body}");

        // Encoded unknown path and encoded malformed trace id both 404.
        let (code, _) = get(addr, "/no%20such%20page");
        assert_eq!(code, 404);
        let (code, _) = get(addr, "/trace/%7A%7A");
        assert_eq!(code, 404);

        assert_eq!(percent_decode("a%2Fb+c%"), "a/b c%");
        assert_eq!(percent_decode("%zz"), "%zz");

        server.shutdown();
    }

    #[test]
    fn timeseries_and_alerts_endpoints() {
        crate::counter("t_http_ts_total", &[]).inc();
        crate::timeseries::sample_now();
        crate::counter("t_http_ts_total", &[]).inc();
        crate::timeseries::sample_now();

        let status: StatusFn = Arc::new(String::new);
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/timeseries?metric=t_http_ts_total&window=60");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"metric\":\"t_http_ts_total\""), "{body}");
        assert!(body.contains("\"points\":["), "{body}");

        let (code, _) = get(addr, "/timeseries?metric=t_http_no_such_metric");
        assert_eq!(code, 404);
        let (code, body) = get(addr, "/timeseries");
        assert_eq!(code, 400, "{body}");

        let (code, body) = get(addr, "/alerts");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"active\":["), "{body}");
        assert!(body.contains("\"objectives\":["), "{body}");

        server.shutdown();
    }

    #[test]
    fn shed_queue_overflow_responds_503_and_counts() {
        let status: StatusFn = Arc::new(String::new);
        let config = ObsServerConfig {
            workers: 1,
            queue_depth: 1,
            io_timeout: Duration::from_secs(2),
        };
        let mut server = ObsServer::serve_with("127.0.0.1:0", status, config).unwrap();
        let addr = server.local_addr();
        let shed_before = crate::counter("hac_obs_http_shed_total", &[]).get();

        // Pin the single worker on a half-written request, then stuff
        // more idle connections in than the queue can hold.
        let mut blocker = TcpStream::connect(addr).unwrap();
        blocker.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));

        let mut held = Vec::new();
        let mut sheds = 0;
        for _ in 0..8 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut response = String::new();
            if stream.read_to_string(&mut response).is_ok() && response.starts_with("HTTP/1.1 503")
            {
                sheds += 1;
                continue;
            }
            held.push(stream);
        }
        assert!(sheds > 0, "expected at least one shed 503");
        let shed_after = crate::counter("hac_obs_http_shed_total", &[]).get();
        assert!(
            shed_after >= shed_before + sheds,
            "shed counter should cover every 503 ({shed_before} -> {shed_after}, saw {sheds})"
        );

        // Release the worker so shutdown can drain cleanly.
        blocker.write_all(b"Host: x\r\n\r\n").unwrap();
        drop(held);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let status: StatusFn = Arc::new(String::new);
        let server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
