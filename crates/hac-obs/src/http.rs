//! Embedded pull-based observability endpoint.
//!
//! [`ObsServer`] is a deliberately tiny HTTP/1.1 server — std `TcpListener`,
//! an accept thread feeding a bounded queue, and a fixed worker pool (the
//! same shape as the `hac-net` request server) — that exposes the global
//! [`Obs`](crate::Obs) domain for scrapers and humans:
//!
//! | endpoint        | payload                                            |
//! |-----------------|----------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (with `# TYPE` lines)   |
//! | `/healthz`      | `ok` once the listener is up                       |
//! | `/statusz`      | caller-supplied status JSON (daemon/server/mounts) |
//! | `/events`       | recent-events ring as a JSON array                 |
//! | `/slow`         | slow-op log as a JSON array                        |
//! | `/trace/<id>`   | assembled span tree for one trace id, JSON         |
//!
//! Only `GET` is served; every response closes the connection. No
//! external dependencies, no TLS, no routing table — this binds to
//! loopback (or an operator-chosen address) next to a `hacsh` process.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace;

/// Worker threads serving scrape requests.
const HTTP_WORKERS: usize = 2;
/// Accepted connections waiting for a worker.
const HTTP_QUEUE_DEPTH: usize = 32;
/// Read cap for the request head (we never need bodies).
const MAX_REQUEST_HEAD: usize = 8 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Caller-supplied `/statusz` payload producer (must return JSON).
pub type StatusFn = Arc<dyn Fn() -> String + Send + Sync>;

struct HttpQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl HttpQueue {
    fn push(&self, stream: TcpStream) {
        let mut conns = self.conns.lock().unwrap();
        if conns.len() >= HTTP_QUEUE_DEPTH {
            // Scrapers retry; shedding beats unbounded growth.
            drop(stream);
            crate::counter("hac_obs_http_shed_total", &[]).inc();
            return;
        }
        conns.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut conns = self.conns.lock().unwrap();
        loop {
            if let Some(stream) = conns.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            conns = self.ready.wait(conns).unwrap();
        }
    }
}

/// Handle to a running observability HTTP server; shuts down on
/// [`shutdown`](Self::shutdown) or drop.
pub struct ObsServer {
    local_addr: SocketAddr,
    queue: Arc<HttpQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the global
    /// observability domain. `status` produces the `/statusz` JSON body.
    pub fn serve(addr: &str, status: StatusFn) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(HttpQueue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(HTTP_WORKERS + 1);
        for _ in 0..HTTP_WORKERS {
            let queue = Arc::clone(&queue);
            let status = Arc::clone(&status);
            threads.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    let _ = serve_connection(stream, &status);
                }
            }));
        }
        {
            let queue = Arc::clone(&queue);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if queue.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => queue.push(stream),
                        Err(_) => continue,
                    }
                }
            }));
        }
        Ok(ObsServer {
            local_addr,
            queue,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(&mut self) {
        self.queue.shutdown.store(true, Ordering::Relaxed);
        self.queue.ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, status: &StatusFn) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the request head; we ignore bodies.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let endpoint = normalize_endpoint(path);
    crate::counter("hac_obs_http_requests_total", &[("endpoint", endpoint)]).inc();
    match endpoint {
        "metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &crate::prometheus(),
        ),
        "healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "statusz" => respond(&mut stream, 200, "application/json", &status()),
        "events" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::recent_events()),
        ),
        "slow" => respond(
            &mut stream,
            200,
            "application/json",
            &events_json(&crate::slow_ops()),
        ),
        "trace" => match trace::parse_id(path.trim_start_matches("/trace/")) {
            Some(id) => {
                // A span can sit in either (or both) rings; assembly dedups.
                let mut events = crate::recent_events();
                events.extend(crate::slow_ops());
                let tree = trace::assemble(&events, id);
                if tree.roots.is_empty() {
                    respond(&mut stream, 404, "text/plain", "unknown trace id\n")
                } else {
                    respond(&mut stream, 200, "application/json", &tree.to_json())
                }
            }
            None => respond(&mut stream, 400, "text/plain", "bad trace id\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/statusz" => "statusz",
        "/events" => "events",
        "/slow" => "slow",
        p if p.starts_with("/trace/") => "trace",
        _ => "other",
    }
}

fn events_json(events: &[crate::Event]) -> String {
    let items: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    format!("[{}]", items.join(","))
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_status_events_and_traces() {
        crate::counter("t_http_seen_total", &[]).inc();
        let trace_id;
        {
            let root = crate::global().span("t_http_root", vec![]);
            trace_id = root.context().unwrap().trace_id;
            drop(crate::global().span("t_http_child", vec![]));
        }
        let status: StatusFn = Arc::new(|| "{\"state\":\"testing\"}".to_string());
        let mut server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("t_http_seen_total 1"), "{body}");
        assert!(body.contains("# TYPE t_http_seen_total counter"));

        let (code, body) = get(addr, "/statusz");
        assert_eq!(code, 200);
        assert_eq!(body, "{\"state\":\"testing\"}");

        let (code, body) = get(addr, "/events");
        assert_eq!(code, 200);
        assert!(body.starts_with('[') && body.ends_with(']'));
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");

        let (code, _) = get(addr, "/slow");
        assert_eq!(code, 200);

        let (code, body) = get(addr, &format!("/trace/{}", trace::format_id(trace_id)));
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"name\":\"t_http_root\""), "{body}");
        assert!(body.contains("\"name\":\"t_http_child\""), "{body}");

        let (code, _) = get(addr, "/trace/ffffffffffffffff");
        assert_eq!(code, 404, "unknown trace id");
        let (code, _) = get(addr, "/trace/zz");
        assert_eq!(code, 400, "malformed trace id");
        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let status: StatusFn = Arc::new(String::new);
        let server = ObsServer::serve("127.0.0.1:0", status).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
