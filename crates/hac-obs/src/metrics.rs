//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms, all updated through lock-free atomic handles.
//!
//! Metrics are identified by `(name, sorted label pairs)`. Handle lookup
//! takes a short registry lock; the handles themselves are `Arc`-backed
//! atomics, so the hot path (incrementing inside query evaluation or a
//! reindex pass) never blocks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of histogram buckets: bucket 0 holds values ≤ 1, bucket `k`
/// (1 ≤ k < 64) holds values in `(2^(k-1), 2^k]`, bucket 64 is the
/// overflow for values above `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value (log₂ bucketing; boundaries are
/// powers of two and each power of two lands in the bucket it bounds).
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket, or `None` for the overflow bucket.
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    if index >= 64 {
        None
    } else {
        Some(1u64 << index)
    }
}

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle (a settable signed value).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    // Last trace id observed per bucket (0 = none): the exemplar linking a
    // latency outlier back to its span tree.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Log₂-bucketed histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation. When the recording thread carries a trace
    /// context, the trace id is kept as the bucket's exemplar.
    pub fn record(&self, value: u64) {
        let idx = bucket_index(value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        if let Some(ctx) = crate::trace::current() {
            self.0.exemplars[idx].store(ctx.trace_id, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) observation counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Per-bucket last-seen trace-id exemplars (0 = none recorded).
    pub fn exemplars(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.exemplars[i].load(Ordering::Relaxed))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Fully-qualified metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name (`hac_*` by convention here).
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",…}` (bare name when label-free).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

fn escape_label(v: &str) -> String {
    // Prometheus text exposition: label values escape backslash, quote,
    // and newline (a raw newline would split the sample line in two).
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    // `# HELP` text escapes backslash and newline only (no quotes).
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Curated `# HELP` text for the workspace's metric families.
const CURATED_HELP: &[(&str, &str)] = &[
    ("hac_ssync_passes_total", "Reindex (ssync) passes completed"),
    ("hac_ssync_duration_us", "Wall time of one ssync pass"),
    (
        "hac_reindex_passes_total",
        "Reindex daemon passes by outcome",
    ),
    (
        "hac_reindex_backoff_ms",
        "Current daemon failure backoff delay",
    ),
    (
        "hac_reindex_dirty_docs",
        "Documents queued for retokenization",
    ),
    ("hac_query_evals_total", "Semantic query evaluations"),
    (
        "hac_query_eval_duration_us",
        "Latency of one semantic query evaluation",
    ),
    (
        "hac_query_results",
        "Result-set cardinality per query evaluation",
    ),
    (
        "hac_net_requests_total",
        "Client requests sent over the HACN wire",
    ),
    (
        "hac_net_request_duration_us",
        "Client-observed request latency",
    ),
    (
        "hac_net_errors_total",
        "Client requests that ended in an error",
    ),
    ("hac_net_retries_total", "Client request retries"),
    (
        "hac_net_server_requests_total",
        "Requests served, by operation",
    ),
    (
        "hac_net_server_request_duration_us",
        "Server-side request service time",
    ),
    (
        "hac_net_server_errors_total",
        "Served requests that returned an error",
    ),
    (
        "hac_net_server_rejected_total",
        "Connections rejected at accept past max_connections",
    ),
    ("hac_net_server_wakeups_total", "Event-loop poller wakeups"),
    (
        "hac_net_server_ready_events_total",
        "Readiness events delivered per poller wakeup",
    ),
    (
        "hac_net_server_pipeline_depth",
        "In-flight pipelined requests per connection",
    ),
    (
        "hac_net_server_frames_per_flush",
        "Response frames batched into one socket flush",
    ),
    (
        "hac_net_server_inline_total",
        "Requests served on the event-loop thread (cost model)",
    ),
    (
        "hac_net_server_offloaded_total",
        "Requests dispatched to the CPU worker pool",
    ),
    (
        "hac_net_server_reaped_total",
        "Connections reaped, by reason (idle, slow-read, write-stall)",
    ),
    (
        "hac_net_server_workers",
        "CPU worker threads serving offloaded requests",
    ),
    (
        "hac_net_stray_responses_total",
        "Pipelined responses with no waiting caller",
    ),
    ("hac_store_commit_us", "Durable index store commit latency"),
    (
        "hac_store_segments_live",
        "Live segments in the durable index store",
    ),
    (
        "hac_slo_breaches_total",
        "Objective transitions into the breach state",
    ),
    ("hac_slo_state", "Objective state (0 ok, 1 warn, 2 breach)"),
    (
        "hac_slo_evals_total",
        "Objective evaluations by the sampler",
    ),
    ("hac_ts_samples_total", "Time-series sampler ticks"),
    (
        "hac_ts_sample_duration_us",
        "Cost of one time-series sampling tick",
    ),
    ("hac_ts_sampler_interval_ms", "Configured sampling interval"),
    (
        "hac_obs_http_shed_total",
        "Observability HTTP requests shed (503) at the full queue",
    ),
    (
        "hac_obs_http_requests_total",
        "Observability HTTP requests by endpoint",
    ),
    (
        "hac_events_dropped_total",
        "Events evicted from a full ring",
    ),
    (
        "hac_slow_ops_total",
        "Spans exceeding the slow-op threshold",
    ),
    ("hac_span_duration_us", "Span durations by span name"),
    (
        "hac_fed_scatter_total",
        "Federated fan-outs started by the coordinator",
    ),
    (
        "hac_fed_scatter_micros",
        "Wall time of one federated fan-out (scatter to gather)",
    ),
    (
        "hac_fed_failover_total",
        "Shard answers served by a replica after the primary failed",
    ),
    (
        "hac_fed_shard_errors_total",
        "Shard answers that ended in an error (after failover)",
    ),
    (
        "hac_fed_shard_timeouts_total",
        "Shards that missed the fan-out deadline budget",
    ),
    (
        "hac_fed_partial_total",
        "Fan-outs degraded to an explicitly partial result",
    ),
    (
        "hac_fed_segments_shipped_total",
        "Index segments fetched and replayed by replicas",
    ),
    (
        "hac_fed_replica_manifest_seq",
        "Manifest revision a replica has applied",
    ),
    (
        "hac_fed_replica_lag_segments",
        "Segments behind the primary's manifest at sync start",
    ),
    (
        "hac_fed_replica_lag_us",
        "Wall-clock lag behind the primary's last commit stamp",
    ),
    (
        "hac_fed_shard_health",
        "Shard health band from consecutive failures (0 up, 1 degraded, 2 down)",
    ),
    (
        "hac_fleet_scrape_total",
        "Fleet metric scrapes (peer registries pulled)",
    ),
    (
        "hac_fleet_scrape_errors_total",
        "Peer registries that failed to answer a fleet scrape",
    ),
    (
        "hac_fleet_scrape_partial",
        "Whether the last fleet scrape was missing peers (0/1)",
    ),
    (
        "hac_fleet_peer_up",
        "Per-peer reachability at the last fleet scrape (0/1)",
    ),
    ("hac_fleet_stitch_total", "Cross-node trace stitches served"),
    (
        "hac_fleet_stitch_partial_total",
        "Trace stitches missing at least one peer's spans",
    ),
    (
        "hac_fleet_stitch_us",
        "Wall time of one cross-node trace stitch",
    ),
];

/// `# HELP` text for a metric name: an explicitly registered string, the
/// curated table, or readable text derived from the name itself — every
/// `# TYPE` line is guaranteed a preceding `# HELP` line.
pub fn help_for(name: &str, registered: Option<&str>) -> String {
    if let Some(h) = registered {
        return h.to_string();
    }
    if let Some((_, h)) = CURATED_HELP.iter().find(|(n, _)| *n == name) {
        return (*h).to_string();
    }
    // Derived fallback: strip conventional prefixes/suffixes into prose.
    let mut words = name.trim_start_matches("hac_").replace('_', " ");
    let suffix = if let Some(w) = words.strip_suffix(" total") {
        words = w.to_string();
        " (cumulative count)"
    } else if let Some(w) = words.strip_suffix(" us") {
        words = w.to_string();
        " in microseconds"
    } else if let Some(w) = words.strip_suffix(" ms") {
        words = w.to_string();
        " in milliseconds"
    } else {
        ""
    };
    format!("{words}{suffix}")
}

/// One counter/gauge sample in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric identity.
    pub id: MetricId,
    /// Sampled value.
    pub value: i128,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric identity.
    pub id: MetricId,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket last-seen trace-id exemplars (0 = none).
    pub exemplars: [u64; HISTOGRAM_BUCKETS],
}

/// Point-in-time copy of every registered metric, sorted by identity.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter samples.
    pub counters: Vec<Sample>,
    /// Gauge samples.
    pub gauges: Vec<Sample>,
    /// Histogram samples.
    pub histograms: Vec<HistogramSample>,
    /// Explicitly registered per-name help strings
    /// (see [`Registry::set_help`]).
    pub help: BTreeMap<String, String>,
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.value as u64)
    }

    /// Value of a gauge, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let id = MetricId::new(name, labels);
        self.gauges
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.value as i64)
    }

    /// Observation count of a histogram, if present.
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.histograms.iter().find(|s| s.id == id).map(|s| s.count)
    }

    /// Sum of a counter over every label combination it was recorded with.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|s| s.id.name == name)
            .map(|s| s.value as u64)
            .sum()
    }

    /// Renders Prometheus text exposition: one `# HELP` + `# TYPE` comment
    /// pair per metric name followed by its `name{label="…"} value`
    /// samples; histograms as cumulative `_bucket`/`_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed = String::new();
        let help = &self.help;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            // Samples are sorted by id, so every label set of one name is
            // contiguous and gets a single HELP+TYPE pair.
            if typed != name {
                let text = help_for(name, help.get(name).map(String::as_str));
                out.push_str(&format!("# HELP {name} {}\n", escape_help(&text)));
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                typed = name.to_string();
            }
        };
        for s in &self.counters {
            type_line(&mut out, &s.id.name, "counter");
            out.push_str(&format!("{} {}\n", s.id.render(), s.value));
        }
        for s in &self.gauges {
            type_line(&mut out, &s.id.name, "gauge");
            out.push_str(&format!("{} {}\n", s.id.render(), s.value));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.id.name, "histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cumulative += b;
                // Skip empty tail buckets, but always emit +Inf below.
                if *b == 0 && !(cumulative > 0 && i == 0) {
                    continue;
                }
                let le = match bucket_upper_bound(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let mut id = h.id.clone();
                id.name = format!("{}_bucket", id.name);
                id.labels.push(("le".to_string(), le));
                out.push_str(&format!("{} {}\n", id.render(), cumulative));
            }
            let mut inf = h.id.clone();
            inf.name = format!("{}_bucket", inf.name);
            inf.labels.push(("le".to_string(), "+Inf".to_string()));
            out.push_str(&format!("{} {}\n", inf.render(), h.count));
            let mut sum_id = h.id.clone();
            sum_id.name = format!("{}_sum", sum_id.name);
            out.push_str(&format!("{} {}\n", sum_id.render(), h.sum));
            let mut count_id = h.id.clone();
            count_id.name = format!("{}_count", count_id.name);
            out.push_str(&format!("{} {}\n", count_id.render(), h.count));
        }
        out
    }

    /// Renders the snapshot as a JSON object (hand-rolled: this crate is
    /// deliberately dependency-light).
    pub fn to_json(&self) -> String {
        fn jstr(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn labels_json(labels: &[(String, String)]) -> String {
            let inner: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{}:{}", jstr(k), jstr(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        let mut parts: Vec<String> = Vec::new();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                    jstr(&s.id.name),
                    labels_json(&s.id.labels),
                    s.value
                )
            })
            .collect();
        parts.push(format!("\"counters\":[{}]", counters.join(",")));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                    jstr(&s.id.name),
                    labels_json(&s.id.labels),
                    s.value
                )
            })
            .collect();
        parts.push(format!("\"gauges\":[{}]", gauges.join(",")));
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| {
                        let le = match bucket_upper_bound(i) {
                            Some(b) => format!("{b}"),
                            None => "\"+Inf\"".to_string(),
                        };
                        if h.exemplars[i] != 0 {
                            format!(
                                "{{\"le\":{le},\"count\":{c},\"trace\":\"{}\"}}",
                                crate::trace::format_id(h.exemplars[i])
                            )
                        } else {
                            format!("{{\"le\":{le},\"count\":{c}}}")
                        }
                    })
                    .collect();
                format!(
                    "{{\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    jstr(&h.id.name),
                    labels_json(&h.id.labels),
                    h.count,
                    h.sum,
                    buckets.join(",")
                )
            })
            .collect();
        parts.push(format!("\"histograms\":[{}]", histograms.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

/// Snapshot wire magic (wire-v5 `Metrics` payloads).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HACS";
/// Current snapshot wire format version.
pub const SNAPSHOT_VERSION: u8 = 1;

impl Snapshot {
    /// Serializes the snapshot into the versioned binary layout the
    /// wire-v5 `Metrics` op ships between nodes: counters, gauges, and
    /// histograms (with exemplars), plus registered help text. The
    /// layout follows the shard map's idiom — magic and version up
    /// front, strict arity, loud failures.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.counters.len() * 48);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        let put_id = |out: &mut Vec<u8>, id: &MetricId| {
            put_str(out, &id.name);
            out.extend_from_slice(&(id.labels.len() as u32).to_le_bytes());
            for (k, v) in &id.labels {
                put_str(out, k);
                put_str(out, v);
            }
        };
        for samples in [&self.counters, &self.gauges] {
            out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
            for s in samples.iter() {
                put_id(&mut out, &s.id);
                out.extend_from_slice(&s.value.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for h in &self.histograms {
            put_id(&mut out, &h.id);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            for b in &h.buckets {
                out.extend_from_slice(&b.to_le_bytes());
            }
            for e in &h.exemplars {
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.help.len() as u32).to_le_bytes());
        for (k, v) in &self.help {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out
    }

    /// Decodes a snapshot encoded by [`Snapshot::encode`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformation found.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
        let mut cur = bytes;
        let mut take = |n: usize, what: &str| -> Result<&[u8], String> {
            if cur.len() < n {
                return Err(format!("metric snapshot truncated at {what}"));
            }
            let (head, tail) = cur.split_at(n);
            cur = tail;
            Ok(head)
        };
        if take(4, "magic")? != SNAPSHOT_MAGIC {
            return Err("bad metric snapshot magic".to_string());
        }
        let version = take(1, "version")?[0];
        if version != SNAPSHOT_VERSION {
            return Err(format!("unsupported metric snapshot version {version}"));
        }
        let u32_of =
            |b: &[u8]| -> usize { u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize };
        let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
        macro_rules! string {
            ($what:expr) => {{
                let len = u32_of(take(4, $what)?);
                let raw = take(len, $what)?;
                String::from_utf8(raw.to_vec()).map_err(|_| format!("{} not utf-8", $what))?
            }};
        }
        macro_rules! id {
            () => {{
                let name = string!("metric name");
                let label_count = u32_of(take(4, "label count")?);
                let mut labels = Vec::with_capacity(label_count.min(16));
                for _ in 0..label_count {
                    let k = string!("label key");
                    let v = string!("label value");
                    labels.push((k, v));
                }
                MetricId { name, labels }
            }};
        }
        let mut snap = Snapshot::default();
        for kind in ["counter", "gauge"] {
            let count = u32_of(take(4, kind)?);
            let samples = if kind == "counter" {
                &mut snap.counters
            } else {
                &mut snap.gauges
            };
            for _ in 0..count {
                let id = id!();
                let value = i128::from_le_bytes(take(16, "sample value")?.try_into().unwrap());
                samples.push(Sample { id, value });
            }
        }
        let hist_count = u32_of(take(4, "histogram count")?);
        for _ in 0..hist_count {
            let id = id!();
            let count = u64_of(take(8, "histogram count field")?);
            let sum = u64_of(take(8, "histogram sum")?);
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for b in &mut buckets {
                *b = u64_of(take(8, "bucket")?);
            }
            let mut exemplars = [0u64; HISTOGRAM_BUCKETS];
            for e in &mut exemplars {
                *e = u64_of(take(8, "exemplar")?);
            }
            snap.histograms.push(HistogramSample {
                id,
                count,
                sum,
                buckets,
                exemplars,
            });
        }
        let help_count = u32_of(take(4, "help count")?);
        for _ in 0..help_count {
            let k = string!("help name");
            let v = string!("help text");
            snap.help.insert(k, v);
        }
        if !cur.is_empty() {
            return Err("trailing bytes after metric snapshot".to_string());
        }
        Ok(snap)
    }

    /// Returns the snapshot with `key="value"` added to every sample's
    /// label set — how a fleet merge tags each node's registry before
    /// unioning them (`node="host:port"`). Samples already carrying the
    /// key are left alone: a mirrored peer series
    /// (`hac_fleet_…{node="peer"}`) keeps naming its origin rather than
    /// the node that happens to re-export it.
    pub fn relabeled(mut self, key: &str, value: &str) -> Snapshot {
        let relabel = |id: &mut MetricId| {
            if id.labels.iter().any(|(k, _)| k == key) {
                return;
            }
            id.labels.push((key.to_string(), value.to_string()));
            id.labels.sort();
        };
        for s in self.counters.iter_mut().chain(self.gauges.iter_mut()) {
            relabel(&mut s.id);
        }
        for h in self.histograms.iter_mut() {
            relabel(&mut h.id);
        }
        self
    }

    /// Unions another snapshot into this one and restores the sorted-by-id
    /// invariant [`Snapshot::to_prometheus`] depends on (every label set
    /// of one name contiguous). Callers tag each side with a
    /// distinguishing label ([`Snapshot::relabeled`]) first. Ids can
    /// still collide when a peer shares this process's registry (an
    /// in-process `fed follow` replica re-exports the coordinator's own
    /// already-`node`-labeled scrape markers); exact duplicates keep the
    /// first copy — `self`'s, the freshest — so the exposition never
    /// emits one series twice.
    pub fn absorb(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        for (k, v) in other.help {
            self.help.entry(k).or_insert(v);
        }
        // Stable sorts: within an id, self's samples stay ahead of
        // absorbed ones, so dedup keeps self's value.
        self.counters.sort_by(|a, b| a.id.cmp(&b.id));
        self.counters.dedup_by(|a, b| a.id == b.id);
        self.gauges.sort_by(|a, b| a.id.cmp(&b.id));
        self.gauges.dedup_by(|a, b| a.id == b.id);
        self.histograms.sort_by(|a, b| a.id.cmp(&b.id));
        self.histograms.dedup_by(|a, b| a.id == b.id);
    }
}

/// A registry of named metrics.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricId, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) a counter.
    ///
    /// # Panics
    ///
    /// If the same name+labels is already registered as another metric
    /// type — a programming error in the instrumentation.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns (registering on first use) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns (registering on first use) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramInner::new()))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or replaces) the `# HELP` text of a metric name.
    /// Unregistered names fall back to curated/derived text — every
    /// exposed metric always has a HELP line.
    pub fn set_help(&self, name: &str, help: &str) {
        self.help.lock().insert(name.to_string(), help.to_string());
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock();
        let mut snap = Snapshot {
            help: self.help.lock().clone(),
            ..Snapshot::default()
        };
        for (id, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(Sample {
                    id: id.clone(),
                    value: c.get() as i128,
                }),
                Metric::Gauge(g) => snap.gauges.push(Sample {
                    id: id.clone(),
                    value: g.get() as i128,
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    id: id.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                    exemplars: h.exemplars(),
                }),
            }
        }
        snap
    }
}
