//! Windowed time-series collection over the metrics [`Registry`].
//!
//! Every metric in the workspace is a monotonic point-in-time value; this
//! module turns them into *series*: a [`Sampler`] (a background thread, or
//! the reindex daemon's tick as a fallback) snapshots the global registry
//! at a configurable interval and stores per-metric **deltas** in
//! fixed-capacity ring buffers. From those deltas the layer derives:
//!
//! * rolling **rates** over arbitrary windows (1s/10s/60s are the
//!   conventional ones: [`TimeSeries::rate`]);
//! * windowed **histogram percentiles** — p50/p95/p99 estimated from the
//!   log₂-bucket deltas accumulated inside the window
//!   ([`TimeSeries::percentile_us`]);
//! * gauge **min/max/last** over a window ([`TimeSeries::gauge_window`]).
//!
//! All aggregations are *name-level*: deltas are merged across every label
//! set of a metric name, which is what dashboards and SLOs want (`top`
//! shows the server's total rps, not one `{op="search"}` slice; ask for a
//! single slice via the JSON series, which keeps label sets separate).
//!
//! The first observation of a metric only records a baseline — otherwise a
//! counter that was alive long before sampling started would show up as
//! one giant spike. Each stored point also carries the time covered since
//! the previous sample (`dt`), so rates stay honest across missed ticks
//! and the daemon-tick fallback's irregular cadence.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::{bucket_upper_bound, MetricId, Snapshot, HISTOGRAM_BUCKETS};

/// Default sampling interval of the background [`Sampler`].
pub const DEFAULT_SAMPLE_INTERVAL_MS: u64 = 1000;
/// Samples retained per metric (at the default interval: ~2 minutes).
pub const DEFAULT_SERIES_CAPACITY: usize = 128;
/// The conventional dashboard windows, in seconds.
pub const WINDOWS_SECS: [u64; 3] = [1, 10, 60];

/// One counter tick: `delta` new increments covering `dt_us` of wall time.
#[derive(Debug, Clone, Copy)]
struct CounterPoint {
    at_us: u64,
    dt_us: u64,
    delta: u64,
}

/// One gauge observation.
#[derive(Debug, Clone, Copy)]
struct GaugePoint {
    at_us: u64,
    value: i64,
}

/// One histogram tick: per-bucket observation deltas (sparse — only
/// buckets that moved), plus count/sum deltas.
#[derive(Debug, Clone)]
struct HistogramPoint {
    at_us: u64,
    dt_us: u64,
    count_delta: u64,
    sum_delta: u64,
    buckets: Vec<(u16, u64)>,
}

enum Series {
    Counter {
        points: VecDeque<CounterPoint>,
        last_total: u64,
    },
    Gauge {
        points: VecDeque<GaugePoint>,
    },
    Histogram {
        points: VecDeque<HistogramPoint>,
        last_buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
        last_count: u64,
        last_sum: u64,
    },
}

/// Rolling min/max/last of a gauge over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeWindow {
    /// Smallest sampled value in the window.
    pub min: i64,
    /// Largest sampled value in the window.
    pub max: i64,
    /// Most recent sampled value.
    pub last: i64,
}

/// Per-metric ring buffers of sampled deltas, with windowed derivations.
pub struct TimeSeries {
    epoch: Instant,
    capacity: usize,
    interval_ms: AtomicU64,
    last_sample_us: AtomicU64,
    samples: AtomicU64,
    series: Mutex<BTreeMap<MetricId, Series>>,
}

impl TimeSeries {
    /// An empty store retaining `capacity` samples per metric.
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            epoch: Instant::now(),
            capacity: capacity.max(2),
            interval_ms: AtomicU64::new(DEFAULT_SAMPLE_INTERVAL_MS),
            last_sample_us: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Microseconds since this store was created (the series time axis).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Configured sampling interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms.load(Ordering::Relaxed)
    }

    /// Sets the sampling interval (used by [`sample_if_due`] and reported
    /// in the JSON series).
    pub fn set_interval_ms(&self, ms: u64) {
        self.interval_ms.store(ms.max(1), Ordering::Relaxed);
    }

    /// Completed sampling ticks.
    pub fn sample_count(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Ingests one registry snapshot: records the delta of every metric
    /// since the previous call. First sight of a metric records a baseline
    /// only (no point), so pre-existing totals don't appear as a spike.
    pub fn sample(&self, snap: &Snapshot) {
        let at_us = self.now_us();
        let mut series = self.series.lock();
        for c in &snap.counters {
            let total = c.value.max(0) as u64;
            let entry = series.entry(c.id.clone()).or_insert(Series::Counter {
                points: VecDeque::new(),
                last_total: total,
            });
            if let Series::Counter { points, last_total } = entry {
                if self.samples.load(Ordering::Relaxed) > 0 || !points.is_empty() {
                    let dt_us = at_us.saturating_sub(point_at(points.back(), 0));
                    push_capped(
                        points,
                        CounterPoint {
                            at_us,
                            dt_us: effective_dt(dt_us, at_us, points.is_empty(), self),
                            delta: total.saturating_sub(*last_total),
                        },
                        self.capacity,
                    );
                }
                *last_total = total;
            }
        }
        for g in &snap.gauges {
            let entry = series.entry(g.id.clone()).or_insert(Series::Gauge {
                points: VecDeque::new(),
            });
            if let Series::Gauge { points } = entry {
                push_capped(
                    points,
                    GaugePoint {
                        at_us,
                        value: g.value as i64,
                    },
                    self.capacity,
                );
            }
        }
        for h in &snap.histograms {
            let entry = series.entry(h.id.clone()).or_insert(Series::Histogram {
                points: VecDeque::new(),
                last_buckets: Box::new(h.buckets),
                last_count: h.count,
                last_sum: h.sum,
            });
            if let Series::Histogram {
                points,
                last_buckets,
                last_count,
                last_sum,
            } = entry
            {
                let fresh_metric = self.samples.load(Ordering::Relaxed) == 0 && points.is_empty();
                if !fresh_metric {
                    let mut deltas = Vec::new();
                    for (i, b) in h.buckets.iter().enumerate() {
                        let d = b.saturating_sub(last_buckets[i]);
                        if d > 0 {
                            deltas.push((i as u16, d));
                        }
                    }
                    let dt_us = at_us.saturating_sub(point_at_h(points.back(), 0));
                    push_capped(
                        points,
                        HistogramPoint {
                            at_us,
                            dt_us: effective_dt(dt_us, at_us, points.is_empty(), self),
                            count_delta: h.count.saturating_sub(*last_count),
                            sum_delta: h.sum.saturating_sub(*last_sum),
                            buckets: deltas,
                        },
                        self.capacity,
                    );
                }
                **last_buckets = h.buckets;
                *last_count = h.count;
                *last_sum = h.sum;
            }
        }
        drop(series);
        self.last_sample_us.store(at_us, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-second rate of a counter **name** (summed across label sets)
    /// over the trailing `window_secs`. `None` before two samples exist.
    pub fn rate(&self, name: &str, window_secs: u64) -> Option<f64> {
        let cutoff = self
            .now_us()
            .saturating_sub(window_secs.saturating_mul(1_000_000));
        let series = self.series.lock();
        let mut delta = 0u64;
        let mut dt_us = 0u64;
        let mut seen = false;
        for (id, s) in series.range(range_for(name)) {
            debug_assert_eq!(id.name, name);
            if let Series::Counter { points, .. } = s {
                let mut label_dt = 0u64;
                for p in points.iter().rev() {
                    if p.at_us < cutoff {
                        break;
                    }
                    seen = true;
                    delta += p.delta;
                    label_dt += p.dt_us;
                }
                // Label sets tick together; the covered span is the
                // longest one, not the sum over label sets.
                dt_us = dt_us.max(label_dt);
            }
        }
        if !seen || dt_us == 0 {
            return None;
        }
        Some(delta as f64 / (dt_us as f64 / 1e6))
    }

    /// Windowed delta sum of a counter name (numerator for ratios).
    pub fn window_delta(&self, name: &str, window_secs: u64) -> Option<u64> {
        let cutoff = self
            .now_us()
            .saturating_sub(window_secs.saturating_mul(1_000_000));
        let series = self.series.lock();
        let mut delta = 0u64;
        let mut seen = false;
        for (_, s) in series.range(range_for(name)) {
            if let Series::Counter { points, .. } = s {
                for p in points.iter().rev() {
                    if p.at_us < cutoff {
                        break;
                    }
                    seen = true;
                    delta += p.delta;
                }
            }
        }
        seen.then_some(delta)
    }

    /// `numerator / denominator` of two counter names over a window
    /// (e.g. error ratio). `None` until the denominator saw any delta.
    pub fn ratio(&self, numerator: &str, denominator: &str, window_secs: u64) -> Option<f64> {
        let num = self.window_delta(numerator, window_secs).unwrap_or(0);
        let den = self.window_delta(denominator, window_secs)?;
        if den == 0 {
            return None;
        }
        Some(num as f64 / den as f64)
    }

    /// Windowed percentile estimate (in the histogram's unit) of a
    /// histogram name, merged across label sets: log₂-bucket deltas in the
    /// window are accumulated and the percentile is linearly interpolated
    /// inside its bucket. `None` with no observations in the window.
    pub fn percentile_us(&self, name: &str, window_secs: u64, pct: f64) -> Option<u64> {
        let cutoff = self
            .now_us()
            .saturating_sub(window_secs.saturating_mul(1_000_000));
        let series = self.series.lock();
        let mut merged = [0u64; HISTOGRAM_BUCKETS];
        let mut total = 0u64;
        for (_, s) in series.range(range_for(name)) {
            if let Series::Histogram { points, .. } = s {
                for p in points.iter().rev() {
                    if p.at_us < cutoff {
                        break;
                    }
                    for &(i, d) in &p.buckets {
                        merged[i as usize] += d;
                        total += d;
                    }
                }
            }
        }
        drop(series);
        if total == 0 {
            return None;
        }
        let target = ((pct / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &count) in merged.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cumulative + count >= target {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = bucket_upper_bound(i).unwrap_or(lower.saturating_mul(2).max(1));
                let into = (target - cumulative) as f64 / count as f64;
                return Some(lower + ((upper - lower) as f64 * into) as u64);
            }
            cumulative += count;
        }
        None
    }

    /// Min/max/last of a gauge name over a window (across label sets).
    pub fn gauge_window(&self, name: &str, window_secs: u64) -> Option<GaugeWindow> {
        let cutoff = self
            .now_us()
            .saturating_sub(window_secs.saturating_mul(1_000_000));
        let series = self.series.lock();
        let mut out: Option<GaugeWindow> = None;
        for (_, s) in series.range(range_for(name)) {
            if let Series::Gauge { points } = s {
                for p in points.iter().rev() {
                    if p.at_us < cutoff {
                        break;
                    }
                    let w = out.get_or_insert(GaugeWindow {
                        min: p.value,
                        max: p.value,
                        // Iterating newest-first: the first point seen for
                        // this label set is its latest.
                        last: p.value,
                    });
                    w.min = w.min.min(p.value);
                    w.max = w.max.max(p.value);
                }
            }
        }
        out
    }

    /// JSON for `/timeseries?metric=<name>&window=<secs>`: every label set
    /// of `name` with its raw points in the window, plus windowed
    /// summaries (rates for counters, p50/p95/p99 for histograms,
    /// min/max/last for gauges). `None` when the name was never sampled.
    pub fn series_json(&self, name: &str, window_secs: u64) -> Option<String> {
        use crate::events::jstr;
        let cutoff = self
            .now_us()
            .saturating_sub(window_secs.saturating_mul(1_000_000));
        let series = self.series.lock();
        let mut rendered: Vec<String> = Vec::new();
        let mut found = false;
        for (id, s) in series.range(range_for(name)) {
            found = true;
            let labels: Vec<String> = id
                .labels
                .iter()
                .map(|(k, v)| format!("{}:{}", jstr(k), jstr(v)))
                .collect();
            let labels = format!("{{{}}}", labels.join(","));
            match s {
                Series::Counter { points, .. } => {
                    let pts: Vec<String> = points
                        .iter()
                        .filter(|p| p.at_us >= cutoff)
                        .map(|p| {
                            let rate = if p.dt_us > 0 {
                                p.delta as f64 / (p.dt_us as f64 / 1e6)
                            } else {
                                0.0
                            };
                            format!(
                                "{{\"t_us\":{},\"delta\":{},\"rate\":{rate:.3}}}",
                                p.at_us, p.delta
                            )
                        })
                        .collect();
                    rendered.push(format!(
                        "{{\"labels\":{labels},\"kind\":\"counter\",\"points\":[{}]}}",
                        pts.join(",")
                    ));
                }
                Series::Gauge { points } => {
                    let pts: Vec<String> = points
                        .iter()
                        .filter(|p| p.at_us >= cutoff)
                        .map(|p| format!("{{\"t_us\":{},\"value\":{}}}", p.at_us, p.value))
                        .collect();
                    rendered.push(format!(
                        "{{\"labels\":{labels},\"kind\":\"gauge\",\"points\":[{}]}}",
                        pts.join(",")
                    ));
                }
                Series::Histogram { points, .. } => {
                    let pts: Vec<String> = points
                        .iter()
                        .filter(|p| p.at_us >= cutoff)
                        .map(|p| {
                            let rate = if p.dt_us > 0 {
                                p.count_delta as f64 / (p.dt_us as f64 / 1e6)
                            } else {
                                0.0
                            };
                            format!(
                                "{{\"t_us\":{},\"count\":{},\"sum\":{},\"rate\":{rate:.3}}}",
                                p.at_us, p.count_delta, p.sum_delta
                            )
                        })
                        .collect();
                    rendered.push(format!(
                        "{{\"labels\":{labels},\"kind\":\"histogram\",\"points\":[{}]}}",
                        pts.join(",")
                    ));
                }
            }
        }
        drop(series);
        if !found {
            return None;
        }
        let mut summary: Vec<String> = Vec::new();
        for w in WINDOWS_SECS {
            if let Some(r) = self.rate(name, w) {
                summary.push(format!("\"rate_{w}s\":{r:.3}"));
            }
        }
        for pct in [50.0, 95.0, 99.0] {
            if let Some(v) = self.percentile_us(name, window_secs, pct) {
                summary.push(format!("\"p{:.0}\":{v}", pct));
            }
        }
        if let Some(g) = self.gauge_window(name, window_secs) {
            summary.push(format!(
                "\"min\":{},\"max\":{},\"last\":{}",
                g.min, g.max, g.last
            ));
        }
        let summary = if summary.is_empty() {
            String::new()
        } else {
            format!(",{}", summary.join(","))
        };
        Some(format!(
            "{{\"metric\":{},\"window_secs\":{window_secs},\"now_us\":{},\
             \"interval_ms\":{},\"samples\":{}{summary},\"series\":[{}]}}",
            crate::events::jstr(name),
            self.now_us(),
            self.interval_ms(),
            self.sample_count(),
            rendered.join(",")
        ))
    }
}

/// Key range covering every label set of one metric name in the sorted
/// series map (label sets of a name are contiguous under `MetricId` order).
fn range_for(name: &str) -> std::ops::RangeInclusive<MetricId> {
    let lo = MetricId {
        name: name.to_string(),
        labels: Vec::new(),
    };
    let hi = MetricId {
        name: name.to_string(),
        labels: vec![(String::from("\u{10FFFF}"), String::new())],
    };
    lo..=hi
}

fn point_at(p: Option<&CounterPoint>, default: u64) -> u64 {
    p.map(|p| p.at_us).unwrap_or(default)
}

fn point_at_h(p: Option<&HistogramPoint>, default: u64) -> u64 {
    p.map(|p| p.at_us).unwrap_or(default)
}

/// The covered span of a point: time since that metric's previous point,
/// or — for a metric first seen after sampling began (its baseline tick) —
/// one sampling interval, which is the only honest guess available.
fn effective_dt(dt_us: u64, _at_us: u64, first_point: bool, ts: &TimeSeries) -> u64 {
    if first_point || dt_us == 0 {
        ts.interval_ms().saturating_mul(1000).max(1)
    } else {
        dt_us
    }
}

fn push_capped<T>(points: &mut VecDeque<T>, point: T, capacity: usize) {
    if points.len() >= capacity {
        points.pop_front();
    }
    points.push_back(point);
}

// ---------------------------------------------------------------------
// The global store and its sampler.
// ---------------------------------------------------------------------

static GLOBAL_TS: OnceLock<TimeSeries> = OnceLock::new();
static SAMPLER_RUNNING: AtomicBool = AtomicBool::new(false);
static SAMPLE_GATE: Mutex<()> = Mutex::new(());

/// The process-wide time-series store (fed from the global registry).
pub fn global() -> &'static TimeSeries {
    GLOBAL_TS.get_or_init(|| TimeSeries::new(DEFAULT_SERIES_CAPACITY))
}

/// Takes one sample of the global registry right now and re-evaluates the
/// SLO engine against the updated series.
pub fn sample_now() {
    // Serialize samplers (thread, daemon fallback, scrape pull): two
    // concurrent delta computations would double-count.
    let _gate = SAMPLE_GATE.lock();
    let t = Instant::now();
    let ts = global();
    ts.sample(&crate::snapshot());
    crate::slo::engine().evaluate(ts);
    crate::counter("hac_ts_samples_total", &[]).inc();
    crate::histogram("hac_ts_sample_duration_us", &[]).record(t.elapsed().as_micros() as u64);
}

/// Samples only when at least one interval elapsed since the last sample
/// **and** no background sampler is running — the daemon-tick / scrape
/// fallback. Cheap to call unconditionally.
pub fn sample_if_due() {
    let ts = global();
    if sampler_running() {
        return;
    }
    let now = ts.now_us();
    let last = ts.last_sample_us.load(Ordering::Relaxed);
    if ts.sample_count() > 0 && now.saturating_sub(last) < ts.interval_ms() * 1000 {
        return;
    }
    sample_now();
}

/// Whether the background sampler thread is running.
pub fn sampler_running() -> bool {
    SAMPLER_RUNNING.load(Ordering::Relaxed)
}

/// Starts the background sampler at `interval` (first caller wins; later
/// calls are no-ops returning `false`). The thread lives for the process
/// — observability has no teardown, and an idle sampler costs one
/// registry snapshot per interval.
pub fn start_sampler(interval: Duration) -> bool {
    if SAMPLER_RUNNING
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return false;
    }
    let interval = interval.max(Duration::from_millis(1));
    global().set_interval_ms(interval.as_millis() as u64);
    crate::gauge("hac_ts_sampler_interval_ms", &[]).set(interval.as_millis() as i64);
    let spawned = std::thread::Builder::new()
        .name("hac-obs-sampler".to_string())
        .spawn(move || loop {
            sample_now();
            std::thread::sleep(interval);
        });
    if spawned.is_err() {
        SAMPLER_RUNNING.store(false, Ordering::Release);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn first_sight_records_baseline_not_spike() {
        let reg = Registry::new();
        reg.counter("t_ts_total", &[]).add(1_000_000);
        let ts = TimeSeries::new(16);
        ts.sample(&reg.snapshot());
        // One sample: only a baseline, no rate yet.
        assert_eq!(ts.rate("t_ts_total", 60), None);
        reg.counter("t_ts_total", &[]).add(10);
        ts.sample(&reg.snapshot());
        let r = ts.rate("t_ts_total", 60).expect("two samples give a rate");
        assert!(r > 0.0, "rate from deltas, not totals: {r}");
        // The million pre-existing increments never entered the series.
        assert_eq!(ts.window_delta("t_ts_total", 3600), Some(10));
    }

    #[test]
    fn rate_merges_label_sets_and_respects_window() {
        let reg = Registry::new();
        let a = reg.counter("t_rl_total", &[("op", "a")]);
        let b = reg.counter("t_rl_total", &[("op", "b")]);
        let ts = TimeSeries::new(16);
        ts.sample(&reg.snapshot());
        a.add(30);
        b.add(70);
        ts.sample(&reg.snapshot());
        assert_eq!(ts.window_delta("t_rl_total", 3600), Some(100));
        let r = ts.rate("t_rl_total", 3600).unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn percentile_from_windowed_bucket_deltas() {
        let reg = Registry::new();
        let h = reg.histogram("t_tp_us", &[]);
        let ts = TimeSeries::new(16);
        ts.sample(&reg.snapshot());
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        ts.sample(&reg.snapshot());
        let p50 = ts.percentile_us("t_tp_us", 3600, 50.0).unwrap();
        let p99 = ts.percentile_us("t_tp_us", 3600, 99.0).unwrap();
        assert!(p50 <= 128, "p50 in the fast bucket, got {p50}");
        assert!(p99 > 65_536, "p99 in the slow bucket, got {p99}");
        // Percentiles are *windowed*: pre-window observations are invisible.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(ts.percentile_us("t_tp_us", 0, 99.0), None);
        assert_eq!(ts.percentile_us("t_absent_us", 3600, 99.0), None);
    }

    #[test]
    fn gauge_window_tracks_min_max_last() {
        let reg = Registry::new();
        let g = reg.gauge("t_tg", &[]);
        let ts = TimeSeries::new(16);
        for v in [5i64, -3, 12, 7] {
            g.set(v);
            ts.sample(&reg.snapshot());
        }
        let w = ts.gauge_window("t_tg", 3600).unwrap();
        assert_eq!((w.min, w.max, w.last), (-3, 12, 7));
    }

    #[test]
    fn ring_capacity_bounds_memory() {
        let reg = Registry::new();
        let c = reg.counter("t_cap_total", &[]);
        let ts = TimeSeries::new(4);
        for _ in 0..20 {
            c.inc();
            ts.sample(&reg.snapshot());
        }
        let series = ts.series.lock();
        match series.values().next().unwrap() {
            Series::Counter { points, .. } => assert_eq!(points.len(), 4),
            _ => panic!("counter series expected"),
        }
    }

    #[test]
    fn series_json_shape() {
        let reg = Registry::new();
        reg.counter("t_js_total", &[("ns", "x")]).inc();
        reg.histogram("t_js_us", &[]).record(7);
        let ts = TimeSeries::new(16);
        ts.sample(&reg.snapshot());
        reg.counter("t_js_total", &[("ns", "x")]).add(4);
        reg.histogram("t_js_us", &[]).record(9);
        ts.sample(&reg.snapshot());
        let json = ts.series_json("t_js_total", 60).unwrap();
        assert!(json.contains("\"metric\":\"t_js_total\""), "{json}");
        assert!(json.contains("\"kind\":\"counter\""), "{json}");
        assert!(json.contains("\"delta\":4"), "{json}");
        assert!(json.contains("\"rate_60s\":"), "{json}");
        let json = ts.series_json("t_js_us", 60).unwrap();
        assert!(json.contains("\"kind\":\"histogram\""), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        assert_eq!(ts.series_json("t_nope", 60), None);
    }
}
