//! Causal request tracing: trace ids, the thread-scoped current-span
//! context, and span-tree assembly.
//!
//! Every *root* operation (a `hacsh` command, a reindex pass, a
//! server-handled request) mints a fresh trace id when its span opens with
//! no context on the thread; child spans opened while a context is current
//! inherit the trace id and record the enclosing span as their parent.
//! The context is thread-scoped (a `thread_local`), so a worker thread
//! continuing a trace that arrived over the wire calls [`continue_trace`]
//! with the propagated [`TraceContext`] before opening its spans.
//!
//! Tracing is a process-wide toggle ([`set_tracing_enabled`]); when off,
//! spans still feed the duration histograms but mint no ids, push no
//! events, and touch no thread-local state — the shape the
//! `hac-bench trace` binary measures.
//!
//! Assembly is ring-based: [`assemble`] walks a set of recorded
//! [`Event`]s and rebuilds the span tree for one trace id from the
//! `parent_span_id` links. Because rings are bounded, a tree for an old
//! trace may be partial; orphaned spans (parent already evicted) surface
//! as extra roots rather than disappearing.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::events::Event;

/// The ambient identity a span inherits and propagates: which trace the
/// current operation belongs to and which span is its immediate parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span of one operation, across threads and
    /// (via the wire) processes.
    pub trace_id: u64,
    /// The currently open span, i.e. the parent of any span opened next.
    pub span_id: u64,
}

impl TraceContext {
    /// Renders the trace id the way every user surface shows it.
    pub fn trace_hex(&self) -> String {
        format_id(self.trace_id)
    }
}

/// Renders an id as fixed-width lowercase hex (the `trace <id>` /
/// `/trace/<id>` form).
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses an id previously rendered by [`format_id`] (flexible about
/// leading zeros and case).
pub fn parse_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

static TRACING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether spans mint ids and record events (on by default).
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Turns span/event recording on or off process-wide. Metrics (counters,
/// gauges, duration histograms) are unaffected.
pub fn set_tracing_enabled(on: bool) {
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Mints a process-unique, well-mixed, non-zero 64-bit id.
///
/// A splitmix64 step over an atomic counter seeded from the wall clock:
/// no `rand` dependency, collision-safe within a process, and distinct
/// across processes with overwhelming probability (the seed carries
/// nanosecond wall-clock entropy).
pub fn next_id() -> u64 {
    let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let seq = if seq == 0 {
        // First caller: fold wall-clock entropy into the stream so two
        // processes started back to back do not share id sequences.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        // CAS the seed in once; later callers fetch_add past it.
        let _ = NEXT_ID.compare_exchange(1, seed, Ordering::Relaxed, Ordering::Relaxed);
        seed.wrapping_sub(1)
    } else {
        seq
    };
    let mut z = seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    z.max(1)
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The thread's current trace context, if an operation is in progress.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

pub(crate) fn set_current(ctx: Option<TraceContext>) {
    CURRENT.with(|c| c.set(ctx));
}

/// RAII guard restoring the previous thread context on drop (returned by
/// [`continue_trace`]).
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        set_current(self.prev.take());
    }
}

/// Installs `ctx` as the thread's current context — the receiving half of
/// cross-thread / cross-process propagation. Spans opened while the guard
/// lives join `ctx`'s trace as children of `ctx.span_id`.
pub fn continue_trace(ctx: TraceContext) -> ContextGuard {
    let prev = current();
    set_current(Some(ctx));
    ContextGuard { prev }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span-end (or instant) event.
    pub event: Event,
    /// Child spans, oldest first.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.event.render());
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    fn to_json_value(&self) -> String {
        let children: Vec<String> = self.children.iter().map(SpanNode::to_json_value).collect();
        format!(
            "{{\"span\":{},\"children\":[{}]}}",
            self.event.to_json(),
            children.join(",")
        )
    }
}

/// The spans recorded for one trace id, assembled into a forest.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id this tree was assembled for.
    pub trace_id: u64,
    /// Root spans (normally one; more when parents were evicted from the
    /// ring before assembly, or the operation is still in flight).
    pub roots: Vec<SpanNode>,
}

impl TraceTree {
    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        fn count(n: &SpanNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Indented text rendering (the `hacsh trace <id>` view).
    pub fn render(&self) -> String {
        let mut out = format!("trace {}\n", format_id(self.trace_id));
        for root in &self.roots {
            root.render_into(&mut out, 1);
        }
        out
    }

    /// JSON rendering (the `/trace/<id>` view).
    pub fn to_json(&self) -> String {
        let roots: Vec<String> = self.roots.iter().map(SpanNode::to_json_value).collect();
        format!(
            "{{\"trace_id\":\"{}\",\"span_count\":{},\"roots\":[{}]}}",
            format_id(self.trace_id),
            self.span_count(),
            roots.join(",")
        )
    }
}

/// Assembles the span tree for `trace_id` from recorded events (pass the
/// concatenation of the recent-events and slow-op rings; duplicates are
/// dropped by span id). Spans whose parent is unknown — evicted from the
/// ring, still open, or on another process — become roots.
pub fn assemble(events: &[Event], trace_id: u64) -> TraceTree {
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut spans: Vec<Event> = Vec::new();
    for e in events {
        if e.trace_id != Some(trace_id) {
            continue;
        }
        if let Some(id) = e.span_id {
            if !seen.insert(id) {
                continue;
            }
        }
        spans.push(e.clone());
    }
    spans.sort_by_key(|e| e.at_micros);

    // Two passes: index parented spans by parent id, then fold children
    // into their parents innermost-first so nested trees build bottom-up.
    let ids: std::collections::HashSet<u64> = spans.iter().filter_map(|e| e.span_id).collect();
    let mut nodes: Vec<SpanNode> = spans
        .into_iter()
        .map(|event| SpanNode {
            event,
            children: Vec::new(),
        })
        .collect();
    // Repeatedly attach leaves to their parents. O(n²) worst case over a
    // bounded ring (≤ a few hundred events) — simplicity wins.
    loop {
        let mut attached = false;
        let mut i = 0;
        while i < nodes.len() {
            let parent = nodes[i].event.parent_span_id;
            // Only move nodes whose own children are settled: a node with
            // pending children at this level waits until they attach first,
            // so subtrees build bottom-up. Instant events (no span id)
            // cannot have children and attach immediately.
            let is_attachable = parent.is_some_and(|p| ids.contains(&p))
                && match nodes[i].event.span_id {
                    None => true,
                    Some(sid) => !nodes.iter().any(|n| n.event.parent_span_id == Some(sid)),
                };
            if is_attachable {
                let node = nodes.remove(i);
                let parent_id = node.event.parent_span_id.expect("checked above");
                if let Some(p) = nodes
                    .iter_mut()
                    .find(|n| n.event.span_id == Some(parent_id))
                {
                    p.children.push(node);
                    p.children.sort_by_key(|c| c.event.at_micros);
                    attached = true;
                } else {
                    // Parent vanished between passes (duplicate span id
                    // filtered) — keep as root.
                    nodes.push(node);
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        if !attached {
            break;
        }
    }
    TraceTree {
        trace_id,
        roots: nodes,
    }
}

/// Span-forest wire magic (`TraceSpans` payloads).
pub const SPANS_MAGIC: [u8; 4] = *b"HACT";
/// Current span-forest format version.
pub const SPANS_VERSION: u8 = 1;

/// Serializes recorded events into the versioned binary layout the
/// wire-v5 `TraceSpans` op ships between nodes. The encoding is
/// hand-rolled (magic + version up front, strict arity) for the same
/// reason the shard map's is: a peer at a different build must fail
/// loudly, not decode positionally into garbage.
pub fn encode_spans(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + events.len() * 96);
    out.extend_from_slice(&SPANS_MAGIC);
    out.push(SPANS_VERSION);
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    let put_str = |out: &mut Vec<u8>, s: &str| {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    let put_opt = |out: &mut Vec<u8>, v: Option<u64>| match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        None => out.push(0),
    };
    for e in events {
        put_str(&mut out, &e.name);
        out.extend_from_slice(&(e.fields.len() as u32).to_le_bytes());
        for (k, v) in &e.fields {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out.extend_from_slice(&e.at_micros.to_le_bytes());
        put_opt(&mut out, e.duration_micros);
        put_opt(&mut out, e.trace_id);
        put_opt(&mut out, e.span_id);
        put_opt(&mut out, e.parent_span_id);
    }
    out
}

/// Decodes a span forest encoded by [`encode_spans`], validating magic,
/// version, arity, and the absence of trailing bytes.
///
/// # Errors
///
/// A human-readable description of the first malformation found.
pub fn decode_spans(bytes: &[u8]) -> Result<Vec<Event>, String> {
    let mut cur = bytes;
    let mut take = |n: usize, what: &str| -> Result<&[u8], String> {
        if cur.len() < n {
            return Err(format!("span forest truncated at {what}"));
        }
        let (head, tail) = cur.split_at(n);
        cur = tail;
        Ok(head)
    };
    if take(4, "magic")? != SPANS_MAGIC {
        return Err("bad span forest magic".to_string());
    }
    let version = take(1, "version")?[0];
    if version != SPANS_VERSION {
        return Err(format!("unsupported span forest version {version}"));
    }
    let u32_of =
        |b: &[u8]| -> usize { u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize };
    let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
    macro_rules! string {
        ($what:expr) => {{
            let len = u32_of(take(4, $what)?);
            let raw = take(len, $what)?;
            String::from_utf8(raw.to_vec()).map_err(|_| format!("{} not utf-8", $what))?
        }};
    }
    macro_rules! opt_u64 {
        ($what:expr) => {{
            match take(1, $what)?[0] {
                0 => None,
                1 => Some(u64_of(take(8, $what)?)),
                _ => return Err(format!("bad option flag at {}", $what)),
            }
        }};
    }
    let count = u32_of(take(4, "event count")?);
    let mut events = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = string!("event name");
        let field_count = u32_of(take(4, "field count")?);
        let mut fields = Vec::with_capacity(field_count.min(64));
        for _ in 0..field_count {
            let k = string!("field key");
            let v = string!("field value");
            fields.push((k, v));
        }
        events.push(Event {
            name,
            fields,
            at_micros: u64_of(take(8, "at_micros")?),
            duration_micros: opt_u64!("duration"),
            trace_id: opt_u64!("trace id"),
            span_id: opt_u64!("span id"),
            parent_span_id: opt_u64!("parent span id"),
        });
    }
    if !cur.is_empty() {
        return Err("trailing bytes after span forest".to_string());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, at: u64, trace: u64, span: Option<u64>, parent: Option<u64>) -> Event {
        Event {
            name: name.to_string(),
            fields: vec![],
            at_micros: at,
            duration_micros: Some(1),
            trace_id: Some(trace),
            span_id: span,
            parent_span_id: parent,
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "id collision");
        }
    }

    #[test]
    fn id_format_roundtrips() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_id(&format_id(id)), Some(id));
        }
        assert_eq!(parse_id("DEADBEEF"), Some(0xdead_beef));
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("zzüz"), None);
        assert_eq!(parse_id("11112222333344445"), None); // 17 digits
    }

    #[test]
    fn continue_trace_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = TraceContext {
            trace_id: 7,
            span_id: 1,
        };
        let inner = TraceContext {
            trace_id: 7,
            span_id: 2,
        };
        {
            let _g1 = continue_trace(outer);
            assert_eq!(current(), Some(outer));
            {
                let _g2 = continue_trace(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn assemble_builds_nested_tree_and_keeps_orphans_as_roots() {
        let events = vec![
            ev("leaf_a", 30, 9, Some(3), Some(2)),
            ev("mid", 40, 9, Some(2), Some(1)),
            ev("other_trace", 10, 8, Some(77), None),
            ev("root", 50, 9, Some(1), None),
            ev("orphan", 20, 9, Some(5), Some(404)), // parent evicted
        ];
        let tree = assemble(&events, 9);
        assert_eq!(tree.span_count(), 4);
        assert_eq!(tree.roots.len(), 2, "orphan stays a root");
        let root = tree
            .roots
            .iter()
            .find(|n| n.event.name == "root")
            .expect("root present");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].event.name, "mid");
        assert_eq!(root.children[0].children[0].event.name, "leaf_a");
        let text = tree.render();
        assert!(text.contains("trace 0000000000000009"), "{text}");
        assert!(text.contains("      leaf_a"), "nested indent: {text}");
        let json = tree.to_json();
        assert!(json.contains("\"span_count\":4"), "{json}");
        assert!(json.contains("\"children\":[{\"span\""), "{json}");
    }

    #[test]
    fn span_forest_codec_roundtrips() {
        let mut e = ev("net_server_request", 42, 9, Some(3), Some(2));
        e.fields = vec![
            ("op".to_string(), "search".to_string()),
            ("node".to_string(), "127.0.0.1:7777".to_string()),
        ];
        let events = vec![e, ev("fed_shard_query", 50, 9, None, None)];
        let bytes = encode_spans(&events);
        let back = decode_spans(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "net_server_request");
        assert_eq!(back[0].fields[1].1, "127.0.0.1:7777");
        assert_eq!(back[0].span_id, Some(3));
        assert_eq!(back[1].duration_micros, Some(1));
        assert!(decode_spans(&encode_spans(&[])).unwrap().is_empty());
    }

    #[test]
    fn span_forest_rejects_truncation_magic_version_and_trailing() {
        let full = encode_spans(&[ev("a", 1, 2, Some(3), None)]);
        for cut in 0..full.len() {
            assert!(
                decode_spans(&full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut b = full.clone();
        b[0] = b'X';
        assert!(decode_spans(&b).unwrap_err().contains("magic"));
        let mut b = full.clone();
        b[4] = 99;
        assert!(decode_spans(&b).unwrap_err().contains("version 99"));
        let mut b = full;
        b.push(0);
        assert!(decode_spans(&b).unwrap_err().contains("trailing"));
    }

    #[test]
    fn assemble_dedups_span_ids_across_rings() {
        // The same span-end event can sit in both the recent ring and the
        // slow-op log; assembly must not duplicate it.
        let e = ev("slow", 10, 4, Some(11), None);
        let tree = assemble(&[e.clone(), e], 4);
        assert_eq!(tree.span_count(), 1);
    }
}
