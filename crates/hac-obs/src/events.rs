//! Structured events and spans.
//!
//! An [`Event`] is a named occurrence with string fields, an optional
//! duration, and (when tracing is enabled) the trace/span identity that
//! places it in a causal tree. Events land in a bounded in-memory ring
//! (oldest dropped first, drops counted). A [`SpanGuard`] is an RAII
//! timer: created at the start of an operation, it records a
//! `hac_span_duration_us{span="…"}` histogram sample and pushes an event
//! when dropped; operations slower than the configured threshold are
//! additionally copied to the slow-op log.
//!
//! Entering a span installs it as the thread's current trace context (see
//! [`crate::trace`]): spans opened underneath become its children, and the
//! previous context is restored when the guard drops.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::Counter;
use crate::trace::{self, TraceContext};
use crate::Obs;

/// One recorded occurrence.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event (or span) name.
    pub name: String,
    /// Free-form `(key, value)` fields.
    pub fields: Vec<(String, String)>,
    /// Microseconds since the owning [`Obs`] was created.
    pub at_micros: u64,
    /// Duration for span-end events; `None` for instant events.
    pub duration_micros: Option<u64>,
    /// Trace this event belongs to, when recorded with tracing enabled.
    pub trace_id: Option<u64>,
    /// This span's id (`None` for instant events).
    pub span_id: Option<u64>,
    /// The enclosing span at record time, if any.
    pub parent_span_id: Option<u64>,
}

pub(crate) fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Event {
    /// Renders `name{k=v,…} [duration] [trace=…]` for human output.
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.fields.is_empty() {
            let inner: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("{{{}}}", inner.join(",")));
        }
        if let Some(d) = self.duration_micros {
            out.push_str(&format!(" {d}us"));
        }
        if let Some(t) = self.trace_id {
            out.push_str(&format!(" trace={}", trace::format_id(t)));
        }
        out
    }

    /// Renders the event as a JSON object (ids as 16-char hex strings;
    /// absent fields omitted).
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = vec![
            format!("\"name\":{}", jstr(&self.name)),
            format!("\"at_us\":{}", self.at_micros),
        ];
        if let Some(d) = self.duration_micros {
            parts.push(format!("\"duration_us\":{d}"));
        }
        if let Some(t) = self.trace_id {
            parts.push(format!("\"trace_id\":\"{}\"", trace::format_id(t)));
        }
        if let Some(s) = self.span_id {
            parts.push(format!("\"span_id\":\"{}\"", trace::format_id(s)));
        }
        if let Some(p) = self.parent_span_id {
            parts.push(format!("\"parent_span_id\":\"{}\"", trace::format_id(p)));
        }
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", jstr(k), jstr(v)))
            .collect();
        parts.push(format!("\"fields\":{{{}}}", fields.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

/// Bounded ring of recent events; pushing past capacity drops the oldest
/// (and counts the drop).
pub struct EventRing {
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
    drop_counter: Option<Counter>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            drop_counter: None,
        }
    }

    /// Like [`new`](Self::new), but overflow evictions also bump `counter`
    /// (the `hac_events_dropped_total{ring=…}` series on [`Obs`] rings).
    pub fn with_drop_counter(capacity: usize, counter: Counter) -> Self {
        let mut ring = EventRing::new(capacity);
        ring.drop_counter = Some(counter);
        ring
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.drop_counter {
                c.inc();
            }
        }
        events.push_back(event);
    }

    /// Copies the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted due to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Trace identity captured when a span opens with tracing enabled.
struct SpanTrace {
    ctx: TraceContext,
    parent_span_id: Option<u64>,
    prev: Option<TraceContext>,
}

/// RAII span: times an operation and records it on drop.
///
/// Dropping the guard records the duration into
/// `hac_span_duration_us{span="<name>"}`, pushes a span-end event into the
/// recent-events ring, and — if the duration meets the slow-op threshold —
/// copies the event to the slow-op log and bumps `hac_slow_ops_total`.
///
/// While the guard lives, its trace context is the thread's current one
/// ([`trace::current`]); the previous context is restored on drop.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'static str,
    fields: Vec<(String, String)>,
    start: Instant,
    tracing: Option<SpanTrace>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(obs: &'a Obs, name: &'static str, fields: Vec<(String, String)>) -> Self {
        let tracing = if trace::tracing_enabled() {
            let prev = trace::current();
            let ctx = TraceContext {
                trace_id: prev.map(|p| p.trace_id).unwrap_or_else(trace::next_id),
                span_id: trace::next_id(),
            };
            trace::set_current(Some(ctx));
            Some(SpanTrace {
                ctx,
                parent_span_id: prev.map(|p| p.span_id),
                prev,
            })
        } else {
            None
        };
        SpanGuard {
            obs,
            name,
            fields,
            start: Instant::now(),
            tracing,
        }
    }

    /// Adds a field after entry (for values only known mid-span).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// This span's trace context, when tracing was enabled at entry.
    pub fn context(&self) -> Option<TraceContext> {
        self.tracing.as_ref().map(|t| t.ctx)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let duration = self.start.elapsed().as_micros() as u64;
        // Record while this span is still the current context so the
        // histogram keeps its trace id as the bucket exemplar.
        self.obs
            .registry()
            .histogram("hac_span_duration_us", &[("span", self.name)])
            .record(duration);
        let event = Event {
            name: self.name.to_string(),
            fields: std::mem::take(&mut self.fields),
            at_micros: self.obs.uptime_micros(),
            duration_micros: Some(duration),
            trace_id: self.tracing.as_ref().map(|t| t.ctx.trace_id),
            span_id: self.tracing.as_ref().map(|t| t.ctx.span_id),
            parent_span_id: self.tracing.as_ref().and_then(|t| t.parent_span_id),
        };
        if duration >= self.obs.slow_op_threshold_micros() {
            self.obs
                .registry()
                .counter("hac_slow_ops_total", &[("span", self.name)])
                .inc();
            self.obs.slow_ops_ring().push(event.clone());
        }
        self.obs.events_ring().push(event);
        if let Some(t) = self.tracing.take() {
            trace::set_current(t.prev);
        }
    }
}

/// Opens a span on the global [`Obs`](crate::Obs); the returned
/// [`SpanGuard`] records duration (and slow-op status) when dropped.
///
/// ```
/// let _span = hac_obs::span!("reindex_pass", path = "/sem/query");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::global().span(
            $name,
            vec![$((stringify!($key).to_string(), format!("{}", $value))),+],
        )
    };
}
