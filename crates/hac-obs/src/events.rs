//! Structured events and spans.
//!
//! An [`Event`] is a named occurrence with string fields and an optional
//! duration. Events land in a bounded in-memory ring (oldest dropped
//! first). A [`SpanGuard`] is an RAII timer: created at the start of an
//! operation, it records a `hac_span_duration_us{span="…"}` histogram
//! sample and pushes an event when dropped; operations slower than the
//! configured threshold are additionally copied to the slow-op log.

use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::Mutex;

use crate::Obs;

/// One recorded occurrence.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event (or span) name.
    pub name: String,
    /// Free-form `(key, value)` fields.
    pub fields: Vec<(String, String)>,
    /// Microseconds since the owning [`Obs`] was created.
    pub at_micros: u64,
    /// Duration for span-end events; `None` for instant events.
    pub duration_micros: Option<u64>,
}

impl Event {
    /// Renders `name{k=v,…} [duration]` for human output.
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.fields.is_empty() {
            let inner: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("{{{}}}", inner.join(",")));
        }
        if let Some(d) = self.duration_micros {
            out.push_str(&format!(" {d}us"));
        }
        out
    }
}

/// Bounded ring of recent events; pushing past capacity drops the oldest.
pub struct EventRing {
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// Copies the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII span: times an operation and records it on drop.
///
/// Dropping the guard records the duration into
/// `hac_span_duration_us{span="<name>"}`, pushes a span-end event into the
/// recent-events ring, and — if the duration meets the slow-op threshold —
/// copies the event to the slow-op log and bumps `hac_slow_ops_total`.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'static str,
    fields: Vec<(String, String)>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(obs: &'a Obs, name: &'static str, fields: Vec<(String, String)>) -> Self {
        SpanGuard {
            obs,
            name,
            fields,
            start: Instant::now(),
        }
    }

    /// Adds a field after entry (for values only known mid-span).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let duration = self.start.elapsed().as_micros() as u64;
        self.obs
            .registry()
            .histogram("hac_span_duration_us", &[("span", self.name)])
            .record(duration);
        let event = Event {
            name: self.name.to_string(),
            fields: std::mem::take(&mut self.fields),
            at_micros: self.obs.uptime_micros(),
            duration_micros: Some(duration),
        };
        if duration >= self.obs.slow_op_threshold_micros() {
            self.obs
                .registry()
                .counter("hac_slow_ops_total", &[("span", self.name)])
                .inc();
            self.obs.slow_ops_ring().push(event.clone());
        }
        self.obs.events_ring().push(event);
    }
}

/// Opens a span on the global [`Obs`](crate::Obs); the returned
/// [`SpanGuard`] records duration (and slow-op status) when dropped.
///
/// ```
/// let _span = hac_obs::span!("reindex_pass", path = "/sem/query");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::global().span(
            $name,
            vec![$((stringify!($key).to_string(), format!("{}", $value))),+],
        )
    };
}
