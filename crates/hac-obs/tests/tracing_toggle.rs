//! The process-wide tracing toggle: spans still feed metrics when tracing
//! is off, but mint no ids and install no context. Lives in its own
//! integration binary (own process) so flipping the global toggle cannot
//! race the crate's unit tests.

use hac_obs::{current_trace, set_tracing_enabled, tracing_enabled, Obs};

#[test]
fn disabling_tracing_keeps_metrics_but_drops_ids() {
    assert!(tracing_enabled(), "tracing defaults to on");
    set_tracing_enabled(false);
    let obs = Obs::new();
    {
        let span = obs.span("t_untraced", vec![]);
        assert_eq!(span.context(), None);
        assert_eq!(current_trace(), None, "no context installed");
    }
    let events = obs.events_ring().snapshot();
    assert_eq!(events.len(), 1, "event still recorded");
    assert_eq!(events[0].trace_id, None);
    assert_eq!(events[0].span_id, None);
    let snap = obs.registry().snapshot();
    assert_eq!(
        snap.histogram_count("hac_span_duration_us", &[("span", "t_untraced")]),
        Some(1),
        "duration histogram unaffected by the toggle"
    );
    let h = snap
        .histograms
        .iter()
        .find(|h| h.id.name == "hac_span_duration_us")
        .unwrap();
    assert!(h.exemplars.iter().all(|&e| e == 0), "no exemplars minted");

    set_tracing_enabled(true);
    {
        let span = obs.span("t_traced", vec![]);
        assert!(span.context().is_some(), "re-enabling restores tracing");
    }
}
