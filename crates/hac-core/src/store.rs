//! Durable, segmented index persistence over a content-addressed store.
//!
//! This module connects three layers:
//!
//! * [`hac_store`] — bytes: objects, refs, WAL, crash semantics;
//! * [`hac_index::segment`] — meaning: delta segments and their replay;
//! * the [`IndexStore`] here — protocol: how one `ssync` pass becomes a
//!   crash-atomic commit, how a cold start recovers the index, and how
//!   background maintenance keeps the segment run short.
//!
//! Durable state is always `base snapshot + ordered segments (+ WAL
//! tail)`. The commit protocol (each step durable before the next):
//!
//! 1. append the encoded segment to the WAL;
//! 2. `put` the segment object;
//! 3. `put` a new manifest listing it;
//! 4. swap the `current` ref — **the commit point**;
//! 5. reset the WAL.
//!
//! A crash before 4 leaves `current` on the old manifest and the sealed
//! segment replayable from the WAL (recovery re-puts it and finishes the
//! swap — completing the interrupted commit rather than discarding it).
//! A torn WAL tail from a crash inside 1 is dropped; its delta is
//! re-derived by the next `ssync` pass from document version comparison,
//! per the paper's lazy-consistency contract (§2.4). Objects orphaned by
//! any crash (or by merge/checkpoint supersession) are swept by
//! [`IndexStore::gc`] after a grace period.
//!
//! [`VfsStore`] additionally implements the byte layer *inside the VFS
//! itself* (under `/.hac-meta/store`), so a VFS snapshot carries the
//! segmented index with it — the configuration `HacFs` uses by default
//! in the shell and benches.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use hac_index::segment::Segment;
use hac_index::{Granularity, Index};
use hac_store::{
    decode_records, encode_record, ContentHash, ContentStore, Manifest, ObjectInfo, SegmentEntry,
    StoreError, StoreResult,
};
use hac_vfs::{NodeKind, VPath, Vfs};
use parking_lot::Mutex;

use crate::state::META_DIR;

/// Magic prefix of a versioned full-index snapshot object (the manifest
/// `base`, and the legacy `/.hac-meta/index` file from this version on).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HACI";
/// Current snapshot envelope version.
pub const SNAPSHOT_VERSION: u8 = 1;
/// Magic prefix of an encoded segment object.
pub const SEGMENT_MAGIC: [u8; 4] = *b"HACS";
/// Current segment envelope version.
pub const SEGMENT_VERSION: u8 = 1;
/// Magic prefix of a doc→path sidecar object (written at checkpoint).
pub const PATHS_MAGIC: [u8; 4] = *b"HACP";
/// Current paths-sidecar envelope version.
pub const PATHS_VERSION: u8 = 1;

fn codec_err(what: &str, e: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt(format!("{what}: {e}"))
}

/// Encode a full index snapshot with the versioned envelope.
pub fn encode_index_snapshot(index: &Index) -> StoreResult<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    let body = hac_vfs::persist::encode_value(index).map_err(|e| codec_err("snapshot", e))?;
    out.extend_from_slice(&body);
    Ok(out)
}

/// What [`decode_index_snapshot`] found.
pub enum SnapshotDecode {
    /// Decoded at the current version.
    Current(Box<Index>),
    /// Carries a header from a different (future or retired) version:
    /// structurally sound, but this build cannot read it. The caller
    /// counts a migration and cold-rebuilds.
    VersionSkew(u8),
}

/// Decode a snapshot written by [`encode_index_snapshot`], or — the
/// migration path — a headerless snapshot from before the envelope
/// existed.
pub fn decode_index_snapshot(bytes: &[u8]) -> StoreResult<SnapshotDecode> {
    let body = if bytes.len() >= 5 && bytes[..4] == SNAPSHOT_MAGIC {
        if bytes[4] != SNAPSHOT_VERSION {
            return Ok(SnapshotDecode::VersionSkew(bytes[4]));
        }
        &bytes[5..]
    } else {
        // Legacy whole-snapshot codec (read-only migration path): raw
        // positional bytes with no envelope.
        bytes
    };
    hac_vfs::persist::decode_value::<Index>(body)
        .map(|i| SnapshotDecode::Current(Box::new(i)))
        .map_err(|e| codec_err("snapshot body", e))
}

/// Encode a segment with the versioned envelope.
pub fn encode_segment(segment: &Segment) -> StoreResult<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(SEGMENT_VERSION);
    let body = hac_vfs::persist::encode_value(segment).map_err(|e| codec_err("segment", e))?;
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode a segment object.
pub fn decode_segment(bytes: &[u8]) -> StoreResult<Segment> {
    if bytes.len() < 5 || bytes[..4] != SEGMENT_MAGIC {
        return Err(StoreError::Corrupt("segment: bad magic".into()));
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "segment: unsupported version {}",
            bytes[4]
        )));
    }
    hac_vfs::persist::decode_value::<Segment>(&bytes[5..]).map_err(|e| codec_err("segment body", e))
}

/// One doc→path entry of a checkpoint's sidecar object.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct DocPathEntry {
    doc: u64,
    path: String,
}

/// Encode the doc→path sidecar written alongside a checkpoint base.
pub fn encode_doc_paths(paths: &[(u64, String)]) -> StoreResult<Vec<u8>> {
    let entries: Vec<DocPathEntry> = paths
        .iter()
        .map(|(doc, path)| DocPathEntry {
            doc: *doc,
            path: path.clone(),
        })
        .collect();
    let mut out = Vec::new();
    out.extend_from_slice(&PATHS_MAGIC);
    out.push(PATHS_VERSION);
    let body = hac_vfs::persist::encode_value(&entries).map_err(|e| codec_err("paths", e))?;
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode a doc→path sidecar object.
pub fn decode_doc_paths(bytes: &[u8]) -> StoreResult<Vec<(u64, String)>> {
    if bytes.len() < 5 || bytes[..4] != PATHS_MAGIC {
        return Err(StoreError::Corrupt("paths: bad magic".into()));
    }
    if bytes[4] != PATHS_VERSION {
        return Err(StoreError::Corrupt(format!(
            "paths: unsupported version {}",
            bytes[4]
        )));
    }
    hac_vfs::persist::decode_value::<Vec<DocPathEntry>>(&bytes[5..])
        .map(|entries| entries.into_iter().map(|e| (e.doc, e.path)).collect())
        .map_err(|e| codec_err("paths body", e))
}

// ---------------------------------------------------------------------
// VfsStore: the byte layer hosted inside the VFS metadata area
// ---------------------------------------------------------------------

/// A [`ContentStore`] whose objects, refs, and WAL live *inside* the VFS
/// under `/.hac-meta/store`. The reserved area is invisible to indexing
/// and scopes, and `hac_vfs::persist::snapshot` carries it along — so
/// "the disk" of this simulated machine durably holds the segmented
/// index, and restoring a snapshot restores the store with it.
///
/// VFS writes are internally atomic, so no tmp+rename dance is needed;
/// object age is measured in logical clock ticks (the VFS mutation
/// counter), the same clock the reindexer uses.
pub struct VfsStore {
    vfs: Arc<Vfs>,
}

impl VfsStore {
    /// A store over this namespace's reserved metadata area.
    pub fn new(vfs: Arc<Vfs>) -> VfsStore {
        VfsStore { vfs }
    }

    fn path(&self, rest: &str) -> StoreResult<VPath> {
        VPath::parse(&format!("/{META_DIR}/store/{rest}"))
            .map_err(|e| StoreError::Io(format!("bad store path {rest}: {e}")))
    }

    fn object_path(&self, hash: ContentHash) -> StoreResult<VPath> {
        self.path(&format!("objects/{}/{}", hash.prefix(), hash.remainder()))
    }

    fn write(&self, path: &VPath, bytes: &[u8]) -> StoreResult<()> {
        if let Some(parent) = path.parent() {
            self.vfs
                .mkdir_p(&parent)
                .map_err(|e| StoreError::Io(e.to_string()))?;
        }
        self.vfs
            .save(path, bytes)
            .map(|_| ())
            .map_err(|e| StoreError::Io(e.to_string()))
    }
}

impl ContentStore for VfsStore {
    fn put(&self, bytes: &[u8]) -> StoreResult<ContentHash> {
        let hash = ContentHash::of(bytes);
        let path = self.object_path(hash)?;
        // Heal a mismatched (torn) object rather than trusting presence.
        if self.vfs.read_file(&path).ok().as_deref() != Some(bytes) {
            self.write(&path, bytes)?;
        }
        Ok(hash)
    }

    fn put_raw(&self, hash: ContentHash, bytes: &[u8]) -> StoreResult<()> {
        let path = self.object_path(hash)?;
        self.write(&path, bytes)
    }

    fn get(&self, hash: ContentHash) -> StoreResult<Vec<u8>> {
        let path = self.object_path(hash)?;
        let bytes = self
            .vfs
            .read_file(&path)
            .map_err(|_| StoreError::NotFound(hash))?;
        if ContentHash::of(&bytes) != hash {
            return Err(StoreError::Corrupt(format!(
                "object {hash} fails content verification"
            )));
        }
        Ok(bytes.to_vec())
    }

    fn contains(&self, hash: ContentHash) -> StoreResult<bool> {
        Ok(self.vfs.exists(&self.object_path(hash)?))
    }

    fn remove(&self, hash: ContentHash) -> StoreResult<bool> {
        let path = self.object_path(hash)?;
        match self.vfs.unlink(&path) {
            Ok(()) => Ok(true),
            Err(hac_vfs::VfsError::NotFound(_)) => Ok(false),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn objects(&self) -> StoreResult<Vec<ObjectInfo>> {
        let mut out = Vec::new();
        let objects_dir = self.path("objects")?;
        let Ok(shards) = self.vfs.readdir(&objects_dir) else {
            return Ok(out);
        };
        let now = self.vfs.now().0;
        for shard in shards {
            if shard.kind != NodeKind::Dir {
                continue;
            }
            let shard_path = objects_dir
                .join(&shard.name)
                .map_err(|e| StoreError::Io(e.to_string()))?;
            let Ok(entries) = self.vfs.readdir(&shard_path) else {
                continue;
            };
            for entry in entries {
                let Some(hash) = ContentHash::parse(&format!("{}{}", shard.name, entry.name))
                else {
                    continue;
                };
                let Ok(path) = shard_path.join(&entry.name) else {
                    continue;
                };
                let Ok(attr) = self.vfs.lstat(&path) else {
                    continue;
                };
                out.push(ObjectInfo {
                    hash,
                    bytes: attr.size,
                    age: now.saturating_sub(attr.mtime.0),
                });
            }
        }
        Ok(out)
    }

    fn set_ref(&self, name: &str, hash: ContentHash) -> StoreResult<()> {
        let path = self.path(&format!("refs/{name}"))?;
        self.write(&path, hash.to_hex().as_bytes())
    }

    fn get_ref(&self, name: &str) -> StoreResult<Option<ContentHash>> {
        let path = self.path(&format!("refs/{name}"))?;
        if !self.vfs.exists(&path) {
            return Ok(None);
        }
        let bytes = self
            .vfs
            .read_file(&path)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let text = String::from_utf8_lossy(&bytes);
        ContentHash::parse(text.trim())
            .map(Some)
            .ok_or_else(|| StoreError::Corrupt(format!("ref {name} is not a hash")))
    }

    fn wal_load(&self) -> StoreResult<Vec<u8>> {
        let path = self.path("wal")?;
        if !self.vfs.exists(&path) {
            return Ok(Vec::new());
        }
        self.vfs
            .read_file(&path)
            .map(|b| b.to_vec())
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn wal_append(&self, bytes: &[u8]) -> StoreResult<()> {
        let path = self.path("wal")?;
        if !self.vfs.exists(&path) {
            return self.write(&path, bytes);
        }
        self.vfs
            .append(&path, bytes)
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn wal_reset(&self) -> StoreResult<()> {
        let path = self.path("wal")?;
        match self.vfs.unlink(&path) {
            Ok(()) | Err(hac_vfs::VfsError::NotFound(_)) => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }
}

// ---------------------------------------------------------------------
// IndexStore: the commit / recovery / maintenance protocol
// ---------------------------------------------------------------------

/// A live snapshot of the store for `hacsh store status` and tests.
#[derive(Debug, Clone, Default)]
pub struct StoreStatus {
    /// Manifest revision.
    pub manifest_seq: u64,
    /// Whether a base snapshot object exists.
    pub base_present: bool,
    /// Live delta segments.
    pub segments_live: u64,
    /// Documents covered by live segments (adds + removes).
    pub segment_docs: u64,
    /// Bytes across live segment objects.
    pub segment_bytes: u64,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// All objects in the backend (live + garbage).
    pub objects: u64,
    /// Total bytes across all objects.
    pub object_bytes: u64,
}

/// What a recovery pass did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments replayed from the manifest.
    pub segments_replayed: u64,
    /// Interrupted commits completed from the WAL tail.
    pub wal_commits_completed: u64,
    /// Whether a torn WAL tail was dropped.
    pub wal_torn: bool,
    /// Whether the index came from a base snapshot (vs segments only).
    pub from_base: bool,
    /// Documents live in the recovered index.
    pub docs: u64,
    /// Wall-clock microseconds the recovery took.
    pub duration_us: u64,
}

/// A recovered index plus the doc→path map reconstructed from the trail
/// (checkpoint sidecar + per-segment paths). When `paths` covers every
/// live document, installation can skip the O(namespace) walk that would
/// otherwise dominate a warm start.
#[derive(Debug)]
pub struct RecoveredIndex {
    /// The rebuilt index.
    pub index: Index,
    /// Doc→path entries reconstructed from the durable trail.
    pub paths: Vec<(u64, String)>,
    /// What the pass did.
    pub report: RecoveryReport,
}

/// What a maintenance (merge) pass did.
#[derive(Debug, Clone, Default)]
pub struct MaintainReport {
    /// Segments folded into one.
    pub merged: u64,
    /// Live segments after the pass.
    pub segments_live: u64,
}

/// What a GC sweep removed.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Unreferenced objects deleted.
    pub removed: u64,
    /// Bytes reclaimed.
    pub bytes: u64,
}

struct StoreInner {
    manifest: Manifest,
    /// Hash of the manifest object `current` points at (kept live so GC
    /// never sweeps it).
    manifest_hash: Option<ContentHash>,
    /// Next commit sequence number; never reused, survives checkpoints.
    next_seq: u64,
}

/// The durable index store: commit protocol + recovery + maintenance
/// over any [`ContentStore`] backend. Internally synchronized; all
/// multi-step mutations serialize on one mutex, so a GC sweep can never
/// race a half-finished commit into sweeping its objects.
pub struct IndexStore {
    backend: Arc<dyn ContentStore>,
    merge_threshold: usize,
    inner: Mutex<StoreInner>,
}

impl IndexStore {
    /// Open a store over `backend`, loading the current manifest if one
    /// was committed. A corrupt manifest is an error — the caller decides
    /// whether to fall back to a cold rebuild.
    pub fn open(backend: Arc<dyn ContentStore>, merge_threshold: usize) -> StoreResult<IndexStore> {
        let (manifest, manifest_hash) = match backend.get_ref("current")? {
            Some(h) => (Manifest::decode(&backend.get(h)?)?, Some(h)),
            None => (Manifest::default(), None),
        };
        let next_seq = manifest.last_segment_seq() + 1;
        Ok(IndexStore {
            backend,
            merge_threshold: merge_threshold.max(1),
            inner: Mutex::new(StoreInner {
                manifest,
                manifest_hash,
                next_seq,
            }),
        })
    }

    /// Open over `backend` ignoring any existing manifest — the fallback
    /// when [`IndexStore::open`] found a corrupt one. The first commit
    /// starts a new lineage; the unreadable objects become garbage for
    /// [`IndexStore::gc`].
    pub fn open_fresh(backend: Arc<dyn ContentStore>, merge_threshold: usize) -> IndexStore {
        IndexStore {
            backend,
            merge_threshold: merge_threshold.max(1),
            inner: Mutex::new(StoreInner {
                manifest: Manifest::default(),
                manifest_hash: None,
                next_seq: 1,
            }),
        }
    }

    /// The backend this store persists through.
    pub fn backend(&self) -> Arc<dyn ContentStore> {
        Arc::clone(&self.backend)
    }

    /// The sequence number the next committed segment will carry.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The current manifest, encoded (HACM bytes) — the export root for
    /// segment-shipped replication. Always a committed state: the inner
    /// mutex means no half-finished commit can be observed.
    pub fn export_manifest(&self) -> Vec<u8> {
        self.inner.lock().manifest.encode()
    }

    /// One live store object by content hash — segments, the base
    /// snapshot, or the path sidecar. Replicas pull exactly the objects
    /// the manifest names; the backend verifies bytes against the hash on
    /// read, so a corrupt object fails here rather than on the replica.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown hashes, plus backend I/O.
    pub fn export_object(&self, hash: ContentHash) -> StoreResult<Vec<u8>> {
        self.backend.get(hash)
    }

    fn swap_manifest(&self, inner: &mut StoreInner, mut manifest: Manifest) -> StoreResult<()> {
        // Stamp the revision with wall-clock commit time (µs since the
        // Unix epoch): the advisory half of replica lag telemetry.
        manifest.committed_at_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let hash = self.backend.put(&manifest.encode())?;
        self.backend.set_ref("current", hash)?;
        inner.manifest = manifest;
        inner.manifest_hash = Some(hash);
        hac_obs::gauge("hac_store_segments_live", &[]).set(inner.manifest.segments.len() as i64);
        Ok(())
    }

    /// Commit one sealed segment: the durable twin of an `ssync` apply
    /// phase. See the module docs for the step-by-step crash argument.
    pub fn commit_segment(&self, segment: &Segment) -> StoreResult<()> {
        let start = Instant::now();
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("store_commit"));
        let bytes = encode_segment(segment)?;
        let mut inner = self.inner.lock();
        self.backend.wal_append(&encode_record(&bytes))?;
        hac_obs::counter("hac_store_wal_bytes_total", &[]).add(bytes.len() as u64 + 13);
        let hash = self.backend.put(&bytes)?;
        let mut manifest = inner.manifest.clone();
        manifest.seq += 1;
        manifest.segments.push(SegmentEntry {
            hash,
            seq: segment.seq,
            docs: segment.doc_count(),
            bytes: bytes.len() as u64,
            generation: segment.generation,
        });
        self.swap_manifest(&mut inner, manifest)?;
        self.backend.wal_reset()?;
        inner.next_seq = inner.next_seq.max(segment.seq + 1);
        hac_obs::counter("hac_store_segments_written_total", &[]).inc();
        hac_obs::histogram("hac_store_commit_us", &[]).record(start.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Rebuild the index from durable state: base snapshot, then every
    /// manifest segment in order, then any complete WAL records whose
    /// commit was interrupted (those commits are *completed* — segment
    /// object re-put, manifest extended, ref swapped). Returns `None`
    /// when the store has never been written.
    pub fn recover(&self, granularity: Granularity) -> StoreResult<Option<RecoveredIndex>> {
        let start = Instant::now();
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("store_recover"));
        let mut inner = self.inner.lock();
        let mut report = RecoveryReport::default();

        // Re-read the ref: this handle may have been opened before the
        // crash being recovered from.
        let (mut manifest, manifest_hash) = match self.backend.get_ref("current")? {
            Some(h) => (Manifest::decode(&self.backend.get(h)?)?, Some(h)),
            None => (Manifest::default(), None),
        };
        inner.manifest_hash = manifest_hash;

        let wal = self.backend.wal_load()?;
        if manifest == Manifest::default() && wal.is_empty() {
            inner.manifest = manifest;
            return Ok(None);
        }

        let mut index = match manifest.base {
            Some(h) => match decode_index_snapshot(&self.backend.get(h)?)? {
                SnapshotDecode::Current(i) => {
                    report.from_base = true;
                    *i
                }
                SnapshotDecode::VersionSkew(v) => {
                    return Err(StoreError::Corrupt(format!(
                        "base snapshot has unsupported version {v}"
                    )))
                }
            },
            None => Index::new(granularity),
        };
        let mut paths: std::collections::BTreeMap<u64, String> = match manifest.paths {
            Some(h) => decode_doc_paths(&self.backend.get(h)?)?
                .into_iter()
                .collect(),
            None => Default::default(),
        };
        let track_paths = |segment: &Segment, paths: &mut std::collections::BTreeMap<_, _>| {
            for add in &segment.adds {
                if !add.path.is_empty() {
                    paths.insert(add.doc, add.path.clone());
                }
            }
            for doc in &segment.removes {
                paths.remove(doc);
            }
        };
        for entry in &manifest.segments {
            let segment = decode_segment(&self.backend.get(entry.hash)?)?;
            index.replay_segment(&segment);
            track_paths(&segment, &mut paths);
            report.segments_replayed += 1;
        }

        // WAL tail: complete interrupted commits.
        let scan = decode_records(&wal);
        report.wal_torn = scan.torn;
        let mut changed = false;
        for record in &scan.records {
            let segment = decode_segment(record)?;
            if segment.seq <= manifest.last_segment_seq() {
                continue; // crash landed after the ref swap: already in
            }
            index.replay_segment(&segment);
            track_paths(&segment, &mut paths);
            let hash = self.backend.put(record)?;
            manifest.seq += 1;
            manifest.segments.push(SegmentEntry {
                hash,
                seq: segment.seq,
                docs: segment.doc_count(),
                bytes: record.len() as u64,
                generation: segment.generation,
            });
            report.wal_commits_completed += 1;
            changed = true;
        }
        if changed {
            self.swap_manifest(&mut inner, manifest)?;
        } else {
            hac_obs::gauge("hac_store_segments_live", &[]).set(manifest.segments.len() as i64);
            inner.manifest = manifest;
        }
        if !wal.is_empty() {
            self.backend.wal_reset()?;
        }
        inner.next_seq = inner.next_seq.max(inner.manifest.last_segment_seq() + 1);

        report.docs = index.doc_count();
        report.duration_us = start.elapsed().as_micros() as u64;
        hac_obs::counter("hac_store_recoveries_total", &[]).inc();
        hac_obs::histogram("hac_store_recovery_us", &[]).record(report.duration_us);
        Ok(Some(RecoveredIndex {
            index,
            paths: paths.into_iter().collect(),
            report,
        }))
    }

    /// Fold the whole in-memory index into a fresh base snapshot and an
    /// empty segment run. Everything previously live becomes garbage.
    pub fn checkpoint(&self, index: &Index, paths: &[(u64, String)]) -> StoreResult<()> {
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("store_checkpoint"));
        let bytes = encode_index_snapshot(index)?;
        let path_bytes = encode_doc_paths(paths)?;
        let mut inner = self.inner.lock();
        let base = self.backend.put(&bytes)?;
        let path_sidecar = self.backend.put(&path_bytes)?;
        let manifest = Manifest {
            seq: inner.manifest.seq + 1,
            committed_at_micros: 0, // stamped by swap_manifest
            base: Some(base),
            paths: Some(path_sidecar),
            segments: Vec::new(),
        };
        self.swap_manifest(&mut inner, manifest)?;
        // Any WAL content describes a commit already reflected in the
        // in-memory index this snapshot was taken from.
        self.backend.wal_reset()?;
        hac_obs::counter("hac_store_checkpoints_total", &[]).inc();
        Ok(())
    }

    /// One bounded maintenance step: when more than `merge_threshold`
    /// segments are live, fold the oldest run into a single segment
    /// (adjacent by construction, so replay order is preserved), bringing
    /// the count back to the threshold. Returns `None` when under
    /// threshold. Size-tiering comes from the caller
    /// ([`crate::HacFs::store_maintain`]): once the delta run outweighs
    /// the base it checkpoints instead of re-merging large runs forever.
    pub fn maintain(&self) -> StoreResult<Option<MaintainReport>> {
        let mut inner = self.inner.lock();
        let n = inner.manifest.segments.len();
        if n <= self.merge_threshold {
            return Ok(None);
        }
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("store_merge"));
        let k = n - self.merge_threshold + 1;
        let mut run = Vec::with_capacity(k);
        for entry in &inner.manifest.segments[..k] {
            run.push(decode_segment(&self.backend.get(entry.hash)?)?);
        }
        let merged = Segment::merge(&run);
        let bytes = encode_segment(&merged)?;
        let hash = self.backend.put(&bytes)?;
        let mut manifest = inner.manifest.clone();
        manifest.seq += 1;
        let entry = SegmentEntry {
            hash,
            seq: merged.seq,
            docs: merged.doc_count(),
            bytes: bytes.len() as u64,
            generation: merged.generation,
        };
        manifest.segments.splice(..k, [entry]);
        self.swap_manifest(&mut inner, manifest)?;
        hac_obs::counter("hac_store_segments_merged_total", &[]).add(k as u64);
        Ok(Some(MaintainReport {
            merged: k as u64,
            segments_live: inner.manifest.segments.len() as u64,
        }))
    }

    /// Sweep unreferenced objects older than `grace` (backend-native age
    /// units: seconds on a real file system, logical ticks in the VFS).
    /// Holding the store mutex, so no commit can be mid-flight.
    pub fn gc(&self, grace: u64) -> StoreResult<GcReport> {
        let inner = self.inner.lock();
        let mut live: HashSet<ContentHash> = HashSet::new();
        live.extend(inner.manifest_hash);
        live.extend(inner.manifest.base);
        live.extend(inner.manifest.paths);
        live.extend(inner.manifest.segments.iter().map(|s| s.hash));
        let mut report = GcReport::default();
        for object in self.backend.objects()? {
            if live.contains(&object.hash) || object.age < grace {
                continue;
            }
            if self.backend.remove(object.hash)? {
                report.removed += 1;
                report.bytes += object.bytes;
            }
        }
        hac_obs::counter("hac_store_gc_removed_total", &[]).add(report.removed);
        Ok(report)
    }

    /// Live status for `hacsh store status`, benches, and tests.
    pub fn status(&self) -> StoreResult<StoreStatus> {
        let inner = self.inner.lock();
        let objects = self.backend.objects()?;
        let wal = self.backend.wal_load()?;
        Ok(StoreStatus {
            manifest_seq: inner.manifest.seq,
            base_present: inner.manifest.base.is_some(),
            segments_live: inner.manifest.segments.len() as u64,
            segment_docs: inner.manifest.segment_docs(),
            segment_bytes: inner.manifest.segments.iter().map(|s| s.bytes).sum(),
            wal_bytes: wal.len() as u64,
            objects: objects.len() as u64,
            object_bytes: objects.iter().map(|o| o.bytes).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_index::segment::SegmentDoc;
    use hac_index::{tokenize_text, DocId};
    use hac_store::MemStore;

    fn seg(seq: u64, generation: u64, docs: &[(u64, u64, &str)]) -> Segment {
        Segment {
            seq,
            generation,
            adds: docs
                .iter()
                .map(|(doc, version, text)| SegmentDoc {
                    doc: *doc,
                    version: *version,
                    path: format!("/d{doc}.txt"),
                    tokens: tokenize_text(text.as_bytes()),
                })
                .collect(),
            removes: Vec::new(),
        }
    }

    #[test]
    fn segment_envelope_roundtrip_and_versioning() {
        let s = seg(3, 9, &[(1, 1, "alpha beta"), (2, 1, "gamma")]);
        let bytes = encode_segment(&s).unwrap();
        assert_eq!(&bytes[..4], &SEGMENT_MAGIC);
        assert_eq!(decode_segment(&bytes).unwrap(), s);
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(decode_segment(&wrong_version).is_err());
        assert!(decode_segment(b"HAC").is_err());
    }

    #[test]
    fn snapshot_envelope_handles_current_legacy_and_skew() {
        let mut index = Index::new(Granularity::Exact);
        index.add_doc(DocId(1), 1, &tokenize_text(b"alpha"));

        // Current envelope.
        let bytes = encode_index_snapshot(&index).unwrap();
        match decode_index_snapshot(&bytes).unwrap() {
            SnapshotDecode::Current(i) => assert_eq!(i.doc_count(), 1),
            _ => panic!("expected current decode"),
        }

        // Legacy headerless bytes still decode (migration path).
        let legacy = hac_vfs::persist::encode_value(&index).unwrap();
        match decode_index_snapshot(&legacy).unwrap() {
            SnapshotDecode::Current(i) => assert_eq!(i.doc_count(), 1),
            _ => panic!("expected legacy decode"),
        }

        // A future version degrades to a counted skew, not an error.
        let mut future = bytes.clone();
        future[4] = SNAPSHOT_VERSION + 1;
        match decode_index_snapshot(&future).unwrap() {
            SnapshotDecode::VersionSkew(v) => assert_eq!(v, SNAPSHOT_VERSION + 1),
            _ => panic!("expected version skew"),
        }
    }

    #[test]
    fn commit_recover_roundtrip() {
        let backend: Arc<dyn ContentStore> = Arc::new(MemStore::new());
        let store = IndexStore::open(Arc::clone(&backend), 8).unwrap();
        store
            .commit_segment(&seg(1, 2, &[(1, 1, "alpha beta"), (2, 1, "beta gamma")]))
            .unwrap();
        store
            .commit_segment(&seg(2, 4, &[(3, 1, "delta")]))
            .unwrap();
        assert_eq!(store.next_seq(), 3);

        let reopened = IndexStore::open(backend, 8).unwrap();
        let rec = reopened.recover(Granularity::Exact).unwrap().unwrap();
        assert_eq!(rec.report.segments_replayed, 2);
        assert_eq!(rec.report.wal_commits_completed, 0);
        assert_eq!(rec.index.doc_count(), 3);
        assert_eq!(rec.index.generation(), 4);
        // Every doc's path rides in the trail: no namespace walk needed.
        assert_eq!(
            rec.paths,
            vec![
                (1, "/d1.txt".into()),
                (2, "/d2.txt".into()),
                (3, "/d3.txt".into())
            ]
        );
        let status = reopened.status().unwrap();
        assert_eq!(status.segments_live, 2);
        assert!(!status.base_present);
        assert_eq!(status.wal_bytes, 0);
    }

    #[test]
    fn empty_store_recovers_to_none() {
        let store = IndexStore::open(Arc::new(MemStore::new()), 8).unwrap();
        assert!(store.recover(Granularity::Exact).unwrap().is_none());
    }

    #[test]
    fn maintain_merges_oldest_run_back_to_threshold() {
        let store = IndexStore::open(Arc::new(MemStore::new()), 3).unwrap();
        for i in 1..=6u64 {
            store
                .commit_segment(&seg(i, i, &[(i, 1, "doc text here")]))
                .unwrap();
        }
        assert_eq!(store.status().unwrap().segments_live, 6);
        let report = store.maintain().unwrap().unwrap();
        assert_eq!(report.merged, 4);
        assert_eq!(report.segments_live, 3);
        // Recovery over the merged run yields the same docs and paths.
        let rec = store.recover(Granularity::Exact).unwrap().unwrap();
        assert_eq!(rec.index.doc_count(), 6);
        assert_eq!(rec.index.generation(), 6);
        assert_eq!(rec.paths.len(), 6);
        // Under threshold now: no-op.
        assert!(store.maintain().unwrap().is_none());
    }

    #[test]
    fn checkpoint_folds_segments_into_base_and_gc_sweeps_garbage() {
        let backend: Arc<dyn ContentStore> = Arc::new(MemStore::new());
        let store = IndexStore::open(Arc::clone(&backend), 8).unwrap();
        store
            .commit_segment(&seg(1, 1, &[(1, 1, "alpha")]))
            .unwrap();
        store.commit_segment(&seg(2, 2, &[(2, 1, "beta")])).unwrap();

        let mut index = Index::new(Granularity::Exact);
        index.add_doc(DocId(1), 1, &tokenize_text(b"alpha"));
        index.add_doc(DocId(2), 1, &tokenize_text(b"beta"));
        store
            .checkpoint(&index, &[(1, "/d1.txt".into()), (2, "/d2.txt".into())])
            .unwrap();

        let status = store.status().unwrap();
        assert!(status.base_present);
        assert_eq!(status.segments_live, 0);
        // Superseded segments + old manifests are now garbage.
        let garbage_before = status.objects;
        let report = store.gc(0).unwrap();
        assert!(report.removed > 0);
        let after = store.status().unwrap();
        assert_eq!(after.objects, garbage_before - report.removed);
        // Live data survives the sweep: recovery still works, and the
        // checkpoint's path sidecar was held live through the GC.
        let rec = store.recover(Granularity::Exact).unwrap().unwrap();
        assert!(rec.report.from_base);
        assert_eq!(rec.index.doc_count(), 2);
        assert_eq!(rec.paths.len(), 2);
        // Nothing left to sweep.
        assert_eq!(store.gc(0).unwrap().removed, 0);
    }

    #[test]
    fn gc_respects_grace_period() {
        let backend = Arc::new(MemStore::new());
        let store = IndexStore::open(Arc::clone(&backend) as Arc<dyn ContentStore>, 8).unwrap();
        backend.put(b"orphan object").unwrap();
        // Age the orphan by a few writes, then a very fresh orphan.
        store
            .commit_segment(&seg(1, 1, &[(1, 1, "alpha")]))
            .unwrap();
        backend.put(b"fresh orphan").unwrap();
        let report = store.gc(2).unwrap();
        assert_eq!(report.removed, 1, "only the aged orphan goes");
        assert!(backend.contains(ContentHash::of(b"fresh orphan")).unwrap());
        assert!(!backend.contains(ContentHash::of(b"orphan object")).unwrap());
    }

    #[test]
    fn wal_tail_completes_interrupted_commit() {
        use hac_store::{CrashStyle, FaultStore};
        let durable: Arc<dyn ContentStore> = Arc::new(MemStore::new());
        let store = IndexStore::open(Arc::clone(&durable), 8).unwrap();
        store
            .commit_segment(&seg(1, 1, &[(1, 1, "alpha")]))
            .unwrap();

        // Crash the second commit right after the WAL append (budget: the
        // wal_append succeeds, the object put dies).
        let faulty: Arc<dyn ContentStore> =
            Arc::new(FaultStore::new(Arc::clone(&durable), 1, CrashStyle::Fail));
        let crashing = IndexStore::open(Arc::clone(&faulty), 8).unwrap();
        assert!(crashing
            .commit_segment(&seg(2, 2, &[(2, 1, "beta")]))
            .is_err());

        // "Reboot": recover over the durable medium.
        let recovered_store = IndexStore::open(durable, 8).unwrap();
        let rec = recovered_store
            .recover(Granularity::Exact)
            .unwrap()
            .unwrap();
        assert_eq!(rec.report.wal_commits_completed, 1);
        assert_eq!(rec.index.doc_count(), 2);
        assert_eq!(rec.index.generation(), 2);
        // The completed commit is now manifest-visible and the WAL clear.
        let status = recovered_store.status().unwrap();
        assert_eq!(status.segments_live, 2);
        assert_eq!(status.wal_bytes, 0);
    }
}
