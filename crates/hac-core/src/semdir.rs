//! Semantic-directory metadata and link classification (§2.3).
//!
//! Every semantic directory carries, besides its query, the paper's
//! three-way link classification:
//!
//! * **transient** — created by query evaluation; owned by HAC;
//! * **permanent** — created explicitly by the user; never touched by HAC;
//! * **prohibited** — once present, explicitly deleted by the user; HAC
//!   guarantees they are never silently re-added.
//!
//! Prohibition is keyed by link *target* (not name): the user rejected the
//! file, not the string.

use std::collections::{HashMap, HashSet};

use hac_index::Bitmap;
use hac_query::{DirUid, Query};
use hac_vfs::FileId;

use crate::remote::NamespaceId;

/// What a symlink in a semantic directory points at.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkTarget {
    /// A file in the local namespace (identity is the inode, so prohibition
    /// survives renames of the target).
    Local(FileId),
    /// A document in a mounted remote name space.
    Remote(NamespaceId, String),
}

/// Who owns a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Produced by query evaluation; HAC may add and remove these freely.
    Transient,
    /// Added explicitly by the user; HAC never removes these.
    Permanent,
}

/// Bookkeeping for one live symlink in a semantic directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkState {
    /// Ownership class.
    pub kind: LinkKind,
    /// What the link points at.
    pub target: LinkTarget,
}

/// Metadata of one semantic directory.
#[derive(Debug, Clone)]
pub struct SemDir {
    /// Stable identifier (also the node in the dependency graph).
    pub uid: DirUid,
    /// The directory's inode.
    pub dir: FileId,
    /// The user's query (path references bound to UIDs).
    pub query: Query,
    /// Live symlinks by entry name.
    pub links: HashMap<String, LinkState>,
    /// Targets the user deleted; never silently re-added (§2.3).
    pub prohibited: HashSet<LinkTarget>,
    /// Local result bitmap of the last evaluation (the paper's per-directory
    /// `N/8`-byte compact query-result representation).
    pub last_result: Bitmap,
}

impl SemDir {
    /// Creates metadata for a fresh semantic directory.
    pub fn new(uid: DirUid, dir: FileId, query: Query) -> Self {
        SemDir {
            uid,
            dir,
            query,
            links: HashMap::new(),
            prohibited: HashSet::new(),
            last_result: Bitmap::new_dense(),
        }
    }

    /// Names of all links of a kind, sorted (deterministic for tests).
    pub fn names_of_kind(&self, kind: LinkKind) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .links
            .iter()
            .filter(|(_, s)| s.kind == kind)
            .map(|(n, _)| n.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether any live link already points at `target`.
    pub fn has_target(&self, target: &LinkTarget) -> bool {
        self.links.values().any(|s| &s.target == target)
    }

    /// The set of local targets of permanent links.
    pub fn permanent_local_targets(&self) -> Vec<FileId> {
        self.links
            .values()
            .filter(|s| s.kind == LinkKind::Permanent)
            .filter_map(|s| match s.target {
                LinkTarget::Local(id) => Some(id),
                LinkTarget::Remote(..) => None,
            })
            .collect()
    }

    /// Remote targets currently linked (any kind), grouped by namespace.
    pub fn remote_targets(&self) -> HashMap<NamespaceId, HashSet<String>> {
        let mut out: HashMap<NamespaceId, HashSet<String>> = HashMap::new();
        for s in self.links.values() {
            if let LinkTarget::Remote(ns, id) = &s.target {
                out.entry(ns.clone()).or_default().insert(id.clone());
            }
        }
        out
    }

    /// Picks an unused entry name for a new link, based on the target's
    /// preferred name. Collisions get `~2`, `~3`, … suffixes.
    pub fn free_name(&self, preferred: &str, taken: impl Fn(&str) -> bool) -> String {
        let base = if preferred.is_empty() {
            "link"
        } else {
            preferred
        };
        if !taken(base) {
            return base.to_string();
        }
        for i in 2.. {
            let cand = format!("{base}~{i}");
            if !taken(&cand) {
                return cand;
            }
        }
        unreachable!("the counter loop always finds a free name")
    }

    /// Approximate resident bytes of this directory's HAC metadata (drives
    /// the §4 in-text space-overhead numbers).
    pub fn resident_bytes(&self) -> u64 {
        let mut total = self.query.source.len() as u64 + 64;
        for (name, state) in &self.links {
            total += name.len() as u64 + 24;
            if let LinkTarget::Remote(ns, id) = &state.target {
                total += (ns.0.len() + id.len()) as u64;
            }
        }
        for t in &self.prohibited {
            total += match t {
                LinkTarget::Local(_) => 8,
                LinkTarget::Remote(ns, id) => (ns.0.len() + id.len()) as u64,
            };
        }
        total += self.last_result.bytes();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_query::parse;

    fn sd() -> SemDir {
        SemDir::new(DirUid(1), FileId(5), parse("fingerprint").unwrap())
    }

    #[test]
    fn names_of_kind_sorted() {
        let mut d = sd();
        d.links.insert(
            "b".into(),
            LinkState {
                kind: LinkKind::Transient,
                target: LinkTarget::Local(FileId(1)),
            },
        );
        d.links.insert(
            "a".into(),
            LinkState {
                kind: LinkKind::Transient,
                target: LinkTarget::Local(FileId(2)),
            },
        );
        d.links.insert(
            "c".into(),
            LinkState {
                kind: LinkKind::Permanent,
                target: LinkTarget::Local(FileId(3)),
            },
        );
        assert_eq!(d.names_of_kind(LinkKind::Transient), vec!["a", "b"]);
        assert_eq!(d.names_of_kind(LinkKind::Permanent), vec!["c"]);
        assert_eq!(d.permanent_local_targets(), vec![FileId(3)]);
    }

    #[test]
    fn free_name_dedups_with_suffix() {
        let d = sd();
        let taken = |n: &str| n == "report" || n == "report~2";
        assert_eq!(d.free_name("report", taken), "report~3");
        assert_eq!(d.free_name("fresh", taken), "fresh");
        assert_eq!(d.free_name("", |_| false), "link");
    }

    #[test]
    fn remote_targets_grouped_by_namespace() {
        let mut d = sd();
        let ns = NamespaceId("lib".into());
        d.links.insert(
            "x".into(),
            LinkState {
                kind: LinkKind::Transient,
                target: LinkTarget::Remote(ns.clone(), "doc1".into()),
            },
        );
        d.links.insert(
            "y".into(),
            LinkState {
                kind: LinkKind::Permanent,
                target: LinkTarget::Remote(ns.clone(), "doc2".into()),
            },
        );
        let grouped = d.remote_targets();
        assert_eq!(grouped[&ns].len(), 2);
        assert!(d.has_target(&LinkTarget::Remote(ns, "doc1".into())));
    }

    #[test]
    fn resident_bytes_counts_result_bitmap() {
        let mut d = sd();
        let before = d.resident_bytes();
        let mut bm = Bitmap::new_dense();
        bm.insert(hac_index::DocId(1023));
        d.last_result = bm;
        assert!(d.resident_bytes() >= before + 128);
    }
}
