//! Query scopes (§2.3, §3).
//!
//! Every query is evaluated over a *scope* — the set of files the paper
//! allows it to see. A scope has a local part (a bitmap over indexed files)
//! and, when semantic mount points are in play, a remote part: per mounted
//! namespace, either *everything the remote knows* (the mount itself is in
//! scope) or *an explicit id set* (the parent semantic directory's imported
//! results, which refine further queries).

use std::collections::{HashMap, HashSet};

use hac_index::Bitmap;

use crate::remote::NamespaceId;

/// The remote portion of a scope for one namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteSet {
    /// The whole namespace is in scope (a mount point is inside the scope
    /// subtree).
    All,
    /// Only these remote documents are in scope (refinement under a
    /// semantic directory that imported them).
    Ids(HashSet<String>),
}

impl RemoteSet {
    /// Whether a remote id is inside this set.
    pub fn contains(&self, id: &str) -> bool {
        match self {
            RemoteSet::All => true,
            RemoteSet::Ids(ids) => ids.contains(id),
        }
    }

    /// Intersection (refinement) of two sets.
    pub fn intersect(&self, other: &RemoteSet) -> RemoteSet {
        match (self, other) {
            (RemoteSet::All, o) => o.clone(),
            (s, RemoteSet::All) => s.clone(),
            (RemoteSet::Ids(a), RemoteSet::Ids(b)) => {
                RemoteSet::Ids(a.intersection(b).cloned().collect())
            }
        }
    }
}

/// The scope provided by a directory (§2.3: "the set of files over which
/// the query is evaluated").
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Local indexed files in scope.
    pub local: Bitmap,
    /// Remote documents in scope, per mounted namespace. A namespace absent
    /// from the map is *out of scope entirely*.
    pub remotes: HashMap<NamespaceId, RemoteSet>,
}

impl Scope {
    /// An empty scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// A purely local scope.
    pub fn local_only(local: Bitmap) -> Self {
        Scope {
            local,
            remotes: HashMap::new(),
        }
    }

    /// Marks an entire namespace as in scope.
    pub fn add_namespace_all(&mut self, ns: NamespaceId) {
        self.remotes.insert(ns, RemoteSet::All);
    }

    /// Adds an explicit remote id to the scope.
    pub fn add_remote_id(&mut self, ns: NamespaceId, id: String) {
        match self
            .remotes
            .entry(ns)
            .or_insert_with(|| RemoteSet::Ids(HashSet::new()))
        {
            RemoteSet::All => {}
            RemoteSet::Ids(ids) => {
                ids.insert(id);
            }
        }
    }

    /// Total number of in-scope items that can be counted (remote `All`
    /// namespaces count as unknown and are excluded).
    pub fn countable_len(&self) -> u64 {
        let remote: u64 = self
            .remotes
            .values()
            .map(|s| match s {
                RemoteSet::All => 0,
                RemoteSet::Ids(ids) => ids.len() as u64,
            })
            .sum();
        self.local.count() + remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_index::DocId;

    fn ns(s: &str) -> NamespaceId {
        NamespaceId(s.to_string())
    }

    #[test]
    fn remote_set_contains_and_intersect() {
        let all = RemoteSet::All;
        let some = RemoteSet::Ids(["a".to_string(), "b".to_string()].into_iter().collect());
        assert!(all.contains("anything"));
        assert!(some.contains("a"));
        assert!(!some.contains("c"));
        assert_eq!(all.intersect(&some), some);
        assert_eq!(some.intersect(&all), some);
        let other = RemoteSet::Ids(["b".to_string(), "c".to_string()].into_iter().collect());
        assert_eq!(
            some.intersect(&other),
            RemoteSet::Ids(["b".to_string()].into_iter().collect())
        );
    }

    #[test]
    fn scope_accumulates_remote_ids() {
        let mut s = Scope::new();
        s.add_remote_id(ns("lib"), "d1".into());
        s.add_remote_id(ns("lib"), "d2".into());
        assert!(s.remotes[&ns("lib")].contains("d1"));
        // Promoting to All swallows id additions afterwards.
        s.add_namespace_all(ns("lib"));
        s.add_remote_id(ns("lib"), "d3".into());
        assert_eq!(s.remotes[&ns("lib")], RemoteSet::All);
    }

    #[test]
    fn countable_len_counts_local_and_explicit_remotes() {
        let mut s = Scope::local_only(Bitmap::from_ids([DocId(1), DocId(2)]));
        s.add_remote_id(ns("lib"), "d1".into());
        s.add_namespace_all(ns("web"));
        assert_eq!(s.countable_len(), 3);
    }
}
