//! The global UID map (§2.5).
//!
//! The paper stores rename-stable *unique identifiers* inside queries and
//! keeps one global map from identifiers to directory path names, updated
//! on rename. Our substrate's inode ids are already rename-stable, so the
//! map binds `DirUid ↔ FileId` and derives current path names from the live
//! namespace; the observable contract — queries keep working across
//! renames without being rewritten — is identical.

use std::collections::HashMap;

use hac_query::DirUid;
use hac_vfs::FileId;

/// Bidirectional UID ↔ directory map.
#[derive(Debug, Default, Clone)]
pub struct UidMap {
    by_uid: HashMap<DirUid, FileId>,
    by_file: HashMap<FileId, DirUid>,
    next: u64,
}

impl UidMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the UID of a directory, allocating one on first use. Every
    /// directory that is ever referenced by a query or carries a query gets
    /// a UID; plain never-referenced directories do not pay the cost.
    pub fn uid_for(&mut self, dir: FileId) -> DirUid {
        if let Some(uid) = self.by_file.get(&dir) {
            return *uid;
        }
        let uid = DirUid(self.next);
        self.next += 1;
        self.by_uid.insert(uid, dir);
        self.by_file.insert(dir, uid);
        uid
    }

    /// Restores a specific UID ↔ directory binding (metadata recovery).
    /// Future allocations are bumped past the restored UID.
    pub fn bind(&mut self, uid: DirUid, dir: FileId) {
        self.by_uid.insert(uid, dir);
        self.by_file.insert(dir, uid);
        self.next = self.next.max(uid.0 + 1);
    }

    /// Looks up a UID without allocating.
    pub fn get_uid(&self, dir: FileId) -> Option<DirUid> {
        self.by_file.get(&dir).copied()
    }

    /// Resolves a UID to its directory.
    pub fn dir_of(&self, uid: DirUid) -> Option<FileId> {
        self.by_uid.get(&uid).copied()
    }

    /// Forgets a deleted directory. Queries still referencing the UID will
    /// report [`crate::HacError::UnknownUid`] at evaluation time.
    pub fn remove_dir(&mut self, dir: FileId) -> Option<DirUid> {
        let uid = self.by_file.remove(&dir)?;
        self.by_uid.remove(&uid);
        Some(uid)
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.by_uid.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.by_uid.is_empty()
    }

    /// Approximate resident bytes (Table 1's Makedir overhead analysis).
    pub fn resident_bytes(&self) -> u64 {
        (self.by_uid.len() * 2 * (8 + 8 + 16)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_is_stable_per_directory() {
        let mut m = UidMap::new();
        let a = m.uid_for(FileId(10));
        let b = m.uid_for(FileId(11));
        assert_ne!(a, b);
        assert_eq!(m.uid_for(FileId(10)), a);
        assert_eq!(m.dir_of(a), Some(FileId(10)));
        assert_eq!(m.get_uid(FileId(11)), Some(b));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn removed_dirs_leave_dangling_uids() {
        let mut m = UidMap::new();
        let a = m.uid_for(FileId(10));
        assert_eq!(m.remove_dir(FileId(10)), Some(a));
        assert_eq!(m.dir_of(a), None);
        assert_eq!(m.remove_dir(FileId(10)), None);
        // A re-created directory with the same id gets a *new* uid only if
        // ids were reused — our VFS never reuses them, but the map must not
        // resurrect the old binding either way.
        let b = m.uid_for(FileId(10));
        assert_ne!(a, b);
    }
}
