//! Error type of the HAC layer.

use std::fmt;

use hac_query::{DirUid, ParseError};
use hac_vfs::{VPath, VfsError};

use crate::remote::RemoteError;

/// Errors returned by [`crate::HacFs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HacError {
    /// The underlying file system refused the operation.
    Vfs(VfsError),
    /// The query text failed to parse.
    Parse(ParseError),
    /// The operation requires a semantic directory, but the path names a
    /// plain one.
    NotSemantic(VPath),
    /// The operation requires a directory.
    NotADirectory(VPath),
    /// Accepting the query/move would create a dependency cycle
    /// (§2.5 forbids cycles in the dependency graph).
    CycleDetected {
        /// The directory whose query/position was being changed.
        at: VPath,
    },
    /// A UID stored in a query no longer maps to a live directory.
    UnknownUid(DirUid),
    /// A query referenced a directory path that does not exist.
    UnknownQueryTarget(VPath),
    /// The root directory cannot carry a query (it provides the universal
    /// scope and "does not have a query associated with it").
    RootHasNoQuery,
    /// A remote name space failed.
    Remote(RemoteError),
    /// No semantic mount exists at this path.
    NotMounted(VPath),
    /// A symlink target could not be interpreted (neither a local file nor
    /// a remote-link encoding).
    BadLinkTarget(VPath),
    /// The `sact` link is not inside a semantic directory with a query.
    NoQueryContext(VPath),
    /// The durable index store failed (or none is attached where one is
    /// required).
    Store(String),
}

impl fmt::Display for HacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HacError::Vfs(e) => write!(f, "file system error: {e}"),
            HacError::Parse(e) => write!(f, "query parse error: {e}"),
            HacError::NotSemantic(p) => write!(f, "not a semantic directory: {p}"),
            HacError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            HacError::CycleDetected { at } => {
                write!(f, "dependency cycle would form at {at}")
            }
            HacError::UnknownUid(uid) => write!(f, "dangling directory reference {uid}"),
            HacError::UnknownQueryTarget(p) => {
                write!(f, "query references unknown directory {p}")
            }
            HacError::RootHasNoQuery => write!(f, "the root directory cannot carry a query"),
            HacError::Remote(e) => write!(f, "remote name space error: {e}"),
            HacError::NotMounted(p) => write!(f, "no semantic mount at {p}"),
            HacError::BadLinkTarget(p) => write!(f, "uninterpretable link target {p}"),
            HacError::NoQueryContext(p) => {
                write!(f, "no enclosing semantic directory query for {p}")
            }
            HacError::Store(m) => write!(f, "index store error: {m}"),
        }
    }
}

impl std::error::Error for HacError {}

impl From<VfsError> for HacError {
    fn from(e: VfsError) -> Self {
        HacError::Vfs(e)
    }
}

impl From<ParseError> for HacError {
    fn from(e: ParseError) -> Self {
        HacError::Parse(e)
    }
}

impl From<RemoteError> for HacError {
    fn from(e: RemoteError) -> Self {
        HacError::Remote(e)
    }
}

impl From<hac_store::StoreError> for HacError {
    fn from(e: hac_store::StoreError) -> Self {
        HacError::Store(e.to_string())
    }
}

/// Result alias for HAC operations.
pub type HacResult<T> = Result<T, HacError>;
