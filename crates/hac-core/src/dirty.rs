//! Incremental-reindex bookkeeping: dirty sets, the term→semdir "query
//! index", and the doc→path map.
//!
//! The paper's data-consistency policy (§2.4) only stays cheap if a reindex
//! pass costs what *changed*, not what exists. Three structures make that
//! possible:
//!
//! * [`DirtySet`] — the documents one pass added / re-indexed / dropped,
//!   plus the token keys those documents contributed;
//! * [`QueryIndex`] — an inverted map from token keys to the semantic
//!   directories whose queries mention them, so `resync_dirty` can seed the
//!   re-evaluation set by intersecting query terms with dirty postings
//!   instead of re-evaluating every directory;
//! * [`DocPathMap`] — the path each document was indexed under, ordered so
//!   stale-entry detection for a subtree is a prefix range scan, not a walk
//!   of the whole index.

use std::collections::{BTreeMap, HashMap, HashSet};

use hac_index::{DocId, Token};
use hac_query::QueryExpr;
use hac_vfs::{FileId, VPath};

/// What one reindex pass changed in the CBA index.
#[derive(Debug, Default, Clone)]
pub struct DirtySet {
    /// Documents indexed for the first time.
    pub added: HashSet<DocId>,
    /// Documents re-indexed because their content version changed.
    pub updated: HashSet<DocId>,
    /// Documents dropped because the file vanished.
    pub removed: HashSet<DocId>,
    /// Token keys (see [`Token::key`]) contributed by the added and
    /// updated documents. Removed documents contribute no keys — their
    /// effect on a query result is caught by membership in the old result.
    pub terms: HashSet<String>,
}

impl DirtySet {
    /// An empty dirty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the pass changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.updated.is_empty() && self.removed.is_empty()
    }

    /// Number of dirty documents.
    pub fn doc_count(&self) -> u64 {
        (self.added.len() + self.updated.len() + self.removed.len()) as u64
    }

    /// Iterates every dirty document once (a doc can only be in one set).
    pub fn docs(&self) -> impl Iterator<Item = DocId> + '_ {
        self.added
            .iter()
            .chain(self.updated.iter())
            .chain(self.removed.iter())
            .copied()
    }

    /// Records the token keys of an added or updated document.
    pub fn absorb_tokens(&mut self, tokens: &[Token]) {
        for t in tokens {
            self.terms.insert(t.key());
        }
    }
}

/// Per-directory registration kept so a query can be unregistered (or
/// re-registered on `set_query`) without re-walking the old expression.
#[derive(Debug, Default, Clone)]
struct QueryKeys {
    terms: Vec<String>,
    prefixes: Vec<String>,
    broad: bool,
}

/// Inverted index over semantic-directory queries: token key → directories
/// whose query mentions it.
///
/// Queries whose sensitivity cannot be reduced to a term set — `All`,
/// `NOT …` (complement over the scope), `~word` (approximate match may
/// reach terms we cannot enumerate), and `path(...)` references to
/// *syntactic* directories (their subtree scope shifts with any file
/// change) — register as **broad** and are seeded whenever any document is
/// dirty. References to *semantic* directories are already handled by the
/// dependency graph's `update_order` cascade, but classifying every
/// `Dir(..)` as broad keeps the seed computation independent of what kind
/// of directory the reference resolves to today.
#[derive(Debug, Default)]
pub struct QueryIndex {
    by_term: HashMap<String, HashSet<FileId>>,
    by_prefix: HashMap<String, HashSet<FileId>>,
    broad: HashSet<FileId>,
    keys_of: HashMap<FileId, QueryKeys>,
}

impl QueryIndex {
    /// An empty query index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a directory's query.
    pub fn insert(&mut self, dir: FileId, expr: &QueryExpr) {
        self.remove(dir);
        let mut keys = QueryKeys::default();
        collect_keys(expr, &mut keys);
        keys.terms.sort();
        keys.terms.dedup();
        keys.prefixes.sort();
        keys.prefixes.dedup();
        for t in &keys.terms {
            self.by_term.entry(t.clone()).or_default().insert(dir);
        }
        for p in &keys.prefixes {
            self.by_prefix.entry(p.clone()).or_default().insert(dir);
        }
        if keys.broad {
            self.broad.insert(dir);
        }
        self.keys_of.insert(dir, keys);
    }

    /// Unregisters a directory (no-op when absent).
    pub fn remove(&mut self, dir: FileId) {
        let Some(keys) = self.keys_of.remove(&dir) else {
            return;
        };
        for t in &keys.terms {
            if let Some(set) = self.by_term.get_mut(t) {
                set.remove(&dir);
                if set.is_empty() {
                    self.by_term.remove(t);
                }
            }
        }
        for p in &keys.prefixes {
            if let Some(set) = self.by_prefix.get_mut(p) {
                set.remove(&dir);
                if set.is_empty() {
                    self.by_prefix.remove(p);
                }
            }
        }
        self.broad.remove(&dir);
    }

    /// Number of registered directories.
    pub fn len(&self) -> usize {
        self.keys_of.len()
    }

    /// True when no directory is registered.
    pub fn is_empty(&self) -> bool {
        self.keys_of.is_empty()
    }

    /// The directories whose query terms intersect the dirty token keys
    /// (plus every broad query, when anything is dirty at all).
    pub fn seeds(&self, dirty: &DirtySet) -> HashSet<FileId> {
        let mut out = HashSet::new();
        if dirty.is_empty() {
            return out;
        }
        out.extend(self.broad.iter().copied());
        for term in &dirty.terms {
            if let Some(dirs) = self.by_term.get(term) {
                out.extend(dirs.iter().copied());
            }
        }
        for (prefix, dirs) in &self.by_prefix {
            if dirty.terms.iter().any(|t| t.starts_with(prefix.as_str())) {
                out.extend(dirs.iter().copied());
            }
        }
        out
    }
}

fn collect_keys(expr: &QueryExpr, keys: &mut QueryKeys) {
    match expr {
        QueryExpr::Term(t) => keys.terms.push(t.to_ascii_lowercase()),
        QueryExpr::Field(n, v) => keys.terms.push(Token::field_key(n, v)),
        QueryExpr::Phrase(ws) => {
            // A document can only gain/lose a phrase match if it
            // gains/loses one of the phrase's words.
            keys.terms.extend(ws.iter().map(|w| w.to_ascii_lowercase()));
        }
        QueryExpr::Prefix(t) => keys.prefixes.push(t.to_ascii_lowercase()),
        QueryExpr::Approx(..) | QueryExpr::All | QueryExpr::Dir(_) => keys.broad = true,
        QueryExpr::Not(a) => {
            // Complement: a doc *leaving* the operand's match set enters the
            // result, so any dirty doc is relevant.
            keys.broad = true;
            collect_keys(a, keys);
        }
        QueryExpr::And(a, b) | QueryExpr::Or(a, b) | QueryExpr::AndNot(a, b) => {
            collect_keys(a, keys);
            collect_keys(b, keys);
        }
    }
}

/// The path every document was last indexed under, with a sorted view so
/// "which indexed docs lived under this subtree?" is a range scan.
///
/// Paths here are *as of the last reindex* — a rename can leave them stale
/// until the next pass, so consumers must verify against the live namespace
/// before acting on an entry (exactly the paper's lazy-consistency
/// contract).
#[derive(Debug, Default)]
pub struct DocPathMap {
    by_path: BTreeMap<String, DocId>,
    paths: HashMap<DocId, String>,
}

impl DocPathMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or moves) a document's indexed path.
    ///
    /// Two documents can transiently claim one path (a file replaced in
    /// place by a new inode before the old doc is swept); `by_path` then
    /// holds the latest claimant, so releases of a path entry must check
    /// ownership first.
    pub fn record(&mut self, doc: DocId, path: &VPath) {
        let key = path.to_string();
        if let Some(old) = self.paths.get(&doc) {
            if *old == key {
                return;
            }
            if self.by_path.get(old) == Some(&doc) {
                self.by_path.remove(old);
            }
        }
        self.by_path.insert(key.clone(), doc);
        self.paths.insert(doc, key);
    }

    /// Drops a document.
    pub fn forget(&mut self, doc: DocId) {
        if let Some(old) = self.paths.remove(&doc) {
            if self.by_path.get(&old) == Some(&doc) {
                self.by_path.remove(&old);
            }
        }
    }

    /// The recorded path of a document, if any.
    pub fn path_of(&self, doc: DocId) -> Option<&str> {
        self.paths.get(&doc).map(String::as_str)
    }

    /// All recorded (doc, path) entries — the payload of a durable
    /// checkpoint's path sidecar.
    pub fn dump(&self) -> Vec<(u64, String)> {
        self.paths.iter().map(|(d, p)| (d.0, p.clone())).collect()
    }

    /// Number of recorded documents.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Every document recorded at or under `root`, via a prefix range scan
    /// (cost proportional to the subtree, not the index).
    pub fn docs_under(&self, root: &VPath) -> Vec<DocId> {
        let root_str = root.to_string();
        if root_str == "/" {
            return self.by_path.values().copied().collect();
        }
        let mut out = Vec::new();
        if let Some(&doc) = self.by_path.get(&root_str) {
            out.push(doc);
        }
        // '/' + 1 == '0' in ASCII, so every "<root>/…" key sorts into
        // ["<root>/", "<root>0").
        let lo = format!("{root_str}/");
        let hi = format!("{root_str}0");
        out.extend(self.by_path.range(lo..hi).map(|(_, &d)| d));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn dirty_set_tracks_docs_and_terms() {
        let mut d = DirtySet::new();
        assert!(d.is_empty());
        d.added.insert(DocId(1));
        d.updated.insert(DocId(2));
        d.removed.insert(DocId(3));
        d.absorb_tokens(&[Token::word("Fox"), Token::field("ext", "txt")]);
        assert!(!d.is_empty());
        assert_eq!(d.doc_count(), 3);
        assert_eq!(d.docs().count(), 3);
        assert!(d.terms.contains("fox"));
        assert!(d.terms.contains(&Token::field_key("ext", "txt")));
    }

    #[test]
    fn query_index_seeds_by_term_intersection() {
        let mut qi = QueryIndex::new();
        let a = FileId(10);
        let b = FileId(11);
        qi.insert(a, &QueryExpr::Term("alpha".into()));
        qi.insert(
            b,
            &QueryExpr::and(
                QueryExpr::Term("beta".into()),
                QueryExpr::Field("ext".into(), "txt".into()),
            ),
        );

        let mut dirty = DirtySet::new();
        dirty.added.insert(DocId(1));
        dirty.terms.insert("alpha".into());
        let seeds = qi.seeds(&dirty);
        assert!(seeds.contains(&a));
        assert!(!seeds.contains(&b));

        let mut dirty2 = DirtySet::new();
        dirty2.updated.insert(DocId(2));
        dirty2.terms.insert(Token::field_key("ext", "txt"));
        let seeds2 = qi.seeds(&dirty2);
        assert!(seeds2.contains(&b));
        assert!(!seeds2.contains(&a));
    }

    #[test]
    fn query_index_broad_and_prefix_queries() {
        let mut qi = QueryIndex::new();
        let broad = FileId(1);
        let pre = FileId(2);
        let narrow = FileId(3);
        qi.insert(
            broad,
            &QueryExpr::Not(Box::new(QueryExpr::Term("x".into()))),
        );
        qi.insert(pre, &QueryExpr::Prefix("fing".into()));
        qi.insert(narrow, &QueryExpr::Term("zzz".into()));

        let mut dirty = DirtySet::new();
        dirty.added.insert(DocId(9));
        dirty.terms.insert("fingerprint".into());
        let seeds = qi.seeds(&dirty);
        assert!(seeds.contains(&broad), "broad queries seed on any change");
        assert!(seeds.contains(&pre), "prefix matches dirty term");
        assert!(!seeds.contains(&narrow));

        // Empty dirty set seeds nothing, even with broad queries present.
        assert!(qi.seeds(&DirtySet::new()).is_empty());
    }

    #[test]
    fn query_index_remove_and_reinsert() {
        let mut qi = QueryIndex::new();
        let a = FileId(5);
        qi.insert(a, &QueryExpr::Term("old".into()));
        qi.insert(a, &QueryExpr::Term("new".into()));
        assert_eq!(qi.len(), 1);

        let mut dirty = DirtySet::new();
        dirty.added.insert(DocId(1));
        dirty.terms.insert("old".into());
        assert!(qi.seeds(&dirty).is_empty(), "stale registration must drop");

        dirty.terms.insert("new".into());
        assert!(qi.seeds(&dirty).contains(&a));

        qi.remove(a);
        assert!(qi.is_empty());
        assert!(qi.seeds(&dirty).is_empty());
    }

    #[test]
    fn doc_path_map_prefix_scan_is_exact() {
        let mut m = DocPathMap::new();
        m.record(DocId(1), &p("/a/b"));
        m.record(DocId(2), &p("/a/b/file1"));
        m.record(DocId(3), &p("/a/b/sub/file2"));
        m.record(DocId(4), &p("/a/bc")); // sibling sharing the byte prefix
        m.record(DocId(5), &p("/a/b!")); // sorts between "/a/b" and "/a/b/"
        m.record(DocId(6), &p("/z"));

        let mut under: Vec<u64> = m.docs_under(&p("/a/b")).iter().map(|d| d.0).collect();
        under.sort();
        assert_eq!(under, vec![1, 2, 3]);

        assert_eq!(m.docs_under(&p("/")).len(), 6);
        assert!(m.docs_under(&p("/nope")).is_empty());
    }

    #[test]
    fn doc_path_map_record_moves_and_forget() {
        let mut m = DocPathMap::new();
        m.record(DocId(1), &p("/a/x"));
        m.record(DocId(1), &p("/b/x")); // moved
        assert_eq!(m.len(), 1);
        assert_eq!(m.path_of(DocId(1)), Some("/b/x"));
        assert!(m.docs_under(&p("/a")).is_empty());
        assert_eq!(m.docs_under(&p("/b")).len(), 1);

        m.forget(DocId(1));
        assert!(m.is_empty());
        assert!(m.path_of(DocId(1)).is_none());
    }

    #[test]
    fn doc_path_map_replace_at_same_path_keeps_new_doc() {
        // A file replaced in place (delete+recreate or rename-over) puts a
        // new inode at the old doc's recorded path before the stale doc is
        // swept; forgetting the old doc must not drop the new doc's entry.
        let mut m = DocPathMap::new();
        m.record(DocId(1), &p("/a"));
        m.record(DocId(2), &p("/a"));
        m.forget(DocId(1));
        assert_eq!(m.path_of(DocId(2)), Some("/a"));
        let under: Vec<u64> = m.docs_under(&p("/")).iter().map(|d| d.0).collect();
        assert_eq!(under, vec![2], "new doc must survive the stale sweep");
        assert!(m.path_of(DocId(1)).is_none());
    }

    #[test]
    fn doc_path_map_move_does_not_drop_other_docs_entry() {
        // Doc 2 takes over doc 1's path, then doc 1 moves away: the move
        // must release only entries doc 1 still owns.
        let mut m = DocPathMap::new();
        m.record(DocId(1), &p("/a"));
        m.record(DocId(2), &p("/a")); // shadows doc 1 at /a
        m.record(DocId(1), &p("/c")); // doc 1 moves; /a belongs to doc 2
        assert_eq!(m.path_of(DocId(2)), Some("/a"));
        assert_eq!(m.path_of(DocId(1)), Some("/c"));
        let mut under: Vec<u64> = m.docs_under(&p("/")).iter().map(|d| d.0).collect();
        under.sort();
        assert_eq!(under, vec![1, 2]);
    }
}
