//! The HAC consistency engine.
//!
//! [`HacState`] holds everything the paper's §4 charges to HAC — the CBA
//! index, per-semantic-directory metadata, the global UID map, the
//! dependency graph, and semantic mounts — and implements the two
//! consistency algorithms:
//!
//! * **scope consistency** (§2.3/§2.5): after any change to the scope a
//!   directory provides, re-evaluate every transitive dependent in
//!   topological order, recomputing only *transient* links and honouring
//!   permanent/prohibited sets;
//! * **data consistency** (§2.4): content changes are reconciled lazily by
//!   [`HacState::sync_subtree`] (invoked by `ssync` and the periodic
//!   daemon), never instantly.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hac_index::engine::DocProvider;
use hac_index::{Bitmap, DocDelta, DocId, Granularity, Index, Token, TransducerRegistry};
use hac_query::{DirRef, DirUid, Query, QueryExpr};
use hac_vfs::{FileId, NodeKind, VPath, Vfs, VfsError};

use crate::depgraph::{DepGraph, EdgeKind};
use crate::dirty::{DirtySet, DocPathMap, QueryIndex};
use crate::error::{HacError, HacResult};
use crate::remote::{NamespaceId, RemoteQuerySystem};
use crate::scope::Scope;
use crate::semdir::{LinkKind, LinkState, LinkTarget, SemDir};
use crate::uidmap::UidMap;

/// Reserved directory under which remote-link targets are encoded. The
/// paths are deliberately dangling in the local namespace; HAC decodes and
/// fetches them through the owning mount.
pub const REMOTE_LINK_PREFIX: &str = ".hac-remote";

/// Reserved directory holding HAC's persisted per-directory metadata. The
/// paper's §4: "when HAC creates a new directory, it also creates and
/// initializes (to 'empty') the data structures that store its query, its
/// query-result, and its set of permanent and prohibited symbolic links …
/// All of these are stored in the disk and require extra I/O operations" —
/// the extra I/O the Andrew benchmark's Makedir phase pays for.
pub const META_DIR: &str = ".hac-meta";

/// Whether a path lies inside one of HAC's reserved areas (never indexed,
/// never part of any scope).
pub fn is_reserved(path: &VPath) -> bool {
    matches!(
        path.components().next(),
        Some(META_DIR) | Some(REMOTE_LINK_PREFIX)
    )
}

/// On-disk form of one directory's HAC metadata.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DirRecordDisk {
    /// The directory's UID.
    pub uid: u64,
    /// Query text with directory references rendered as current paths
    /// (re-bound at recovery time), or `None` for plain directories.
    pub query: Option<String>,
    /// Link name → (kind tag, encoded target). Kind tag: 0 transient,
    /// 1 permanent.
    pub links: Vec<(String, u8, String)>,
    /// Encoded prohibited targets.
    pub prohibited: Vec<String>,
}

/// Encodes a [`LinkTarget`] as a stable string.
pub fn encode_target(t: &LinkTarget) -> String {
    match t {
        LinkTarget::Local(fid) => format!("local:{}", fid.0),
        LinkTarget::Remote(ns, id) => format!("remote:{}:{}", ns.0, id),
    }
}

/// Decodes a string produced by [`encode_target`].
pub fn decode_target(s: &str) -> Option<LinkTarget> {
    if let Some(rest) = s.strip_prefix("local:") {
        return rest.parse().ok().map(|n| LinkTarget::Local(FileId(n)));
    }
    if let Some(rest) = s.strip_prefix("remote:") {
        let (ns, id) = rest.split_once(':')?;
        return Some(LinkTarget::Remote(
            NamespaceId(ns.to_string()),
            id.to_string(),
        ));
    }
    None
}

/// Tuning knobs of a [`crate::HacFs`].
#[derive(Debug, Clone)]
pub struct HacConfig {
    /// Index granularity for the CBA mechanism.
    pub granularity: Granularity,
    /// Restore scope consistency immediately after structural mutations
    /// (the paper removes scope inconsistencies "as soon as possible").
    /// Disable only for bulk loads followed by one `ssync`.
    pub auto_scope_sync: bool,
    /// Index file content eagerly on create/write/unlink instead of waiting
    /// for the next reindex. The paper's default is lazy (§2.4); eager mode
    /// is the "update certain semantic directories as soon as new mail
    /// comes in" option.
    pub eager_content_index: bool,
    /// Store per-directory result sets in the sparse representation instead
    /// of the paper's dense `N/8`-byte bitmaps — the "better sparse-set
    /// representations" the paper plans "so that it is possible to index a
    /// very large number of files".
    pub sparse_results: bool,
    /// Worker threads for the tokenize phase of a reindex pass. `0` (the
    /// default) sizes to the machine's available parallelism.
    pub reindex_threads: usize,
    /// Maximum live segments in the durable index store before the
    /// daemon's maintenance tick merges a run (bounds recovery replay
    /// length and read amplification). Ignored when no store is attached.
    pub store_merge_threshold: usize,
    /// Declarative service-level objectives, installed into the global
    /// SLO engine when the reindex daemon or a `HacServer` starts. Each is
    /// the parsed form of one spec line like
    /// `query-latency: hac_query_eval_duration_us p99 < 5ms over 60s`.
    pub slos: Vec<hac_obs::SloSpec>,
    /// Interval of the background metrics sampler (milliseconds) started
    /// by the daemon / server; also paces the scrape-pull fallback.
    pub sample_interval_ms: u64,
}

impl Default for HacConfig {
    fn default() -> Self {
        HacConfig {
            granularity: Granularity::default(),
            auto_scope_sync: true,
            eager_content_index: false,
            sparse_results: false,
            reindex_threads: 0,
            store_merge_threshold: 8,
            slos: hac_obs::SloSpec::default_set(),
            sample_interval_ms: hac_obs::DEFAULT_SAMPLE_INTERVAL_MS,
        }
    }
}

impl HacConfig {
    /// The tokenize-phase thread count this configuration resolves to.
    pub fn effective_reindex_threads(&self) -> usize {
        if self.reindex_threads > 0 {
            self.reindex_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Counters summarizing one reindex pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Files newly indexed.
    pub added: u64,
    /// Files re-indexed because their version changed.
    pub updated: u64,
    /// Index entries dropped because the file disappeared.
    pub removed: u64,
    /// Semantic directories re-evaluated.
    pub dirs_synced: u64,
    /// Broken permanent/transient symlinks repaired (target renamed).
    pub links_repaired: u64,
}

/// One file a [`SyncPlan`] schedules for (re)tokenization.
#[derive(Debug, Clone)]
pub struct PlannedDoc {
    /// Path as of the planning walk.
    pub path: VPath,
    /// The file's inode.
    pub id: FileId,
}

/// The snapshot phase of a reindex pass: everything `ssync` must do,
/// computed under a short read lock so tokenization can run lock-free.
#[derive(Debug, Clone)]
pub struct SyncPlan {
    /// The subtree being synchronized.
    pub root: VPath,
    /// Files whose indexed version differs from the walk (new or changed).
    pub to_index: Vec<PlannedDoc>,
    /// Unchanged docs whose recorded path moved (rename observed by walk).
    pub refresh_paths: Vec<(DocId, VPath)>,
    /// Docs recorded under the root but absent from the walk; verified
    /// against the live namespace before removal.
    pub stale_candidates: Vec<DocId>,
}

impl SyncPlan {
    /// True when the pass has nothing to tokenize, refresh, or remove.
    pub fn is_empty(&self) -> bool {
        self.to_index.is_empty()
            && self.refresh_paths.is_empty()
            && self.stale_candidates.is_empty()
    }
}

/// The changes a reindex pass actually landed in the index: the deltas
/// that survived version arbitration plus the removals of docs that were
/// indexed. When a durable store is attached, this is exactly the payload
/// sealed into one segment — nothing more, nothing less, so replaying the
/// segment reproduces the pass.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// Deltas applied (new or newer-version documents).
    pub adds: Vec<DocDelta>,
    /// Indexed documents removed.
    pub removes: Vec<DocId>,
}

impl AppliedDelta {
    /// True when the pass changed nothing.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// One tokenized file, ready for the apply phase.
#[derive(Debug, Clone)]
pub struct TokenizedDoc {
    /// Path the content was read from.
    pub path: VPath,
    /// The posting delta.
    pub delta: DocDelta,
}

/// The middle phase of the reindex pipeline: reads and tokenizes every
/// planned file *without holding the state lock* (the [`Vfs`] is internally
/// synchronized), fanning out over `threads` scoped workers. Files that
/// vanished or changed identity since the plan was taken are skipped — the
/// next pass reconciles them, per the paper's lazy-consistency contract.
///
/// Results come back in plan order regardless of which worker produced
/// them, so block-granularity doc→block assignment stays deterministic.
pub fn tokenize_plan(
    vfs: &Vfs,
    registry: &TransducerRegistry,
    plan: &SyncPlan,
    threads: usize,
) -> Vec<TokenizedDoc> {
    let n = plan.to_index.len();
    if n == 0 {
        return Vec::new();
    }
    let tokenize_one = |planned: &PlannedDoc| -> Option<TokenizedDoc> {
        let attr = vfs.lstat(&planned.path).ok()?;
        if attr.kind != NodeKind::File || attr.id != planned.id {
            return None;
        }
        let content = vfs.read_file(&planned.path).ok()?;
        let name = planned.path.file_name().unwrap_or("");
        let tokens = extract_tokens(registry, name, &content);
        Some(TokenizedDoc {
            path: planned.path.clone(),
            delta: DocDelta {
                doc: DocId(planned.id.0),
                version: attr.version,
                tokens,
            },
        })
    };
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return plan.to_index.iter().filter_map(tokenize_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<TokenizedDoc>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if let Some(td) = tokenize_one(&plan.to_index[i]) {
                            local.push((i, td));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, td) in h.join().expect("tokenize worker panicked") {
                slots[i] = Some(td);
            }
        }
    });
    slots.into_iter().flatten().collect()
}

/// A cached raw query result: [`HacState::resync_dir`] reuses it when the
/// index generation, the universe fingerprint, and the query text all still
/// match. Only the *raw* `eval_local` output is cached — prohibited /
/// permanent / physically-present filtering runs on every resync, because
/// those sets belong to the user and change without touching the index.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Source text of the query that produced the result.
    pub query_src: String,
    /// Index generation the result was computed against.
    pub generation: u64,
    /// Fingerprint of the local universe bitmap.
    pub scope_fp: u64,
    /// The raw local result.
    pub result: Bitmap,
}

/// Token provider that re-tokenizes live file content through the
/// transducer registry — the moral equivalent of Glimpse grepping the
/// actual files during candidate verification.
pub struct VfsProvider<'a> {
    /// The namespace to read from.
    pub vfs: &'a Vfs,
    /// Transducers for extraction.
    pub registry: &'a TransducerRegistry,
}

impl DocProvider for VfsProvider<'_> {
    fn tokens(&self, doc: DocId) -> Option<Vec<Token>> {
        let path = self.vfs.path_of(FileId(doc.0)).ok()?;
        let content = self.vfs.read_file(&path).ok()?;
        let name = path.file_name().unwrap_or("");
        Some(extract_tokens(self.registry, name, &content))
    }
}

/// Runs the transducer for a file and appends the implicit metadata
/// attributes HAC contributes for every file: `name:<word>` for each word
/// of the file name and `ext:<suffix>` for its extension. These make
/// queries like `ext:eml` or `name:readme` work without content matches —
/// the SFS-style typed attributes the paper's lineage assumes.
pub fn extract_tokens(
    registry: &TransducerRegistry,
    file_name: &str,
    content: &[u8],
) -> Vec<Token> {
    let mut tokens = registry.extract(file_name, content);
    for word in hac_index::tokenize_text(file_name.as_bytes()) {
        if let Some(w) = word.as_word() {
            tokens.push(Token::field("name", w));
        }
    }
    if let Some((_, ext)) = file_name.rsplit_once('.') {
        if !ext.is_empty() {
            tokens.push(Token::field("ext", ext));
        }
    }
    tokens
}

/// The mutable core of a `HacFs` (guarded by one lock in the facade).
pub struct HacState {
    /// The CBA index.
    pub index: Index,
    /// Semantic-directory metadata by directory inode.
    pub semdirs: HashMap<FileId, SemDir>,
    /// The global UID map (§2.5).
    pub uids: UidMap,
    /// The dependency DAG (§2.5).
    pub graph: DepGraph,
    /// Semantic mounts: directory → mounted name spaces (§3.2 allows
    /// several per mount point).
    pub mounts: HashMap<FileId, Vec<Arc<dyn RemoteQuerySystem>>>,
    /// Configuration.
    pub config: HacConfig,
    /// Term→semdir inverted query index driving incremental invalidation.
    pub query_index: QueryIndex,
    /// The path each document was last indexed under (stale-entry detection
    /// proportional to the subtree, not the index).
    pub doc_paths: DocPathMap,
    /// Per-directory cached raw query results.
    pub result_cache: HashMap<FileId, CachedResult>,
    /// Set when a structural mutation ran with `auto_scope_sync` disabled:
    /// the dirty-set seeding below assumes scopes were consistent at the
    /// start of the pass, so the next `ssync` must fall back to a full
    /// re-evaluation.
    pub pending_scope_sync: bool,
    /// The durable segmented index store, when one is attached
    /// ([`crate::HacFs::attach_store`]). `None` keeps the legacy
    /// whole-snapshot persistence path.
    pub store: Option<Arc<crate::store::IndexStore>>,
}

impl HacState {
    /// Fresh state with the given configuration.
    pub fn new(config: HacConfig) -> Self {
        let mut uids = UidMap::new();
        // The root always occupies the first UID: every directory directly
        // or indirectly depends on it.
        let _root = uids.uid_for(FileId::ROOT);
        HacState {
            index: Index::new(config.granularity),
            semdirs: HashMap::new(),
            uids,
            graph: DepGraph::new(),
            mounts: HashMap::new(),
            config,
            query_index: QueryIndex::new(),
            doc_paths: DocPathMap::new(),
            result_cache: HashMap::new(),
            pending_scope_sync: false,
            store: None,
        }
    }

    fn doc(file: FileId) -> DocId {
        DocId(file.0)
    }

    // ------------------------------------------------------------------
    // Content indexing (data consistency, §2.4)
    // ------------------------------------------------------------------

    /// Indexes one file if it is new or its content version changed.
    /// Returns `true` if the index was touched.
    pub fn index_file(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        path: &VPath,
        id: FileId,
    ) -> bool {
        if is_reserved(path) {
            return false;
        }
        let Ok(attr) = vfs.lstat(path) else {
            return false;
        };
        if attr.kind != NodeKind::File {
            return false;
        }
        if self.index.indexed_version(Self::doc(id)) == Some(attr.version) {
            return false;
        }
        let Ok(content) = vfs.read_file(path) else {
            return false;
        };
        let name = path.file_name().unwrap_or("");
        let tokens = extract_tokens(registry, name, &content);
        self.index.add_doc(Self::doc(id), attr.version, &tokens);
        self.doc_paths.record(Self::doc(id), path);
        true
    }

    /// Drops a file from the index.
    pub fn deindex_file(&mut self, id: FileId) {
        self.index.remove_doc(Self::doc(id));
        self.doc_paths.forget(Self::doc(id));
    }

    /// Re-indexes every file under `root`, removing index entries whose
    /// files vanished from that subtree. This is the content half of
    /// `ssync`; scope resynchronization follows separately.
    ///
    /// Runs the plan → tokenize → apply pipeline inline (single-threaded,
    /// under the caller's lock); [`crate::HacFs::ssync`] splits the phases
    /// across lock boundaries instead.
    pub fn sync_subtree(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        root: &VPath,
    ) -> SyncReport {
        self.sync_subtree_dirty(vfs, registry, root).0
    }

    /// Like [`HacState::sync_subtree`], also returning the dirty set for
    /// incremental scope resynchronization.
    pub fn sync_subtree_dirty(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        root: &VPath,
    ) -> (SyncReport, DirtySet) {
        let plan = self.plan_sync(vfs, root);
        let docs = tokenize_plan(vfs, registry, &plan, 1);
        let (report, dirty, _applied) = self.apply_sync(vfs, &plan, docs);
        (report, dirty)
    }

    /// Snapshot phase of a reindex pass (shared lock): walks the subtree
    /// and records what must be tokenized, which recorded paths moved, and
    /// which recorded docs vanished from the walk.
    pub fn plan_sync(&self, vfs: &Vfs, root: &VPath) -> SyncPlan {
        let mut plan = SyncPlan {
            root: root.clone(),
            to_index: Vec::new(),
            refresh_paths: Vec::new(),
            stale_candidates: Vec::new(),
        };
        let mut seen: HashSet<u64> = HashSet::new();
        if let Ok(entries) = hac_vfs::walk(vfs, root) {
            for entry in entries {
                if entry.attr.kind != NodeKind::File || is_reserved(&entry.path) {
                    continue;
                }
                seen.insert(entry.attr.id.0);
                let doc = Self::doc(entry.attr.id);
                if self.index.indexed_version(doc) != Some(entry.attr.version) {
                    plan.to_index.push(PlannedDoc {
                        path: entry.path,
                        id: entry.attr.id,
                    });
                } else if self.doc_paths.path_of(doc) != Some(entry.path.to_string().as_str()) {
                    plan.refresh_paths.push((doc, entry.path));
                }
            }
        }
        for doc in self.doc_paths.docs_under(root) {
            if !seen.contains(&doc.0) {
                plan.stale_candidates.push(doc);
            }
        }
        plan
    }

    /// Apply phase of a reindex pass (exclusive lock): classifies the
    /// tokenized deltas, verifies stale candidates against the live
    /// namespace (a rename may have moved them out of the subtree), applies
    /// everything to the index in one batch, and returns the pass report,
    /// the dirty set, and the delta that actually landed (the payload a
    /// durable store seals into one segment). Deltas raced out by a
    /// concurrent eager index are skipped.
    pub fn apply_sync(
        &mut self,
        vfs: &Vfs,
        plan: &SyncPlan,
        docs: Vec<TokenizedDoc>,
    ) -> (SyncReport, DirtySet, AppliedDelta) {
        let mut report = SyncReport::default();
        let mut dirty = DirtySet::new();
        for (doc, path) in &plan.refresh_paths {
            self.doc_paths.record(*doc, path);
        }
        let mut adds: Vec<DocDelta> = Vec::with_capacity(docs.len());
        for td in docs {
            let doc = td.delta.doc;
            // A file unlinked during the lock-free tokenize window was
            // already deindexed (eager mode deindexes under the write
            // lock); accepting its in-flight delta would resurrect the
            // deleted document until the next pass. Only apply deltas for
            // inodes that still resolve in the live namespace.
            if vfs.path_of(FileId(doc.0)).is_err() {
                continue;
            }
            match self.index.indexed_version(doc) {
                // A concurrent eager index already holds newer content:
                // the delta would be a no-op, so it is neither applied nor
                // sealed into the segment.
                Some(v) if v >= td.delta.version => {}
                prev => {
                    if prev.is_none() {
                        report.added += 1;
                        dirty.added.insert(doc);
                    } else {
                        report.updated += 1;
                        dirty.updated.insert(doc);
                    }
                    dirty.absorb_tokens(&td.delta.tokens);
                    self.doc_paths.record(doc, &td.path);
                    adds.push(td.delta);
                }
            }
        }
        let mut removes: Vec<DocId> = Vec::new();
        let mut applied_removes: Vec<DocId> = Vec::new();
        for &doc in &plan.stale_candidates {
            match vfs.path_of(FileId(doc.0)) {
                Ok(p) if p.starts_with(&plan.root) => removes.push(doc),
                // Renamed out of the subtree since the last pass: keep.
                Ok(p) => self.doc_paths.record(doc, &p),
                Err(_) => removes.push(doc),
            }
        }
        for &doc in &removes {
            if self.index.is_indexed(doc) {
                dirty.removed.insert(doc);
                report.removed += 1;
                applied_removes.push(doc);
            }
            self.doc_paths.forget(doc);
        }
        self.index.apply_delta(&adds, &removes);
        hac_obs::gauge("hac_reindex_dirty_docs", &[]).set(dirty.doc_count() as i64);
        let applied = AppliedDelta {
            adds,
            removes: applied_removes,
        };
        (report, dirty, applied)
    }

    // ------------------------------------------------------------------
    // Scopes (§2.3, §3)
    // ------------------------------------------------------------------

    /// The scope a directory provides to semantic directories created
    /// beneath it (§2.3).
    ///
    /// * the **root** provides every indexed file and every mounted
    ///   namespace;
    /// * a **semantic directory** provides the targets of its current
    ///   symlinks plus the indexed files physically inside it (users may
    ///   "add regular files to that directory");
    /// * any other **syntactic directory** is *transparent*: it provides
    ///   whatever its own parent provides. The paper defines only the two
    ///   endpoints above; transparency is the interpolation that keeps
    ///   plain directories usable as organisation (a semantic folder under
    ///   `/home/me/folders` should see the world, not an empty subtree).
    ///   Explicit subtree semantics remain available via `path(...)`
    ///   references, which use [`HacState::reference_scope`].
    pub fn scope_provided(&self, vfs: &Vfs, dir: FileId) -> Scope {
        if dir == FileId::ROOT {
            let mut scope = Scope::local_only(self.index.all_docs());
            for remotes in self.mounts.values() {
                for r in remotes {
                    scope.add_namespace_all(r.namespace());
                }
            }
            return scope;
        }
        if let Some(sd) = self.semdirs.get(&dir) {
            return self.semdir_scope(vfs, sd);
        }
        // Transparent: delegate to the parent (terminates at the root).
        match vfs.path_of(dir).ok().and_then(|p| p.parent()) {
            Some(parent_path) => match vfs.resolve_nofollow(&parent_path) {
                Ok(parent) => self.scope_provided(vfs, parent),
                Err(_) => Scope::new(),
            },
            None => self.scope_provided(vfs, FileId::ROOT),
        }
    }

    /// The scope a `path(...)` reference denotes (§2.5): for a semantic
    /// directory, its curated link set; for a syntactic directory, its
    /// subtree closure (indexed files below it plus symlink targets below
    /// it) — "the files under that directory" is what naming a plain
    /// directory in a query means.
    pub fn reference_scope(&self, vfs: &Vfs, dir: FileId) -> Scope {
        if dir == FileId::ROOT {
            return self.scope_provided(vfs, FileId::ROOT);
        }
        if let Some(sd) = self.semdirs.get(&dir) {
            return self.semdir_scope(vfs, sd);
        }
        self.syntactic_scope(vfs, dir)
    }

    /// The nearest ancestor of `dir` (strictly above it) that actually
    /// *owns* a scope — a semantic directory or the root. Hierarchy
    /// dependency edges anchor here, so that scope changes propagate
    /// through transparent plain directories.
    pub fn scope_anchor(&self, vfs: &Vfs, dir: FileId) -> FileId {
        let mut cur = dir;
        loop {
            let Some(parent_path) = vfs.path_of(cur).ok().and_then(|p| p.parent()) else {
                return FileId::ROOT;
            };
            let Ok(parent) = vfs.resolve_nofollow(&parent_path) else {
                return FileId::ROOT;
            };
            if parent == FileId::ROOT || self.semdirs.contains_key(&parent) {
                return parent;
            }
            cur = parent;
        }
    }

    fn semdir_scope(&self, vfs: &Vfs, sd: &SemDir) -> Scope {
        let mut scope = Scope::new();
        let Ok(dir_path) = vfs.path_of(sd.dir) else {
            return scope;
        };
        let Ok(entries) = vfs.readdir(&dir_path) else {
            return scope;
        };
        for entry in entries {
            match entry.kind {
                NodeKind::File => {
                    if self.index.is_indexed(Self::doc(entry.id)) {
                        scope.local.insert(Self::doc(entry.id));
                    }
                }
                NodeKind::Symlink => {
                    let Ok(link_path) = dir_path.join(&entry.name) else {
                        continue;
                    };
                    let Ok(target) = vfs.readlink(&link_path) else {
                        continue;
                    };
                    match decode_remote_target(&target) {
                        Some((ns, id)) => scope.add_remote_id(ns, id),
                        None => {
                            if let Ok(fid) = vfs.resolve(&target) {
                                if self.index.is_indexed(Self::doc(fid)) {
                                    scope.local.insert(Self::doc(fid));
                                }
                            }
                        }
                    }
                }
                NodeKind::Dir => {}
            }
        }
        // Namespaces mounted directly on the semantic directory are fully
        // in scope.
        if let Some(remotes) = self.mounts.get(&sd.dir) {
            for r in remotes {
                scope.add_namespace_all(r.namespace());
            }
        }
        scope
    }

    fn syntactic_scope(&self, vfs: &Vfs, dir: FileId) -> Scope {
        let mut scope = Scope::new();
        let Ok(dir_path) = vfs.path_of(dir) else {
            return scope;
        };
        let Ok(entries) = hac_vfs::walk(vfs, &dir_path) else {
            return scope;
        };
        for entry in entries {
            if is_reserved(&entry.path) {
                continue;
            }
            match entry.attr.kind {
                NodeKind::File => {
                    if self.index.is_indexed(Self::doc(entry.attr.id)) {
                        scope.local.insert(Self::doc(entry.attr.id));
                    }
                }
                NodeKind::Symlink => {
                    if let Ok(target) = vfs.readlink(&entry.path) {
                        match decode_remote_target(&target) {
                            Some((ns, id)) => scope.add_remote_id(ns, id),
                            None => {
                                if let Ok(fid) = vfs.resolve(&target) {
                                    if self.index.is_indexed(Self::doc(fid)) {
                                        scope.local.insert(Self::doc(fid));
                                    }
                                }
                            }
                        }
                    }
                }
                NodeKind::Dir => {
                    if let Some(remotes) = self.mounts.get(&entry.attr.id) {
                        for r in remotes {
                            scope.add_namespace_all(r.namespace());
                        }
                    }
                }
            }
        }
        scope
    }

    // ------------------------------------------------------------------
    // Query evaluation
    // ------------------------------------------------------------------

    /// Evaluates the local part of a query expression within `universe`.
    /// Directory references resolve to the referenced directory's provided
    /// local scope (§2.5); dangling references evaluate to the empty set.
    pub fn eval_local(
        &self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        expr: &QueryExpr,
        universe: &Bitmap,
    ) -> Bitmap {
        let mut stats = hac_index::EvalStats::default();
        self.eval_local_timed(vfs, registry, expr, universe, &mut stats)
    }

    /// Top-level instrumented entry around [`HacState::eval_local_counted`]:
    /// records one `hac_query_eval_duration_us` sample and the result
    /// cardinality per whole-query evaluation (the recursive inner calls
    /// stay unmetered so boolean sub-expressions are not double-counted).
    pub fn eval_local_timed(
        &self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        expr: &QueryExpr,
        universe: &Bitmap,
        stats: &mut hac_index::EvalStats,
    ) -> Bitmap {
        let start = std::time::Instant::now();
        // Child span only when an operation root is active: bare library
        // calls stay span-free, traced commands see the eval nested.
        let _span = hac_obs::current_trace().map(|_| hac_obs::span!("query_eval"));
        let result = self.eval_local_counted(vfs, registry, expr, universe, stats);
        hac_obs::counter("hac_query_evals_total", &[]).inc();
        hac_obs::histogram("hac_query_eval_duration_us", &[])
            .record(start.elapsed().as_micros() as u64);
        hac_obs::histogram("hac_query_results", &[]).record(result.count());
        result
    }

    /// Like [`HacState::eval_local`], accumulating the index's work
    /// counters (candidates examined, verifications run, false positives)
    /// for observability (`explain` in the shell).
    pub fn eval_local_counted(
        &self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        expr: &QueryExpr,
        universe: &Bitmap,
        stats: &mut hac_index::EvalStats,
    ) -> Bitmap {
        let provider = VfsProvider { vfs, registry };
        match expr {
            QueryExpr::Term(t) => self.index.eval_counted(
                &hac_index::ContentExpr::Term(t.clone()),
                universe,
                &provider,
                stats,
            ),
            QueryExpr::Field(n, v) => self.index.eval_counted(
                &hac_index::ContentExpr::Field(n.clone(), v.clone()),
                universe,
                &provider,
                stats,
            ),
            QueryExpr::Phrase(ws) => self.index.eval_counted(
                &hac_index::ContentExpr::Phrase(ws.clone()),
                universe,
                &provider,
                stats,
            ),
            QueryExpr::Approx(t, k) => self.index.eval_counted(
                &hac_index::ContentExpr::Approx(t.clone(), *k),
                universe,
                &provider,
                stats,
            ),
            QueryExpr::Prefix(t) => self.index.eval_counted(
                &hac_index::ContentExpr::Prefix(t.clone()),
                universe,
                &provider,
                stats,
            ),
            QueryExpr::All => universe.and(&self.index.all_docs()),
            QueryExpr::Dir(DirRef::Uid(uid)) => match self.uids.dir_of(*uid) {
                Some(dir) => self.reference_scope(vfs, dir).local.and(universe),
                None => Bitmap::new_dense(),
            },
            // Unbound path references should have been bound at query-set
            // time; treat a straggler like its UID form by resolving late.
            QueryExpr::Dir(DirRef::Path(p)) => match vfs.resolve(p) {
                Ok(dir) => self.reference_scope(vfs, dir).local.and(universe),
                Err(_) => Bitmap::new_dense(),
            },
            QueryExpr::And(a, b) => {
                let left = self.eval_local_counted(vfs, registry, a, universe, stats);
                self.eval_local_counted(vfs, registry, b, &left, stats)
            }
            QueryExpr::Or(a, b) => self
                .eval_local_counted(vfs, registry, a, universe, stats)
                .or(&self.eval_local_counted(vfs, registry, b, universe, stats)),
            QueryExpr::AndNot(a, b) => {
                let left = self.eval_local_counted(vfs, registry, a, universe, stats);
                let right = self.eval_local_counted(vfs, registry, b, &left, stats);
                left.and_not(&right)
            }
            QueryExpr::Not(a) => {
                let u = universe.and(&self.index.all_docs());
                u.and_not(&self.eval_local_counted(vfs, registry, a, &u, stats))
            }
        }
    }

    /// Evaluates the remote part of a query: for every namespace in the
    /// universe scope, ship the content projection and refine by the
    /// universe's id set. A failing namespace is reported in the second
    /// return value and its previously imported links are left untouched.
    /// The third return value lists namespaces that answered but flagged
    /// the result as *partial* (a federated coordinator missing a shard):
    /// their results are applied additively — see
    /// [`RemoteQuerySystem::last_partial`].
    #[allow(clippy::type_complexity)]
    pub fn eval_remote(
        &self,
        query: &Query,
        universe: &Scope,
    ) -> (
        HashMap<NamespaceId, HashMap<String, String>>,
        Vec<(NamespaceId, crate::remote::RemoteError)>,
        HashSet<NamespaceId>,
    ) {
        let mut results = HashMap::new();
        let mut errors = Vec::new();
        let mut partial = HashSet::new();
        if universe.remotes.is_empty() {
            return (results, errors, partial);
        }
        let projection = query.expr.content_projection();
        for (ns, set) in &universe.remotes {
            let Some(remote) = self.find_remote(ns) else {
                continue;
            };
            let _span = hac_obs::current_trace().map(|_| hac_obs::span!("remote_search", ns = ns));
            match remote.search(&projection) {
                Ok(docs) => {
                    let filtered: HashMap<String, String> = docs
                        .into_iter()
                        .filter(|d| set.contains(&d.id))
                        .map(|d| (d.id, d.title))
                        .collect();
                    if remote.last_partial() {
                        hac_obs::counter("hac_remote_partial_results_total", &[("ns", &ns.0)])
                            .inc();
                        partial.insert(ns.clone());
                    }
                    results.insert(ns.clone(), filtered);
                }
                Err(e) => errors.push((ns.clone(), e)),
            }
        }
        (results, errors, partial)
    }

    /// Finds a mounted remote by namespace id.
    pub fn find_remote(&self, ns: &NamespaceId) -> Option<Arc<dyn RemoteQuerySystem>> {
        for remotes in self.mounts.values() {
            for r in remotes {
                if &r.namespace() == ns {
                    return Some(Arc::clone(r));
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Scope consistency (§2.3)
    // ------------------------------------------------------------------

    /// Re-evaluates one semantic directory's query and reconciles its
    /// transient links (local and remote). Permanent and prohibited sets
    /// are never modified — they belong to the user.
    ///
    /// Returns `true` when the set of link targets changed (the scope this
    /// directory provides changed).
    pub fn resync_dir(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        dir: FileId,
    ) -> HacResult<bool> {
        let Some(sd) = self.semdirs.get(&dir) else {
            return Ok(false);
        };
        let dir_path = vfs.path_of(dir)?;
        let _span =
            hac_obs::current_trace().map(|_| hac_obs::span!("semdir_resync", dir = dir_path));
        hac_obs::counter("hac_semdir_reeval_total", &[("dir", &dir_path.to_string())]).inc();
        let parent_path = dir_path.parent().unwrap_or_else(VPath::root);
        let parent = vfs.resolve_nofollow(&parent_path)?;
        let universe = self.scope_provided(vfs, parent);

        // Local desired set: eval(query, parent scope) minus prohibited
        // minus permanent targets minus files physically in this directory
        // (their presence already represents them).
        //
        // The raw evaluation is cached per directory, keyed by (query text,
        // index generation, universe fingerprint). Queries with directory
        // references are never cached: a referenced directory's result set
        // can change without either the index generation or this universe
        // moving. As with everything §2.4, a cache hit reflects content as
        // of the last reindex, never newer.
        let query = sd.query.clone();
        let cacheable = !query.expr.has_dir_refs();
        let generation = self.index.generation();
        let scope_fp = universe.local.fingerprint();
        let cached = cacheable
            .then(|| self.result_cache.get(&dir))
            .flatten()
            .filter(|c| {
                c.generation == generation && c.scope_fp == scope_fp && c.query_src == query.source
            })
            .map(|c| c.result.clone());
        let mut desired = match cached {
            Some(result) => {
                hac_obs::counter("hac_query_cache_hits_total", &[]).inc();
                result
            }
            None => {
                hac_obs::counter("hac_query_cache_misses_total", &[]).inc();
                let result = self.eval_local(vfs, registry, &query.expr, &universe.local);
                if cacheable {
                    self.result_cache.insert(
                        dir,
                        CachedResult {
                            query_src: query.source.clone(),
                            generation,
                            scope_fp,
                            result: result.clone(),
                        },
                    );
                }
                result
            }
        };
        let sd = self
            .semdirs
            .get(&dir)
            .expect("semdir vanished during resync");
        for t in &sd.prohibited {
            if let LinkTarget::Local(fid) = t {
                desired.remove(Self::doc(*fid));
            }
        }
        for fid in sd.permanent_local_targets() {
            desired.remove(Self::doc(fid));
        }
        for doc in desired.ids() {
            if let Ok(p) = vfs.path_of(FileId(doc.0)) {
                if p.parent().as_ref() == Some(&dir_path) {
                    desired.remove(doc);
                }
            }
        }

        // Remote desired sets. A *partial* namespace (federated
        // coordinator missing a shard) is treated like a failed one for
        // link removal — the missing shard's documents are absent from the
        // result, not absent from the corpus — while its results still add
        // links, so the shards that answered stay fresh.
        let (remote_results, remote_errors, partial_ns) = self.eval_remote(&query, &universe);
        let failed_ns: HashSet<NamespaceId> = remote_errors
            .iter()
            .map(|(ns, _)| ns.clone())
            .chain(partial_ns.iter().cloned())
            .collect();

        let sd = self
            .semdirs
            .get(&dir)
            .expect("semdir vanished during resync");
        let mut changed = false;

        // Phase 1: drop stale transient links.
        let mut to_remove: Vec<String> = Vec::new();
        for (name, state) in &sd.links {
            if state.kind != LinkKind::Transient {
                continue;
            }
            match &state.target {
                LinkTarget::Local(fid) => {
                    if !desired.contains(Self::doc(*fid)) {
                        to_remove.push(name.clone());
                    }
                }
                LinkTarget::Remote(ns, id) => {
                    if failed_ns.contains(ns) {
                        continue; // keep results from unreachable remotes
                    }
                    let keep = remote_results.get(ns).is_some_and(|m| m.contains_key(id))
                        && universe.remotes.contains_key(ns);
                    if !keep {
                        to_remove.push(name.clone());
                    }
                }
            }
        }
        for name in &to_remove {
            let link_path = dir_path.join(name)?;
            match vfs.unlink(&link_path) {
                Ok(()) | Err(VfsError::NotFound(_)) => {}
                Err(e) => return Err(e.into()),
            }
            changed = true;
        }
        let sd = self
            .semdirs
            .get_mut(&dir)
            .expect("semdir vanished during resync");
        for name in &to_remove {
            sd.links.remove(name);
        }

        // Phase 2: add missing transient links (local). Name allocation is
        // set-based: one readdir snapshot plus an in-progress name set, so
        // large result sets stay O(n log n) rather than O(n²).
        let sd = self
            .semdirs
            .get(&dir)
            .expect("semdir vanished during resync");
        let existing_local: HashSet<u64> = sd
            .links
            .values()
            .filter_map(|s| match s.target {
                LinkTarget::Local(fid) => Some(fid.0),
                LinkTarget::Remote(..) => None,
            })
            .collect();
        let mut taken: HashSet<String> = sd.links.keys().cloned().collect();
        if let Ok(entries) = vfs.readdir(&dir_path) {
            taken.extend(entries.into_iter().map(|e| e.name));
        }
        let mut new_local: Vec<(String, FileId, VPath)> = Vec::new();
        for doc in desired.ids() {
            if existing_local.contains(&doc.0) {
                continue;
            }
            let fid = FileId(doc.0);
            let Ok(target_path) = vfs.path_of(fid) else {
                continue;
            };
            let preferred = target_path.file_name().unwrap_or("link").to_string();
            let name = sd.free_name(&preferred, |n| taken.contains(n));
            taken.insert(name.clone());
            new_local.push((name, fid, target_path));
        }
        if !new_local.is_empty() {
            let batch: Vec<(String, VPath)> = new_local
                .iter()
                .map(|(name, _, target)| (name.clone(), target.clone()))
                .collect();
            vfs.symlink_batch(&dir_path, &batch)?;
            changed = true;
        }
        let sd = self
            .semdirs
            .get_mut(&dir)
            .expect("semdir vanished during resync");
        for (name, fid, _) in new_local {
            sd.links.insert(
                name,
                LinkState {
                    kind: LinkKind::Transient,
                    target: LinkTarget::Local(fid),
                },
            );
        }

        // Phase 3: add missing transient links (remote).
        let sd = self
            .semdirs
            .get(&dir)
            .expect("semdir vanished during resync");
        let mut new_remote: Vec<(String, NamespaceId, String)> = Vec::new();
        // Deterministic order across the namespace map.
        let mut remote_sorted: Vec<(&NamespaceId, &HashMap<String, String>)> =
            remote_results.iter().collect();
        remote_sorted.sort_by(|a, b| a.0.cmp(b.0));
        for (ns, docs) in remote_sorted {
            let mut doc_sorted: Vec<(&String, &String)> = docs.iter().collect();
            doc_sorted.sort();
            for (id, title) in doc_sorted {
                let target = LinkTarget::Remote(ns.clone(), id.clone());
                if sd.prohibited.contains(&target) || sd.has_target(&target) {
                    continue;
                }
                let preferred = sanitize_name(title);
                let name = sd.free_name(&preferred, |n| taken.contains(n));
                taken.insert(name.clone());
                new_remote.push((name, ns.clone(), id.clone()));
            }
        }
        if !new_remote.is_empty() {
            let batch: Vec<(String, VPath)> = new_remote
                .iter()
                .map(|(name, ns, id)| (name.clone(), encode_remote_target(ns, id)))
                .collect();
            vfs.symlink_batch(&dir_path, &batch)?;
            changed = true;
        }
        let sd = self
            .semdirs
            .get_mut(&dir)
            .expect("semdir vanished during resync");
        for (name, ns, id) in new_remote {
            sd.links.insert(
                name,
                LinkState {
                    kind: LinkKind::Transient,
                    target: LinkTarget::Remote(ns, id),
                },
            );
        }

        sd.last_result = if self.config.sparse_results {
            Bitmap::Sparse(desired.into_sparse())
        } else {
            desired
        };
        // Persist the updated metadata record — the paper keeps these
        // structures on disk, charging every re-evaluation with I/O.
        self.persist_dir(vfs, dir);
        Ok(changed)
    }

    /// Restores scope consistency after the scope provided by `roots`
    /// changed: re-evaluates every transitive dependent in topological
    /// order (§2.5's update schedule).
    pub fn resync_dependents(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        roots: impl IntoIterator<Item = DirUid>,
    ) -> HacResult<u64> {
        let order = self.graph.update_order(roots);
        // Cascade size = how many directories the dependency graph schedules
        // for re-evaluation off this scope change (§2.5).
        hac_obs::histogram("hac_ssync_cascade_depth", &[]).record(order.len() as u64);
        hac_obs::counter("hac_cascade_reevals_total", &[]).add(order.len() as u64);
        let mut synced = 0;
        for uid in order {
            let Some(dir) = self.uids.dir_of(uid) else {
                continue;
            };
            if self.semdirs.contains_key(&dir) {
                self.resync_dir(vfs, registry, dir)?;
                synced += 1;
            }
        }
        Ok(synced)
    }

    /// Re-evaluates *every* semantic directory in dependency order; used by
    /// full `ssync` and after reindexing.
    pub fn resync_all(&mut self, vfs: &Vfs, registry: &TransducerRegistry) -> HacResult<u64> {
        let uids: Vec<DirUid> = self.semdirs.values().map(|sd| sd.uid).collect();
        let order = self.graph.full_order(uids);
        hac_obs::histogram("hac_ssync_cascade_depth", &[]).record(order.len() as u64);
        hac_obs::counter("hac_cascade_reevals_total", &[]).add(order.len() as u64);
        let mut synced = 0;
        for uid in order {
            let Some(dir) = self.uids.dir_of(uid) else {
                continue;
            };
            if self.semdirs.contains_key(&dir) {
                self.resync_dir(vfs, registry, dir)?;
                synced += 1;
            }
        }
        Ok(synced)
    }

    /// Re-evaluates only the semantic directories a dirty set can affect:
    ///
    /// * directories whose query terms intersect the dirty token keys (or
    ///   whose query is *broad* — `All`, `NOT`, `~approx`, `path(...)`);
    /// * directories whose current result or links contain a dirty doc
    ///   (covers removals and updates that stop matching);
    /// * plus every transitive dependent of those, via
    ///   [`DepGraph::update_order`], evaluated in topological order.
    ///
    /// A pass with an empty dirty set touches zero directories. Returns the
    /// number re-evaluated; the rest count into
    /// `hac_resync_semdirs_skipped_total`.
    pub fn resync_dirty(
        &mut self,
        vfs: &Vfs,
        registry: &TransducerRegistry,
        dirty: &DirtySet,
    ) -> HacResult<u64> {
        // Remote namespaces change without touching the local index, and a
        // reindex pass is their reconciliation point (§3): with any mount
        // present, every directory's scope may span remote state we cannot
        // dirty-track, so fall back to full re-evaluation.
        if !self.mounts.is_empty() {
            return self.resync_all(vfs, registry);
        }
        let total = self.semdirs.len() as u64;
        let mut seed_dirs = self.query_index.seeds(dirty);
        if !dirty.is_empty() {
            for (dir, sd) in &self.semdirs {
                if seed_dirs.contains(dir) {
                    continue;
                }
                let hit = dirty.docs().any(|doc| sd.last_result.contains(doc))
                    || sd.links.values().any(|s| {
                        matches!(s.target, LinkTarget::Local(fid)
                            if dirty.removed.contains(&Self::doc(fid))
                                || dirty.updated.contains(&Self::doc(fid)))
                    });
                if hit {
                    seed_dirs.insert(*dir);
                }
            }
        }
        let seeds: Vec<DirUid> = seed_dirs
            .iter()
            .filter_map(|d| self.semdirs.get(d).map(|sd| sd.uid))
            .collect();
        let mut affected: HashSet<DirUid> = seeds.iter().copied().collect();
        affected.extend(self.graph.update_order(seeds));
        let order = self.graph.full_order(affected);
        hac_obs::histogram("hac_ssync_cascade_depth", &[]).record(order.len() as u64);
        hac_obs::counter("hac_cascade_reevals_total", &[]).add(order.len() as u64);
        let mut synced = 0;
        for uid in order {
            let Some(dir) = self.uids.dir_of(uid) else {
                continue;
            };
            if self.semdirs.contains_key(&dir) {
                self.resync_dir(vfs, registry, dir)?;
                synced += 1;
            }
        }
        hac_obs::counter("hac_resync_semdirs_skipped_total", &[]).add(total.saturating_sub(synced));
        Ok(synced)
    }

    /// Registers (or re-registers) a directory's query in the inverted
    /// query index and drops its cached result.
    pub fn register_semdir_query(&mut self, dir: FileId, expr: &QueryExpr) {
        self.query_index.insert(dir, expr);
        self.result_cache.remove(&dir);
    }

    /// Unregisters a directory from the incremental-invalidation
    /// structures (on removal or demotion to a plain directory).
    pub fn unregister_semdir(&mut self, dir: FileId) {
        self.query_index.remove(dir);
        self.result_cache.remove(&dir);
    }

    /// Notes a structural mutation that did *not* resynchronize dependents
    /// (because `auto_scope_sync` is off): the next `ssync` falls back to a
    /// full re-evaluation, since dirty-set seeding assumes scopes were
    /// consistent when the pass started.
    pub fn note_structural_change(&mut self) {
        if !self.config.auto_scope_sync {
            self.pending_scope_sync = true;
        }
    }

    /// Replaces the index wholesale (full rebuild), resetting every
    /// structure derived from it. The result cache is cleared because the
    /// fresh index restarts its generation counter.
    pub fn reset_index(&mut self) {
        self.index = Index::new(self.config.granularity);
        self.doc_paths = DocPathMap::new();
        self.result_cache.clear();
    }

    /// Rebuilds the doc→path map from the live namespace after the index
    /// was swapped in from persistence. Indexed docs that no longer exist
    /// anywhere are dropped immediately (they would otherwise dodge the
    /// subtree-proportional stale sweep forever); the pruned ids are
    /// returned so a durable store can commit the prune as a removal
    /// segment — otherwise every future recovery would resurrect and
    /// re-prune the same docs, drifting the generation lineage.
    pub fn rebuild_doc_paths(&mut self, vfs: &Vfs) -> Vec<DocId> {
        self.doc_paths = DocPathMap::new();
        if let Ok(entries) = hac_vfs::walk(vfs, &VPath::root()) {
            for entry in entries {
                if entry.attr.kind != NodeKind::File || is_reserved(&entry.path) {
                    continue;
                }
                let doc = Self::doc(entry.attr.id);
                if self.index.is_indexed(doc) {
                    self.doc_paths.record(doc, &entry.path);
                }
            }
        }
        let orphans: Vec<DocId> = self
            .index
            .all_docs()
            .ids()
            .into_iter()
            .filter(|d| self.doc_paths.path_of(*d).is_none())
            .collect();
        for doc in &orphans {
            self.index.remove_doc(*doc);
        }
        orphans
    }

    /// Repairs symlinks whose target was renamed (data inconsistency (i) of
    /// §2.4): the link's recorded inode is alive but the stored path no
    /// longer resolves to it. Returns the number of links rewritten.
    pub fn repair_links(&mut self, vfs: &Vfs) -> HacResult<u64> {
        let mut repaired = 0;
        let dirs: Vec<FileId> = self.semdirs.keys().copied().collect();
        for dir in dirs {
            let Ok(dir_path) = vfs.path_of(dir) else {
                continue;
            };
            let sd = self.semdirs.get(&dir).expect("semdir key vanished");
            let fixes: Vec<(String, VPath)> = sd
                .links
                .iter()
                .filter_map(|(name, state)| {
                    let LinkTarget::Local(fid) = state.target else {
                        return None;
                    };
                    let link_path = dir_path.join(name).ok()?;
                    let stored = vfs.readlink(&link_path).ok()?;
                    let actual = vfs.path_of(fid).ok()?;
                    (stored != actual).then_some((name.clone(), actual))
                })
                .collect();
            for (name, actual) in fixes {
                let link_path = dir_path.join(&name)?;
                vfs.unlink(&link_path)?;
                vfs.symlink(&link_path, &actual)?;
                repaired += 1;
            }
        }
        Ok(repaired)
    }

    // ------------------------------------------------------------------
    // Query management
    // ------------------------------------------------------------------

    /// Binds a parsed query's path references to UIDs and installs the
    /// dependency edges for directory `dir` (a hierarchy edge to its scope
    /// anchor — nearest semantic ancestor or root — plus one query-ref edge
    /// per referenced directory).
    ///
    /// On a cycle, the graph is restored and an error returned.
    pub fn install_query_edges(
        &mut self,
        vfs: &Vfs,
        dir: FileId,
        query: &mut Query,
        dir_path: &VPath,
    ) -> HacResult<()> {
        let parent = self.scope_anchor(vfs, dir);
        // Bind path references.
        let mut bind_err: Option<HacError> = None;
        let uids = &mut self.uids;
        query
            .bind_paths(|p| match vfs.resolve_nofollow(p) {
                Ok(id) => match vfs.lstat(p) {
                    Ok(attr) if attr.is_dir() => Ok(uids.uid_for(id)),
                    _ => Err(HacError::UnknownQueryTarget(p.clone())),
                },
                Err(_) => Err(HacError::UnknownQueryTarget(p.clone())),
            })
            .inspect_err(|e| {
                bind_err = Some(e.clone());
            })
            .ok();
        if let Some(e) = bind_err {
            return Err(e);
        }

        let uid = self.uids.uid_for(dir);
        let parent_uid = self.uids.uid_for(parent);

        // Snapshot old edges for rollback.
        let old_graph = self.graph.clone();
        self.graph.clear_edges(uid, EdgeKind::QueryRef);
        self.graph.clear_edges(uid, EdgeKind::Hierarchy);
        if !self.graph.add_edge(uid, parent_uid, EdgeKind::Hierarchy) {
            self.graph = old_graph;
            return Err(HacError::CycleDetected {
                at: dir_path.clone(),
            });
        }
        for referenced in query.expr.referenced_uids() {
            if self.uids.dir_of(referenced).is_none() {
                self.graph = old_graph;
                return Err(HacError::UnknownUid(referenced));
            }
            if referenced == uid || !self.graph.add_edge(uid, referenced, EdgeKind::QueryRef) {
                self.graph = old_graph;
                return Err(HacError::CycleDetected {
                    at: dir_path.clone(),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Metadata persistence (§4)
    // ------------------------------------------------------------------

    /// Writes the persistent metadata record of `dir` into the reserved
    /// [`META_DIR`] area — the extra on-disk structures (query, link
    /// classification, prohibited set) the paper creates for every
    /// directory. Errors are swallowed: metadata persistence is
    /// best-effort, the live state is authoritative.
    pub fn persist_dir(&mut self, vfs: &Vfs, dir: FileId) {
        let uid = self.uids.uid_for(dir);
        let record = match self.semdirs.get(&dir) {
            Some(sd) => DirRecordDisk {
                uid: uid.0,
                query: Some(
                    sd.query
                        .display_with(|u| self.uids.dir_of(u).and_then(|d| vfs.path_of(d).ok())),
                ),
                links: {
                    let mut v: Vec<(String, u8, String)> = sd
                        .links
                        .iter()
                        .map(|(n, s)| {
                            let kind = match s.kind {
                                LinkKind::Transient => 0,
                                LinkKind::Permanent => 1,
                            };
                            (n.clone(), kind, encode_target(&s.target))
                        })
                        .collect();
                    v.sort();
                    v
                },
                prohibited: {
                    let mut v: Vec<String> = sd.prohibited.iter().map(encode_target).collect();
                    v.sort();
                    v
                },
            },
            None => DirRecordDisk {
                uid: uid.0,
                query: None,
                links: Vec::new(),
                prohibited: Vec::new(),
            },
        };
        let Ok(bytes) = hac_vfs::persist::encode_value(&record) else {
            return;
        };
        let Ok(meta_dir) = VPath::from_components([META_DIR]) else {
            return;
        };
        let _ = vfs.mkdir_p(&meta_dir);
        if let Ok(path) = meta_dir.join(&format!("d{}", dir.0)) {
            let _ = vfs.save(&path, &bytes);
        }
    }

    /// Removes the persisted record of a deleted directory.
    pub fn remove_dir_record(&self, vfs: &Vfs, dir: FileId) {
        if let Ok(meta_dir) = VPath::from_components([META_DIR]) {
            if let Ok(path) = meta_dir.join(&format!("d{}", dir.0)) {
                let _ = vfs.unlink(&path);
            }
        }
    }

    /// Total resident bytes of HAC metadata (semantic directories, UID map,
    /// dependency graph) — the §4 space-overhead figure.
    pub fn metadata_bytes(&self) -> u64 {
        let semdir_bytes: u64 = self.semdirs.values().map(SemDir::resident_bytes).sum();
        let graph_bytes = (self.graph.node_count() * 48) as u64;
        semdir_bytes + self.uids.resident_bytes() + graph_bytes
    }
}

/// Encodes a remote document as a (deliberately dangling) local symlink
/// target under [`REMOTE_LINK_PREFIX`].
pub fn encode_remote_target(ns: &NamespaceId, id: &str) -> VPath {
    let mut encoded = String::with_capacity(id.len());
    for b in id.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => encoded.push(b as char),
            other => encoded.push_str(&format!("%{other:02x}")),
        }
    }
    VPath::from_components([REMOTE_LINK_PREFIX.to_string(), ns.0.clone(), encoded])
        .unwrap_or_else(|_| VPath::root())
}

/// Decodes a symlink target produced by [`encode_remote_target`]. Returns
/// `None` for ordinary local targets.
pub fn decode_remote_target(target: &VPath) -> Option<(NamespaceId, String)> {
    let comps: Vec<&str> = target.components().collect();
    if comps.len() != 3 || comps[0] != REMOTE_LINK_PREFIX {
        return None;
    }
    let ns = NamespaceId(comps[1].to_string());
    let mut id = String::new();
    let bytes = comps[2].as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            let v = u8::from_str_radix(hex, 16).ok()?;
            id.push(v as char);
            i += 3;
        } else {
            id.push(bytes[i] as char);
            i += 1;
        }
    }
    Some((ns, id))
}

/// Makes a remote title usable as a directory entry name.
pub fn sanitize_name(title: &str) -> String {
    let cleaned: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let trimmed = cleaned.trim_matches('_');
    if trimmed.is_empty() {
        "remote".to_string()
    } else {
        trimmed.chars().take(64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_target_roundtrip() {
        let ns = NamespaceId("weblib".into());
        for id in ["plain", "with/slash", "q?x=1&y=2", "ünïcode-ish %"] {
            let encoded = encode_remote_target(&ns, id);
            let (ns2, id2) = decode_remote_target(&encoded).unwrap();
            assert_eq!(ns2, ns);
            // Non-ASCII bytes decode byte-wise; restrict the assertion to
            // ASCII ids (remote ids in this system are ASCII).
            if id.is_ascii() {
                assert_eq!(id2, id, "id {id:?}");
            }
        }
    }

    #[test]
    fn ordinary_targets_do_not_decode() {
        assert_eq!(
            decode_remote_target(&VPath::parse("/home/user/file").unwrap()),
            None
        );
        assert_eq!(decode_remote_target(&VPath::parse("/").unwrap()), None);
        assert_eq!(
            decode_remote_target(&VPath::parse("/.hac-remote/ns/a/b").unwrap()),
            None
        );
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("A paper (1999)"), "A_paper__1999");
        assert_eq!(sanitize_name("///"), "remote");
        assert_eq!(sanitize_name("ok-name.txt"), "ok-name.txt");
    }

    #[test]
    fn apply_sync_skips_deltas_for_concurrently_unlinked_docs() {
        let vfs = Vfs::new();
        let registry = TransducerRegistry::new();
        let mut state = HacState::new(HacConfig::default());
        let p = |s: &str| VPath::parse(s).unwrap();

        vfs.mkdir_p(&p("/d")).unwrap();
        let id = vfs.save(&p("/d/f.txt"), b"one").unwrap();
        state.sync_subtree(&vfs, &registry, &p("/"));
        assert!(state.index.is_indexed(HacState::doc(id)));

        // Dirty the file, then run the pipeline's phases by hand with an
        // unlink interleaved into the lock-free tokenize window (what an
        // eager-mode unlink does: deindex, then remove the file).
        vfs.write_file(&p("/d/f.txt"), b"two").unwrap();
        let plan = state.plan_sync(&vfs, &p("/"));
        let docs = tokenize_plan(&vfs, &registry, &plan, 1);
        state.deindex_file(id);
        vfs.unlink(&p("/d/f.txt")).unwrap();

        let (report, dirty, applied) = state.apply_sync(&vfs, &plan, docs);
        assert_eq!(report.added, 0, "stale delta must not resurrect the doc");
        assert_eq!(report.updated, 0);
        assert!(dirty.added.is_empty() && dirty.updated.is_empty());
        assert!(applied.is_empty(), "nothing landed, nothing to persist");
        assert!(!state.index.is_indexed(HacState::doc(id)));
        assert!(state.doc_paths.path_of(HacState::doc(id)).is_none());
    }
}
